//! End-to-end observability: run the same Monte-Carlo fault sweep with
//! telemetry off and on, verify the per-run metrics are bit-identical (the
//! instrumentation is observation-only), then print the run report — engine
//! ladder outcome, per-phase wall-time table, engine counters and the
//! Welford convergence stream — and export a chrome://tracing trace.
//!
//! Run with `cargo run --release --example telemetry_report`, then load the
//! printed trace path at chrome://tracing or <https://ui.perfetto.dev>.

use invnorm::prelude::*;
use invnorm_nn::activation::Relu;
use invnorm_nn::conv::Conv2d;
use invnorm_nn::pool::MaxPool2d;
use invnorm_nn::reshape::Flatten;

fn cnn(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    Sequential::new()
        .with(Box::new(Conv2d::new(3, 8, 3, 1, 1, &mut rng)))
        .with(Box::new(Relu::new()))
        .with(Box::new(MaxPool2d::new(2)))
        .with(Box::new(Flatten::new()))
        .with(Box::new(Linear::new(8 * 8 * 8, 10, &mut rng)))
}

fn main() -> Result<(), NnError> {
    let x = Tensor::randn(&[4, 3, 16, 16], 0.0, 1.0, &mut Rng::seed_from(1));
    let engine = MonteCarloEngine::new(40, 0xDA7E);
    let fault = FaultModel::StuckAt { rate: 0.05 };
    let metric = |out: &Tensor| Ok(out.abs().mean());

    // Baseline: telemetry disabled (the default) — no report is attached.
    let baseline = engine.run_auto(
        || cnn(5),
        fault,
        &x,
        metric,
        8,
        2,
        DegradationPolicy::Graceful,
    )?;
    assert!(
        baseline.summary.telemetry.is_none(),
        "disabled telemetry must not attach a report"
    );

    // Instrumented: identical simulation with the spans and counters live.
    Telemetry::reset();
    Telemetry::enable();
    let instrumented = engine.run_auto(
        || cnn(5),
        fault,
        &x,
        metric,
        8,
        2,
        DegradationPolicy::Graceful,
    )?;
    Telemetry::disable();

    // Observation-only: not a single output bit may move.
    assert_eq!(baseline.engine, instrumented.engine);
    let identical = baseline
        .summary
        .per_run
        .iter()
        .zip(instrumented.summary.per_run.iter())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "telemetry changed the per-run metrics");

    println!("{instrumented}");

    let report = instrumented
        .summary
        .telemetry
        .as_ref()
        .expect("enabled telemetry must attach a report");
    println!("\n{report}");

    let tail = report
        .convergence
        .last()
        .expect("convergence stream is never empty");
    println!(
        "convergence after {} runs: mean {:.6}, 95% half-width {:.6}",
        tail.runs, tail.mean, tail.half_width95
    );

    let trace_path = std::env::temp_dir().join("invnorm_telemetry_trace.json");
    Telemetry::write_chrome_trace(&trace_path)
        .map_err(|e| NnError::Config(format!("writing {}: {e}", trace_path.display())))?;
    println!("\nchrome trace written to {}", trace_path.display());
    println!("load it at chrome://tracing or https://ui.perfetto.dev");
    Ok(())
}
