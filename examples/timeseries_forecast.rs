//! Autoregressive CO₂ forecasting with the two-layer LSTM (the paper's
//! Mauna-Loa scenario, W/A = 8/8): train the proposed and conventional
//! variants, compare clean RMSE and RMSE under multiplicative conductance
//! variation, and show the predictive uncertainty of the Bayesian model.
//!
//! Run with `cargo run --release --example timeseries_forecast`.

use invnorm::prelude::*;
use invnorm_datasets::timeseries::{self, Co2DatasetConfig};
use invnorm_models::lstm::{self, LstmForecasterConfig};
use invnorm_nn::train::{fit_regressor, TrainConfig};
use invnorm_quant::fake_quant::quantize_layer_weights;

fn main() -> Result<(), NnError> {
    let (split, series) = timeseries::generate(&Co2DatasetConfig {
        months: 360,
        window: 12,
        ..Co2DatasetConfig::default()
    });
    println!(
        "synthetic Keeling curve: {} months, {} train / {} test windows (mean {:.1} ppm)",
        series.values.len(),
        split.train_len(),
        split.test_len(),
        series.mean
    );

    for variant in [NormVariant::Conventional, NormVariant::proposed()] {
        let mut model = lstm::build(
            &LstmForecasterConfig {
                input_features: 1,
                hidden: 16,
                seed: 77,
            },
            variant,
        )?;
        let mut optimizer = Adam::new(0.01);
        fit_regressor(
            &mut model,
            &mut optimizer,
            &split.train_inputs,
            &split.train_targets,
            &TrainConfig {
                epochs: 15,
                batch_size: 16,
                ..TrainConfig::default()
            },
        )?;
        let quant = model.quant;
        quantize_layer_weights(&mut model, &quant)?;

        let passes = if variant.is_bayesian() { 16 } else { 1 };
        let prediction =
            BayesianPredictor::new(passes).predict_regression(&mut model, &split.test_inputs)?;
        let clean_rmse = prediction.rmse(&split.test_targets)?;
        println!(
            "\n[{}] clean test RMSE: {:.4} (normalized), mean predictive std: {:.4}",
            variant.label(),
            clean_rmse,
            prediction.mean_uncertainty()
        );
        // Self-verification: the forecaster must beat a trivial predictor on
        // the normalized series by a wide margin.
        assert!(
            clean_rmse < 0.5,
            "[{}] clean RMSE {clean_rmse:.4} did not learn the series",
            variant.label()
        );

        // Robustness to multiplicative conductance variation (Fig. 6b, right).
        for sigma in [0.2f32, 0.4, 0.6] {
            let engine = MonteCarloEngine::new(15, 9);
            let split_ref = &split;
            let summary = engine.run(
                &mut model,
                FaultModel::MultiplicativeVariation { sigma },
                |network| {
                    BayesianPredictor::new(passes)
                        .predict_regression(network, &split_ref.test_inputs)?
                        .rmse(&split_ref.test_targets)
                },
            )?;
            println!(
                "[{}] RMSE under multiplicative variation σ={sigma:.1}: {:.4} ± {:.4}",
                variant.label(),
                summary.mean,
                summary.std
            );
            // Self-verification: faulted RMSE stays finite and never beats
            // the clean model by more than Monte-Carlo wobble.
            assert!(
                summary.mean.is_finite() && summary.mean > clean_rmse - 0.05,
                "[{}] σ={sigma:.1} produced an implausible RMSE {:.4}",
                variant.label(),
                summary.mean
            );
        }
    }
    println!("\nExpected shape: the Proposed variant's RMSE grows far more slowly with σ.");
    Ok(())
}
