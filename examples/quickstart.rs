//! Quickstart: build a small Bayesian network with the paper's inverted
//! normalization layer, train it on a toy two-class problem, run Monte-Carlo
//! Bayesian inference, and measure its robustness to injected NVM faults.
//!
//! Run with `cargo run --release --example quickstart`.

use invnorm::prelude::*;
use invnorm_nn::activation::Relu;
use invnorm_nn::train::{fit_classifier, TrainConfig};

fn main() -> Result<(), NnError> {
    let mut rng = Rng::seed_from(42);

    // ---------------------------------------------------------------- data
    // Two Gaussian blobs in 8 dimensions.
    let samples_per_class = 64usize;
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for class in 0..2usize {
        let center = if class == 0 { -1.0 } else { 1.0 };
        for _ in 0..samples_per_class {
            rows.push(Tensor::randn(&[8], center, 0.7, &mut rng));
            labels.push(class);
        }
    }
    let inputs = Tensor::stack(&rows)?;

    // --------------------------------------------------------------- model
    // Linear -> InvertedNorm (affine dropout p=0.3) -> ReLU -> Linear.
    // The inverted normalization layer is the paper's contribution: the
    // learnable affine transform is applied *before* per-instance
    // normalization, and its parameters are stochastically dropped, which
    // both approximates a Bayesian NN and hardens the network against
    // perturbations of the weighted sum.
    let mut net = Sequential::new();
    net.push(Box::new(Linear::new(8, 16, &mut rng)));
    net.push(Box::new(InvertedNorm::new(
        16,
        &InvNormConfig::default(),
        &mut rng,
    )?));
    net.push(Box::new(Relu::new()));
    net.push(Box::new(Linear::new(16, 2, &mut rng)));

    // --------------------------------------------------------------- train
    let mut optimizer = Adam::new(0.01);
    let report = fit_classifier(
        &mut net,
        &mut optimizer,
        &inputs,
        &labels,
        &TrainConfig {
            epochs: 30,
            batch_size: 16,
            ..TrainConfig::default()
        },
    )?;
    println!(
        "training finished, final cross-entropy loss: {:.4}",
        report.final_loss().unwrap_or(f32::NAN)
    );

    // ----------------------------------------------------- Bayesian inference
    let predictor = BayesianPredictor::new(20);
    let prediction = predictor.predict_classification(&mut net, &inputs)?;
    println!(
        "clean Monte-Carlo accuracy over {} passes: {:.2}%",
        predictor.passes(),
        100.0 * prediction.accuracy(&labels)?
    );
    println!(
        "mean predictive entropy: {:.4} nats",
        prediction.entropy.iter().sum::<f32>() / prediction.entropy.len() as f32
    );

    // ---------------------------------------------------- fault robustness
    // Simulate 20 chip instances with additive conductance variation.
    let engine = MonteCarloEngine::new(20, 7);
    for sigma in [0.1f32, 0.3, 0.6] {
        let labels_ref = &labels;
        let inputs_ref = &inputs;
        let summary = engine.run(
            &mut net,
            FaultModel::AdditiveVariation { sigma },
            |network| {
                BayesianPredictor::new(8)
                    .predict_classification(network, inputs_ref)?
                    .accuracy(labels_ref)
            },
        )?;
        println!(
            "accuracy under additive variation σ={sigma:.1}: {:.2}% ± {:.2}%",
            100.0 * summary.mean,
            100.0 * summary.std
        );
    }
    Ok(())
}
