//! Hardened Monte-Carlo sweeps: deadlines, cancellation and bit-identical
//! checkpoint/resume.
//!
//! A production fault-robustness sweep can run for hours, so the supervised
//! engine entry points accept a [`SweepControl`] carrying a [`RunBudget`]
//! (wall-clock deadline and/or cooperative [`CancelToken`]). When the budget
//! expires the sweep stops at the next chip-instance boundary and returns a
//! serializable [`SweepCheckpoint`]; resuming from it replays only the
//! missing instances, and — because every instance derives its randomness
//! from `(seed, run)` alone — the final summary is **bit-identical** to an
//! uninterrupted sweep. Every claim printed below is asserted.
//!
//! Run with `cargo run --release --example resumable_sweep`.

use std::sync::atomic::{AtomicUsize, Ordering};

use invnorm_imc::montecarlo::MonteCarloEngine;
use invnorm_imc::{
    CancelToken, FaultModel, InterruptCause, LineOrientation, RunBudget, SweepCheckpoint,
    SweepControl, SweepOutcome, TileShape,
};
use invnorm_nn::activation::Relu;
use invnorm_nn::linear::Linear;
use invnorm_nn::norm::GroupNorm;
use invnorm_nn::{NnError, Sequential};
use invnorm_tensor::{Rng, Tensor};

fn build_mlp(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    Sequential::new()
        .with(Box::new(Linear::new(16, 32, &mut rng)))
        .with(Box::new(GroupNorm::layer_norm(32)))
        .with(Box::new(Relu::new()))
        .with(Box::new(Linear::new(32, 4, &mut rng)))
}

fn main() -> Result<(), NnError> {
    let runs = 48;
    let engine = MonteCarloEngine::new(runs, 0xBEEF);
    let x = Tensor::randn(&[8, 16], 0.0, 1.0, &mut Rng::seed_from(5));
    let fault = FaultModel::LineDefect {
        orientation: LineOrientation::Row,
        rate: 0.05,
        tile: TileShape { rows: 8, cols: 8 },
    };
    let metric = |out: &Tensor| Ok(out.abs().mean());

    // Ground truth: one uninterrupted supervised sweep.
    let outcome = engine.run_planned_batched_supervised(
        || build_mlp(7),
        fault,
        &x,
        metric,
        8,
        4,
        &SweepControl::new(),
    )?;
    assert!(outcome.is_complete());
    let baseline = outcome.summary().clone();
    println!(
        "uninterrupted sweep: {} instances, mean {:.4} ± {:.4}",
        runs, baseline.mean, baseline.std
    );

    // Interrupt: the metric closure cancels the token after a handful of
    // evaluations — standing in for an operator's Ctrl-C or an orchestrator
    // revoking the job's budget.
    let token = CancelToken::new();
    let control = SweepControl::new().with_budget(RunBudget::unbounded().with_token(&token));
    let calls = AtomicUsize::new(0);
    let outcome = engine.run_planned_batched_supervised(
        || build_mlp(7),
        fault,
        &x,
        |out: &Tensor| {
            if calls.fetch_add(1, Ordering::Relaxed) + 1 >= 6 {
                token.cancel();
            }
            metric(out)
        },
        8,
        4,
        &control,
    )?;
    let SweepOutcome::Interrupted {
        partial,
        cause,
        checkpoint,
        ..
    } = outcome
    else {
        panic!("the cancelled sweep must be interrupted");
    };
    assert_eq!(cause, InterruptCause::Cancelled);
    assert!(
        checkpoint.accounted_runs() > 0,
        "in-flight instances finish"
    );
    assert!(checkpoint.remaining_runs() > 0, "cancellation left work");
    println!(
        "cancelled sweep: {} of {} instances done ({}), partial mean {:.4}",
        checkpoint.accounted_runs(),
        runs,
        cause,
        partial.mean
    );

    // Persist the checkpoint exactly as a job runner would (here through a
    // byte buffer; a file works the same). The framing is versioned and
    // checksummed, so corruption is caught before any field is trusted.
    let bytes = checkpoint.to_bytes();
    let mut corrupted = bytes.clone();
    let last = corrupted.len() - 1;
    corrupted[last] ^= 0x01;
    assert!(SweepCheckpoint::from_bytes(&corrupted).is_err());
    let restored = SweepCheckpoint::from_bytes(&bytes)?;
    assert_eq!(restored, checkpoint);
    println!(
        "checkpoint serialized to {} bytes (corruption detected, round-trip exact)",
        bytes.len()
    );

    // Resume: only the missing instances run, and the merged summary is
    // bit-identical to the uninterrupted sweep.
    let outcome = engine.run_planned_batched_supervised(
        || build_mlp(7),
        fault,
        &x,
        metric,
        8,
        4,
        &SweepControl::new().with_resume(restored),
    )?;
    assert!(outcome.is_complete());
    let resumed = outcome.summary();
    assert_eq!(resumed.per_run.len(), runs);
    let identical = baseline
        .per_run
        .iter()
        .zip(resumed.per_run.iter())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "resume must be bit-identical");
    println!(
        "resumed sweep: mean {:.4} ± {:.4} — bit-identical to the uninterrupted run",
        resumed.mean, resumed.std
    );

    // Deadlines compose the same way: a budget that is already exhausted
    // checkpoints before the first instance, and resuming finishes the job.
    let control = SweepControl::new()
        .with_budget(RunBudget::unbounded().with_deadline(std::time::Duration::ZERO));
    let outcome = engine.run_planned_batched_supervised(
        || build_mlp(7),
        fault,
        &x,
        metric,
        8,
        4,
        &control,
    )?;
    let checkpoint = outcome
        .checkpoint()
        .expect("an expired deadline yields a checkpoint")
        .clone();
    assert_eq!(checkpoint.remaining_runs(), runs);
    let outcome = engine.run_planned_batched_supervised(
        || build_mlp(7),
        fault,
        &x,
        metric,
        8,
        4,
        &SweepControl::new().with_resume(checkpoint),
    )?;
    assert!(outcome.is_complete());
    assert_eq!(
        outcome.summary().per_run,
        baseline.per_run,
        "deadline + resume diverged"
    );
    println!("expired-deadline sweep resumed to the same bit-identical summary");

    println!("\nall hardened-sweep claims verified");
    Ok(())
}
