//! Image classification with the binarized residual CNN (the paper's
//! CIFAR-10 / ResNet-18 scenario) and a robustness comparison between the
//! conventional network and the proposed inverted-normalization BayNN under
//! bit-flip faults.
//!
//! Run with `cargo run --release --example image_classification`.

use invnorm::prelude::*;
use invnorm_datasets::images::{self, ImageDatasetConfig};
use invnorm_models::resnet::{self, MicroResNetConfig};
use invnorm_nn::train::{fit_classifier, TrainConfig};
use invnorm_quant::fake_quant::quantize_layer_weights;

fn train_variant(
    variant: NormVariant,
    split: &invnorm_datasets::ClassificationSplit,
) -> Result<BuiltModel, NnError> {
    let mut model = resnet::build(
        &MicroResNetConfig {
            in_channels: 3,
            classes: split.classes,
            base_channels: 8,
            binary_activations: true,
            seed: 11,
        },
        variant,
    )?;
    let mut optimizer = Adam::new(0.01);
    fit_classifier(
        &mut model,
        &mut optimizer,
        &split.train_inputs,
        &split.train_labels,
        &TrainConfig {
            epochs: 10,
            batch_size: 16,
            ..TrainConfig::default()
        },
    )?;
    // Deploy: binarize the weights (W/A = 1/1, Table I of the paper).
    let quant = model.quant;
    quantize_layer_weights(&mut model, &quant)?;
    Ok(model)
}

fn mc_accuracy(
    model: &mut BuiltModel,
    split: &invnorm_datasets::ClassificationSplit,
) -> Result<f32, NnError> {
    let passes = if model.variant.is_bayesian() { 10 } else { 1 };
    BayesianPredictor::new(passes)
        .predict_classification(model, &split.test_inputs)?
        .accuracy(&split.test_labels)
}

fn main() -> Result<(), NnError> {
    // Synthetic CIFAR-like dataset (see DESIGN.md for the substitution).
    let split = images::generate(&ImageDatasetConfig {
        classes: 6,
        size: 16,
        train_per_class: 24,
        test_per_class: 8,
        ..ImageDatasetConfig::default()
    });
    println!(
        "dataset: {} training / {} test images, {} classes",
        split.train_len(),
        split.test_len(),
        split.classes
    );

    for variant in [NormVariant::Conventional, NormVariant::proposed()] {
        let mut model = train_variant(variant, &split)?;
        let clean = mc_accuracy(&mut model, &split)?;
        println!(
            "\n[{}] clean accuracy: {:.2}%",
            variant.label(),
            100.0 * clean
        );

        // Bit-flip robustness: flip each binary weight's sign with rate r.
        for rate in [0.05f32, 0.15, 0.30] {
            let mut injector = WeightFaultInjector::new(FaultModel::BinaryBitFlip { rate })?;
            let mut accuracies = Vec::new();
            for run in 0..10u64 {
                let mut rng = Rng::seed_from(1000 + run);
                injector.inject(&mut model, &mut rng)?;
                let accuracy = mc_accuracy(&mut model, &split);
                injector.restore(&mut model)?;
                accuracies.push(accuracy?);
            }
            let mean = accuracies.iter().sum::<f32>() / accuracies.len() as f32;
            println!(
                "[{}] accuracy at {:>4.0}% bit flips: {:.2}%",
                variant.label(),
                rate * 100.0,
                100.0 * mean
            );
        }
    }
    println!("\nExpected shape: the Proposed variant degrades much more gracefully.");
    Ok(())
}
