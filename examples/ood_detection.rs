//! Out-of-distribution detection with the Bayesian inverted-normalization
//! network (the paper's Fig. 7 scenario): as test images are rotated or
//! corrupted with uniform noise, accuracy drops, the negative log-likelihood
//! rises, and thresholding the per-sample NLL flags the shifted inputs.
//!
//! Run with `cargo run --release --example ood_detection`.

use invnorm::prelude::*;
use invnorm_datasets::images::{self, ImageDatasetConfig};
use invnorm_datasets::ood::{add_uniform_noise, rotate_images};
use invnorm_models::resnet::{self, MicroResNetConfig};
use invnorm_nn::train::{fit_classifier, TrainConfig};

fn main() -> Result<(), NnError> {
    let split = images::generate(&ImageDatasetConfig {
        classes: 6,
        size: 16,
        train_per_class: 24,
        test_per_class: 8,
        ..ImageDatasetConfig::default()
    });

    // The proposed Bayesian model (inverted normalization + affine dropout).
    let mut model = resnet::build(
        &MicroResNetConfig {
            in_channels: 3,
            classes: split.classes,
            base_channels: 8,
            binary_activations: false,
            seed: 33,
        },
        NormVariant::proposed(),
    )?;
    let mut optimizer = Adam::new(0.01);
    fit_classifier(
        &mut model,
        &mut optimizer,
        &split.train_inputs,
        &split.train_labels,
        &TrainConfig {
            epochs: 12,
            batch_size: 16,
            ..TrainConfig::default()
        },
    )?;

    let predictor = BayesianPredictor::new(16);

    // Calibrate the NLL threshold on the clean (in-distribution) test set.
    let id_prediction = predictor.predict_classification(&mut model, &split.test_inputs)?;
    let detector = OodDetector::calibrate(&id_prediction, &split.test_labels)?;
    println!(
        "in-distribution: accuracy {:.2}%, NLL {:.3}, detector threshold {:.3}",
        100.0 * id_prediction.accuracy(&split.test_labels)?,
        id_prediction.nll(&split.test_labels)?,
        detector.threshold()
    );

    println!("\nrotation sweep (paper Fig. 7 right):");
    println!(
        "{:>10} {:>10} {:>8} {:>14}",
        "degrees", "accuracy", "NLL", "OOD detected"
    );
    for stage in 1..=6 {
        let degrees = stage as f32 * 14.0;
        let rotated = rotate_images(&split.test_inputs, degrees);
        let prediction = predictor.predict_classification(&mut model, &rotated)?;
        println!(
            "{:>10.0} {:>9.2}% {:>8.3} {:>13.1}%",
            degrees,
            100.0 * prediction.accuracy(&split.test_labels)?,
            prediction.nll(&split.test_labels)?,
            100.0 * detector.detection_rate_for(&prediction, &split.test_labels)?
        );
    }

    println!("\nuniform-noise sweep (paper Fig. 7 left):");
    println!(
        "{:>10} {:>10} {:>8} {:>14}",
        "strength", "accuracy", "NLL", "OOD detected"
    );
    let mut rng = Rng::seed_from(5);
    for stage in 1..=6 {
        let strength = stage as f32 * 0.4;
        let noisy = add_uniform_noise(&split.test_inputs, strength, &mut rng);
        let prediction = predictor.predict_classification(&mut model, &noisy)?;
        println!(
            "{:>10.1} {:>9.2}% {:>8.3} {:>13.1}%",
            strength,
            100.0 * prediction.accuracy(&split.test_labels)?,
            prediction.nll(&split.test_labels)?,
            100.0 * detector.detection_rate_for(&prediction, &split.test_labels)?
        );
    }

    println!(
        "\nExpected shape: accuracy falls, NLL rises, and the detection rate grows with the shift."
    );
    Ok(())
}
