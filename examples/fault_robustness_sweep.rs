//! A full fault-robustness sweep on the audio task (the paper's Fig. 6a
//! scenario): accuracy of every method variant as a function of additive
//! conductance variation, printed as a small text table.
//!
//! Run with `cargo run --release --example fault_robustness_sweep`.

use invnorm::prelude::*;
use invnorm_datasets::audio::{self, AudioDatasetConfig};
use invnorm_models::m5::{self, M5NetConfig};
use invnorm_nn::train::{fit_classifier, TrainConfig};
use invnorm_quant::fake_quant::quantize_layer_weights;

fn main() -> Result<(), NnError> {
    let split = audio::generate(&AudioDatasetConfig {
        classes: 6,
        length: 128,
        train_per_class: 24,
        test_per_class: 8,
        ..AudioDatasetConfig::default()
    });

    let variants = [
        NormVariant::Conventional,
        NormVariant::SpinDrop { p: 0.3 },
        NormVariant::SpatialSpinDrop { p: 0.3 },
        NormVariant::proposed(),
    ];
    let sigmas = [0.0f32, 0.2, 0.4, 0.6, 0.8];

    // Train one 8-bit M5 model per variant.
    let mut models = Vec::new();
    for variant in variants {
        let mut model = m5::build(
            &M5NetConfig {
                classes: split.classes,
                base_channels: 8,
                seed: 21,
            },
            variant,
        )?;
        let mut optimizer = Adam::new(0.01);
        fit_classifier(
            &mut model,
            &mut optimizer,
            &split.train_inputs,
            &split.train_labels,
            &TrainConfig {
                epochs: 10,
                batch_size: 16,
                ..TrainConfig::default()
            },
        )?;
        let quant = model.quant;
        quantize_layer_weights(&mut model, &quant)?;
        models.push(model);
    }

    // Sweep additive conductance variation, 15 Monte-Carlo chips per point.
    println!("accuracy (%) under additive conductance variation, synthetic speech commands");
    print!("{:>6}", "σ");
    for variant in variants {
        print!(" {:>16}", variant.label());
    }
    println!();
    let mut clean_acc = vec![0.0f32; models.len()];
    let mut worst_acc = vec![1.0f32; models.len()];
    for &sigma in &sigmas {
        print!("{sigma:>6.2}");
        for (vi, model) in models.iter_mut().enumerate() {
            let accuracy = if sigma == 0.0 {
                evaluate(model, &split)?
            } else {
                let engine = MonteCarloEngine::new(15, 3);
                let split_ref = &split;
                engine
                    .run(model, FaultModel::AdditiveVariation { sigma }, |network| {
                        let passes = 6;
                        BayesianPredictor::new(passes)
                            .predict_classification(network, &split_ref.test_inputs)?
                            .accuracy(&split_ref.test_labels)
                    })?
                    .mean
            };
            if sigma == 0.0 {
                clean_acc[vi] = accuracy;
            }
            worst_acc[vi] = worst_acc[vi].min(accuracy);
            print!(" {:>16.2}", 100.0 * accuracy);
        }
        println!();
    }
    println!("\nExpected shape: the Proposed column stays high the longest as σ grows.");
    // Self-verification: every variant must learn the task well above the
    // 1/6 chance level fault-free, and the sweep must actually degrade it.
    for (vi, variant) in variants.iter().enumerate() {
        assert!(
            clean_acc[vi] > 0.5,
            "{}: fault-free accuracy {:.3} barely above chance",
            variant.label(),
            clean_acc[vi]
        );
        assert!(
            worst_acc[vi] < clean_acc[vi],
            "{}: conductance variation did not degrade accuracy",
            variant.label()
        );
    }
    Ok(())
}

fn evaluate(
    model: &mut BuiltModel,
    split: &invnorm_datasets::ClassificationSplit,
) -> Result<f32, NnError> {
    let passes = if model.variant.is_bayesian() { 10 } else { 1 };
    BayesianPredictor::new(passes)
        .predict_classification(model, &split.test_inputs)?
        .accuracy(&split.test_labels)
}
