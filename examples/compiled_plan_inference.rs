//! Compiled inference plans for Monte-Carlo fault simulation: the network is
//! compiled **once** per worker (one-shot shape inference, arena-backed
//! buffers, cached packed-weight panels), fault realizations land in
//! plan-owned faulty buffers, and only panels covering dirty weight rows are
//! re-packed between chip instances. The example verifies the planned
//! engine is **bit-identical** to the sequential engine, then prints the
//! wall-clock advantage on the paper's two evaluation shapes.
//!
//! Run with `cargo run --release --example compiled_plan_inference`.

use invnorm_imc::fault::FaultModel;
use invnorm_imc::montecarlo::MonteCarloEngine;
use invnorm_nn::activation::Relu;
use invnorm_nn::conv::Conv2d;
use invnorm_nn::layer::Mode;
use invnorm_nn::linear::Linear;
use invnorm_nn::pool::MaxPool2d;
use invnorm_nn::reshape::Flatten;
use invnorm_nn::{NnError, Sequential};
use invnorm_tensor::{Rng, Tensor};
use std::time::Instant;

/// The paper's linear probe: one 512→256 dense layer.
fn build_probe(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    Sequential::new().with(Box::new(Linear::new(512, 256, &mut rng)))
}

/// A small CIFAR-shaped CNN built from plan-capable layers.
fn build_cnn(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    Sequential::new()
        .with(Box::new(Conv2d::new(3, 8, 5, 1, 2, &mut rng)))
        .with(Box::new(Relu::new()))
        .with(Box::new(MaxPool2d::new(2)))
        .with(Box::new(Flatten::new()))
        .with(Box::new(Linear::new(8 * 16 * 16, 10, &mut rng)))
}

fn sweep<F>(
    label: &str,
    factory: F,
    input: &Tensor,
    engine: &MonteCarloEngine,
    faults: &[FaultModel],
) -> Result<(), NnError>
where
    F: Fn() -> Sequential + Sync + Copy,
{
    println!("\n{label}");
    println!(
        "{:<22} {:>14} {:>12} {:>12} {:>9}",
        "fault", "mean ± std", "seq (ms)", "planned", "speedup"
    );
    for &fault in faults {
        // Sequential reference: shapes re-derived, scratch re-allocated and
        // every weight panel re-packed on every run.
        let mut net = factory();
        let xs = input.clone();
        let t0 = Instant::now();
        let sequential = engine.run(&mut net, fault, |n| {
            Ok(n.forward(&xs, Mode::Eval)?.abs().mean())
        })?;
        let t_seq = t0.elapsed();

        // Planned engine: compile once per worker, re-pack only dirty rows.
        let t0 = Instant::now();
        let planned = engine.run_planned(factory, fault, input, |out| Ok(out.abs().mean()), 4)?;
        let t_planned = t0.elapsed();

        // Bit-identity is the whole point: assert it, loudly.
        let identical = sequential
            .per_run
            .iter()
            .zip(planned.per_run.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "planned metrics diverged for {fault:?}");

        println!(
            "{:<22} {:>8.4} ± {:<5.4} {:>10.1} {:>10.1} {:>8.2}x",
            fault.label(),
            planned.mean,
            planned.std,
            t_seq.as_secs_f64() * 1e3,
            t_planned.as_secs_f64() * 1e3,
            t_seq.as_secs_f64() / t_planned.as_secs_f64(),
        );
    }
    Ok(())
}

fn main() -> Result<(), NnError> {
    let engine = MonteCarloEngine::new(32, 0xC0FFEE);
    let faults = [
        FaultModel::AdditiveVariation { sigma: 0.1 },
        FaultModel::StuckAt { rate: 0.05 },
        FaultModel::Drift {
            nu: 0.05,
            time_ratio: 100.0,
        },
    ];

    println!(
        "Compiled-plan Monte-Carlo fault sweep, {} chip instances per point \
         (per-run metrics bit-identical to the sequential engine)",
        engine.runs()
    );

    let x_probe = Tensor::randn(&[64, 512], 0.0, 1.0, &mut Rng::seed_from(7));
    sweep(
        "linear probe (512 -> 256, batch 64)",
        || build_probe(1),
        &x_probe,
        &engine,
        &faults,
    )?;

    let x_cnn = Tensor::randn(&[8, 3, 32, 32], 0.0, 1.0, &mut Rng::seed_from(8));
    sweep(
        "CIFAR-shaped CNN (batch 8)",
        || build_cnn(2),
        &x_cnn,
        &engine,
        &faults,
    )?;

    println!("\nAll planned sweeps reproduced the sequential engine bit-for-bit.");
    Ok(())
}
