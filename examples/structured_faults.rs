//! Structured fault topologies and the graceful-degradation engine ladder.
//!
//! Demonstrates the three structured additions to the fault catalogue —
//! whole stuck crossbar lines ([`FaultModel::LineDefect`]), per-tile
//! correlated retention drift ([`FaultModel::CorrelatedDrift`]) and
//! transient read noise (any model carried with a per-inference
//! [`FaultLifetime`]) — and runs them through
//! `MonteCarloEngine::run_auto`, which picks the fastest engine that
//! supports each configuration and degrades down the ladder
//! `run_planned_batched → run_planned → run_batched → run_parallel` with a
//! typed reason per skipped rung. Every claim printed below is asserted.
//!
//! Run with `cargo run --release --example structured_faults`.

use invnorm_imc::montecarlo::MonteCarloEngine;
use invnorm_imc::{
    DegradationPolicy, EngineKind, FallbackReason, FaultLifetime, FaultModel, FaultSpec,
    LineOrientation, TileShape,
};
use invnorm_nn::activation::Relu;
use invnorm_nn::layer::Mode;
use invnorm_nn::linear::Linear;
use invnorm_nn::lstm::Lstm;
use invnorm_nn::norm::GroupNorm;
use invnorm_nn::{NnError, Sequential};
use invnorm_tensor::{Rng, Tensor};

fn build_mlp(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    Sequential::new()
        .with(Box::new(Linear::new(16, 32, &mut rng)))
        .with(Box::new(GroupNorm::layer_norm(32)))
        .with(Box::new(Relu::new()))
        .with(Box::new(Linear::new(32, 4, &mut rng)))
}

fn main() -> Result<(), NnError> {
    let x = Tensor::randn(&[8, 16], 0.0, 1.0, &mut Rng::seed_from(5));
    let engine = MonteCarloEngine::new(24, 0xBEEF);
    let tile = TileShape { rows: 8, cols: 8 };

    // The structured catalogue: whole crossbar-tile lines stuck at an
    // extreme conductance, and drift whose exponent is drawn once per tile
    // (spatially correlated) instead of once per cell.
    let structured = [
        FaultModel::LineDefect {
            orientation: LineOrientation::Row,
            rate: 0.05,
            tile,
        },
        FaultModel::LineDefect {
            orientation: LineOrientation::Col,
            rate: 0.05,
            tile,
        },
        FaultModel::CorrelatedDrift {
            nu: 0.05,
            time_ratio: 1000.0,
            sigma_nu: 0.3,
            tile,
        },
    ];

    println!(
        "structured fault sweep, {} chip instances per point",
        engine.runs()
    );
    println!("{:<26} {:>16} {:>28}", "fault", "mean ± std", "engine");
    for fault in structured {
        // The ladder picks the fastest engine; a fully plan-capable MLP
        // never needs to degrade.
        let outcome = engine.run_auto(
            || build_mlp(7),
            fault,
            &x,
            |out| Ok(out.abs().mean()),
            8,
            4,
            DegradationPolicy::Graceful,
        )?;
        assert_eq!(outcome.engine, EngineKind::PlannedBatched);
        assert!(outcome.fallbacks.is_empty());

        // Bit-identity down the ladder: the sequential reference engine
        // reproduces the auto-selected engine's metrics exactly.
        let mut net = build_mlp(7);
        let xs = x.clone();
        let sequential = engine.run(&mut net, fault, |n| {
            Ok(n.forward(&xs, Mode::Eval)?.abs().mean())
        })?;
        assert_eq!(
            sequential.per_run, outcome.summary.per_run,
            "{fault:?} diverged from the sequential engine"
        );
        println!(
            "{:<26} {:>8.4} ± {:>5.4} {:>28}",
            fault.label(),
            outcome.summary.mean,
            outcome.summary.std,
            outcome.engine.name(),
        );
    }

    // Transient read noise: the same Gaussian model, but re-drawn on every
    // inference. Only the planned engines model fault lifetime, so the
    // direct engines reject the spec loudly...
    let read_noise = FaultSpec::new(
        FaultModel::AdditiveVariation { sigma: 0.1 },
        FaultLifetime::PerInference,
    );
    let err = engine
        .run_batched(
            || build_mlp(7),
            read_noise,
            &x,
            |o| Ok(o.abs().mean()),
            8,
            4,
        )
        .unwrap_err();
    assert!(matches!(err, NnError::FaultUnsupported { .. }));
    println!("\ndirect engine on per-inference read noise: {err}");

    // ...while the ladder keeps the run on the planned rung, and — because
    // each chip instance runs exactly one forward — the per-run metrics
    // stay bit-identical to the static lifetime (the documented
    // reproducibility boundary).
    let outcome = engine.run_auto(
        || build_mlp(7),
        read_noise,
        &x,
        |out| Ok(out.abs().mean()),
        8,
        4,
        DegradationPolicy::Graceful,
    )?;
    assert_eq!(outcome.engine, EngineKind::PlannedBatched);
    let static_ref = engine.run_auto(
        || build_mlp(7),
        read_noise.model,
        &x,
        |out| Ok(out.abs().mean()),
        8,
        4,
        DegradationPolicy::Graceful,
    )?;
    assert_eq!(outcome.summary.per_run, static_ref.summary.per_run);
    println!(
        "per-inference read noise on {}: mean {:.4} (bit-identical to static for single-forward metrics)",
        outcome.engine.name(),
        outcome.summary.mean
    );

    // An Lstm supports neither compiled plans nor batched evaluation: the
    // ladder records one typed reason per skipped rung and lands on
    // run_parallel, which supports every layer.
    let build_lstm = || -> Sequential {
        let mut rng = Rng::seed_from(21);
        Sequential::new().with(Box::new(Lstm::new(6, 8, false, &mut rng)))
    };
    let xs = Tensor::randn(&[2, 5, 6], 0.0, 1.0, &mut Rng::seed_from(22));
    let outcome = engine.run_auto(
        build_lstm,
        FaultModel::AdditiveVariation { sigma: 0.05 },
        &xs,
        |out| Ok(out.abs().mean()),
        8,
        2,
        DegradationPolicy::Graceful,
    )?;
    assert_eq!(outcome.engine, EngineKind::Parallel);
    assert_eq!(outcome.fallbacks.len(), 3);
    println!("\nLstm network degraded to {}:", outcome.engine.name());
    for step in &outcome.fallbacks {
        assert!(matches!(
            step.reason,
            FallbackReason::Unsupported { layer: "Lstm", .. }
        ));
        println!("  skipped {:<38} ({})", step.engine.name(), step.reason);
    }

    // Strict mode keeps the pre-ladder behavior: the fastest engine's
    // rejection propagates loudly instead of degrading.
    let strict = engine.run_auto(
        build_lstm,
        FaultModel::AdditiveVariation { sigma: 0.05 },
        &xs,
        |out| Ok(out.abs().mean()),
        8,
        2,
        DegradationPolicy::Strict,
    );
    let err = strict.expect_err("strict mode must not degrade");
    println!("\nstrict policy on the same network: {err}");

    println!("\nall structured-fault and ladder claims verified");
    Ok(())
}
