//! Integer inference end-to-end: train a float classifier, quantize it to
//! i8 codes, run the forward pass through the integer GEMM, and compare
//! fault robustness between the f32 fault protocol (quantize → perturb →
//! dequantize) and the code-domain protocol (bit flips injected directly
//! into the i8 codes the hardware would program).
//!
//! Run with `cargo run --release --example quantized_inference`.

use invnorm::prelude::*;
use invnorm_nn::activation::Relu;
use invnorm_nn::train::{fit_classifier, TrainConfig};
use invnorm_tensor::ops;

fn accuracy(net: &mut dyn Layer, inputs: &Tensor, labels: &[usize]) -> Result<f32, NnError> {
    let logits = net.forward(inputs, Mode::Eval)?;
    let predicted = ops::argmax_rows(&logits)?;
    let correct = predicted.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f32 / labels.len() as f32)
}

fn main() -> Result<(), NnError> {
    let mut rng = Rng::seed_from(42);

    // ---------------------------------------------------------------- data
    // Two Gaussian blobs in 16 dimensions.
    let samples_per_class = 96usize;
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for class in 0..2usize {
        let center = if class == 0 { -0.35 } else { 0.35 };
        for _ in 0..samples_per_class {
            rows.push(Tensor::randn(&[16], center, 1.0, &mut rng));
            labels.push(class);
        }
    }
    let inputs = Tensor::stack(&rows)?;

    // ------------------------------------------------- train a float model
    let l1 = Linear::new(16, 24, &mut rng);
    let l2 = Linear::new(24, 2, &mut rng);
    // Quantization happens post-training; keep handles by rebuilding below.
    let mut net = Sequential::new();
    net.push(Box::new(l1));
    net.push(Box::new(Relu::new()));
    net.push(Box::new(l2));
    let mut optimizer = Adam::new(0.01);
    fit_classifier(
        &mut net,
        &mut optimizer,
        &inputs,
        &labels,
        &TrainConfig {
            epochs: 25,
            batch_size: 16,
            ..TrainConfig::default()
        },
    )?;
    let float_acc = accuracy(&mut net, &inputs, &labels)?;
    println!("float model accuracy:      {:.2}%", 100.0 * float_acc);

    // -------------------------------------- quantize to integer inference
    // Rebuild the quantized twin from the trained layers: weights become
    // packed i8 codes (per-output-channel scales); the forward pass runs
    // i8 activations × i8 weights → i32 through the blocked integer GEMM
    // and dequantizes once per layer.
    let mut qnet = Sequential::new();
    {
        // Walk the trained parameters back out of the container.
        let mut trained: Vec<Tensor> = Vec::new();
        net.visit_params(&mut |p| trained.push(p.value.clone()));
        let mut rebuild = Rng::seed_from(0);
        let mut fl1 = Linear::new(16, 24, &mut rebuild);
        let mut fl2 = Linear::new(24, 2, &mut rebuild);
        let mut it = trained.into_iter();
        fl1.visit_params(&mut |p| p.value = it.next().expect("l1 params"));
        fl2.visit_params(&mut |p| p.value = it.next().expect("l2 params"));
        qnet.push(Box::new(QuantizedLinear::from_linear(&fl1, 8)?));
        qnet.push(Box::new(Relu::new()));
        qnet.push(Box::new(QuantizedLinear::from_linear(&fl2, 8)?));
    }
    let quant_acc = accuracy(&mut qnet, &inputs, &labels)?;
    println!("8-bit integer accuracy:    {:.2}%", 100.0 * quant_acc);
    // Self-verification: the separable blobs must be learned nearly
    // perfectly, and 8-bit quantization must not cost more than 5 points.
    assert!(float_acc > 0.9, "float accuracy {float_acc:.3} too low");
    assert!(
        quant_acc >= float_acc - 0.05,
        "quantization lost too much accuracy ({float_acc:.3} -> {quant_acc:.3})"
    );

    // ------------------------- fault robustness: f32 vs code-domain path
    let engine = MonteCarloEngine::new(25, 7);
    println!("bit-flip robustness, {} chip instances:", engine.runs());
    let mut prev_float = 1.0f32;
    let mut prev_quant = 1.0f32;
    for rate in [0.05f32, 0.15, 0.30] {
        let fault = FaultModel::BitFlip { rate, bits: 8 };
        let (inputs_ref, labels_ref) = (&inputs, &labels);
        let float_summary = engine.run(&mut net, fault, |network| {
            accuracy(network, inputs_ref, labels_ref)
        })?;
        let quant_summary = engine.run_quantized(&mut qnet, fault, |network| {
            accuracy(network, inputs_ref, labels_ref)
        })?;
        println!(
            "  rate {:>4.1}%  f32-path {:.2}% ± {:.2}%   code-domain {:.2}% ± {:.2}%",
            100.0 * rate,
            100.0 * float_summary.mean,
            100.0 * float_summary.std,
            100.0 * quant_summary.mean,
            100.0 * quant_summary.std,
        );
        // Self-verification: raising the flip rate must keep degrading both
        // protocols (allowing a small Monte-Carlo wobble).
        assert!(
            float_summary.mean < prev_float + 0.02 && quant_summary.mean < prev_quant + 0.02,
            "bit-flip rate {rate} did not degrade accuracy"
        );
        prev_float = float_summary.mean;
        prev_quant = quant_summary.mean;
    }
    Ok(())
}
