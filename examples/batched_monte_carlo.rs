//! Batched Monte-Carlo fault simulation: evaluates B fault realizations per
//! forward pass and verifies the result is **bit-identical** to the
//! sequential engine — then prints the wall-clock advantage.
//!
//! Run with `cargo run --release --example batched_monte_carlo`.

use invnorm_imc::fault::FaultModel;
use invnorm_imc::montecarlo::MonteCarloEngine;
use invnorm_nn::activation::Relu;
use invnorm_nn::conv::Conv2d;
use invnorm_nn::layer::Mode;
use invnorm_nn::linear::Linear;
use invnorm_nn::pool::MaxPool2d;
use invnorm_nn::reshape::Flatten;
use invnorm_nn::{NnError, Sequential};
use invnorm_tensor::{Rng, Tensor};
use std::time::Instant;

/// A small CIFAR-shaped CNN built from batched-eval-capable layers.
fn build_cnn(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    Sequential::new()
        .with(Box::new(Conv2d::new(3, 8, 5, 1, 2, &mut rng)))
        .with(Box::new(Relu::new()))
        .with(Box::new(MaxPool2d::new(2)))
        .with(Box::new(Flatten::new()))
        .with(Box::new(Linear::new(8 * 16 * 16, 10, &mut rng)))
}

fn main() -> Result<(), NnError> {
    let x = Tensor::randn(&[8, 3, 32, 32], 0.0, 1.0, &mut Rng::seed_from(3));
    let engine = MonteCarloEngine::new(32, 0xC0FFEE);
    let faults = [
        FaultModel::AdditiveVariation { sigma: 0.1 },
        FaultModel::BitFlip {
            rate: 0.02,
            bits: 8,
        },
        FaultModel::StuckAt { rate: 0.05 },
        FaultModel::Drift {
            nu: 0.05,
            time_ratio: 100.0,
        },
    ];

    println!(
        "Monte-Carlo fault sweep, {} chip instances per point",
        engine.runs()
    );
    println!(
        "{:<22} {:>14} {:>12} {:>12} {:>9}",
        "fault", "mean ± std", "seq (ms)", "batched", "speedup"
    );
    for fault in faults {
        // Sequential reference: one fault realization per forward pass.
        let mut net = build_cnn(11);
        let xs = x.clone();
        let t0 = Instant::now();
        let sequential = engine.run(&mut net, fault, |n| {
            Ok(n.forward(&xs, Mode::Eval)?.abs().mean())
        })?;
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Batched engine: 16 realizations fused into each forward pass.
        let t0 = Instant::now();
        let batched = engine.run_batched(
            || build_cnn(11),
            fault,
            &x,
            |out| Ok(out.abs().mean()),
            16,
            4,
        )?;
        let bat_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Same seeds, same streams, same arithmetic: bit-identical metrics.
        assert_eq!(sequential.per_run, batched.per_run, "{fault:?} diverged");
        println!(
            "{:<22} {:>8.4} ± {:>5.4} {:>10.1} {:>10.1} {:>8.2}x",
            fault.label(),
            batched.mean,
            batched.std,
            seq_ms,
            bat_ms,
            seq_ms / bat_ms
        );
    }
    println!("\nevery batched metric column is bit-identical to the sequential engine");
    Ok(())
}
