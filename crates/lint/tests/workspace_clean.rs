//! The real workspace must lint clean: the same engine `repo_lint` runs in
//! CI is applied to the checked-in tree here, so `cargo test` alone catches
//! a violation before the dedicated CI job does.

use std::path::Path;

use invnorm_lint::{lint_workspace, load_allowlist};

#[test]
fn workspace_lints_clean() {
    // crates/lint/ → workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up");
    let allowlist = load_allowlist(&root.join("lint_allow.toml")).expect("allowlist parses");
    let report = lint_workspace(root, &allowlist).expect("workspace walk succeeds");
    assert!(
        report.files > 50,
        "suspiciously few files walked ({}) — wrong root?",
        report.files
    );
    let mut msg = String::new();
    for v in &report.violations {
        msg.push_str(&format!("{v}\n"));
    }
    for e in &report.unused_allow {
        msg.push_str(&format!(
            "stale allowlist entry at lint_allow.toml:{} ({} / {})\n",
            e.line, e.rule, e.path
        ));
    }
    assert!(report.is_clean(), "workspace has lint violations:\n{msg}");
}
