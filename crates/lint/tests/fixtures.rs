//! Fixture tests for the five invariant rules: every rule has at least one
//! firing and one non-firing source fixture, plus the tricky-lexing cases
//! (markers inside strings, nested block comments, raw strings) that would
//! defeat a grep-based checker.
//!
//! Fixtures are written as raw strings so their `unsafe` tokens lex as
//! opaque literals here and cannot trip the linter on this file itself.

use invnorm_lint::rules::lint_file;

/// Rule IDs of every violation `src` produces when linted at `path`.
fn fire(path: &str, src: &str) -> Vec<String> {
    lint_file(path, src)
        .iter()
        .map(|v| format!("{}:{}", v.rule.id(), v.line))
        .collect()
}

// ---------------------------------------------------------------- R1

#[test]
fn r1_fires_without_safety_comment() {
    let src = r#"
fn caller(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    let v = fire("crates/tensor/src/x.rs", src);
    assert_eq!(v, ["R1:3"], "{v:?}");
}

#[test]
fn r1_quiet_with_safety_comment() {
    let src = r#"
fn caller(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}
"#;
    assert!(fire("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn r1_accepts_doc_safety_section() {
    let src = r#"
/// Reads a byte.
///
/// # Safety
///
/// `p` must be valid for reads.
unsafe fn read(p: *const u8) -> u8 {
    // SAFETY: forwarded from the fn contract.
    unsafe { *p }
}
"#;
    assert!(fire("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn r1_one_comment_covers_send_sync_pair() {
    let src = r#"
struct P(*mut f32);
// SAFETY: the pointer is only dereferenced behind disjoint-range claims.
unsafe impl Send for P {}
unsafe impl Sync for P {}
"#;
    assert!(fire("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn r1_ignores_unsafe_in_strings_and_comments() {
    // `unsafe` appearing in a string literal, a line comment, a nested
    // block comment and a raw string must not count as unsafe code.
    let src = "
fn f() -> &'static str {
    // this comment says unsafe but means nothing
    /* outer /* nested unsafe */ still a comment */
    let s = r##\"unsafe { boom() }\"##;
    let _ = s;
    \"unsafe\"
}
";
    assert!(fire("crates/tensor/src/x.rs", src).is_empty());
}

// ---------------------------------------------------------------- R2

#[test]
fn r2_fires_outside_confined_crate() {
    let src = r#"
fn f(p: *const u8) -> u8 {
    // SAFETY: irrelevant — wrong crate entirely.
    unsafe { *p }
}
"#;
    let v = fire("crates/nn/src/x.rs", src);
    assert_eq!(v, ["R2:4"], "{v:?}");
}

#[test]
fn r2_quiet_inside_confined_crate() {
    let src = r#"
fn f(p: *const u8) -> u8 {
    // SAFETY: caller contract.
    unsafe { *p }
}
"#;
    assert!(fire("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn r2_requires_forbid_on_unsafe_free_crate_root() {
    let clean = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    let dirty = "pub fn f() {}\n";
    assert!(fire("crates/nn/src/lib.rs", clean).is_empty());
    assert_eq!(fire("crates/nn/src/lib.rs", dirty), ["R2:1"]);
}

#[test]
fn r2_requires_deny_unsafe_op_on_kernel_crate_root() {
    let clean = "#![deny(unsafe_op_in_unsafe_fn)]\npub fn f() {}\n";
    let dirty = "pub fn f() {}\n";
    assert!(fire("crates/tensor/src/lib.rs", clean).is_empty());
    assert_eq!(fire("crates/tensor/src/lib.rs", dirty), ["R2:1"]);
}

// ---------------------------------------------------------------- R3

#[test]
fn r3_fires_in_no_alloc_module() {
    let src = r#"//! Module docs.
//!
//! lint: no_alloc

fn hot() -> Vec<u32> {
    vec![1, 2, 3]
}
"#;
    let v = fire("crates/tensor/src/x.rs", src);
    assert_eq!(v, ["R3:6"], "{v:?}");
}

#[test]
fn r3_quiet_without_module_marker() {
    let src = r#"//! Module docs that merely *mention* lint: no_alloc mid-sentence.

fn cold() -> Vec<u32> {
    vec![1, 2, 3]
}
"#;
    assert!(fire("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn r3_alloc_ok_exempts_setup_fn() {
    let src = r#"//! Module docs.
//!
//! lint: no_alloc

// lint: alloc_ok(build-phase constructor)
fn setup() -> Vec<u32> {
    vec![1, 2, 3]
}
"#;
    assert!(fire("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn r3_test_mod_is_exempt() {
    let src = r#"//! Module docs.
//!
//! lint: no_alloc

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = vec![1];
    }
}
"#;
    assert!(fire("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn r3_fn_level_marker_scopes_to_that_fn() {
    let src = r#"
// lint: no_alloc
fn hot() {
    let _ = vec![1];
}

fn cold() {
    let _ = vec![2];
}
"#;
    let v = fire("crates/nn/src/x.rs", src);
    assert_eq!(v, ["R3:4"], "{v:?}");
}

#[test]
fn r3_static_initializer_is_exempt() {
    // `static` initializers are const-evaluated; `Vec::new()` there cannot
    // allocate at runtime.
    let src = r#"//! Module docs.
//!
//! lint: no_alloc

use std::sync::Mutex;
static REGISTRY: Mutex<Vec<u32>> = Mutex::new(Vec::new());
"#;
    assert!(fire("crates/tensor/src/x.rs", src).is_empty());
}

#[test]
fn r3_detects_collect_and_turbofish() {
    let src = r#"//! lint: no_alloc

fn hot(xs: &[u32]) -> Vec<u32> {
    xs.iter().copied().collect::<Vec<u32>>()
}
"#;
    let v = fire("crates/tensor/src/x.rs", src);
    assert_eq!(v, ["R3:4"], "{v:?}");
}

// ---------------------------------------------------------------- R4

#[test]
fn r4_fires_on_policy_violation() {
    let src = r#"
use std::sync::atomic::{AtomicUsize, Ordering};
fn f(c: &AtomicUsize) {
    c.fetch_add(1, Ordering::SeqCst);
}
"#;
    let v = fire("crates/tensor/src/telemetry.rs", src);
    assert_eq!(v, ["R4:4"], "{v:?}");
}

#[test]
fn r4_quiet_within_policy() {
    let src = r#"
use std::sync::atomic::{AtomicUsize, Ordering};
fn f(c: &AtomicUsize) {
    c.fetch_add(1, Ordering::Relaxed);
}
"#;
    assert!(fire("crates/tensor/src/telemetry.rs", src).is_empty());
}

#[test]
fn r4_fires_in_module_without_policy() {
    let src = r#"
use std::sync::atomic::{AtomicUsize, Ordering};
fn f(c: &AtomicUsize) {
    c.fetch_add(1, Ordering::Relaxed);
}
"#;
    let v = fire("crates/nn/src/x.rs", src);
    assert_eq!(v, ["R4:4"], "{v:?}");
}

#[test]
fn r4_cmp_ordering_is_not_an_atomic_ordering() {
    // `Ordering::Less` is `core::cmp::Ordering` — no atomic policy applies.
    let src = r#"
use std::cmp::Ordering;
fn f(a: u32, b: u32) -> bool {
    a.cmp(&b) == Ordering::Less
}
"#;
    assert!(fire("crates/nn/src/x.rs", src).is_empty());
}

#[test]
fn r4_static_atomic_needs_ordering_contract() {
    let dirty = r#"
use std::sync::atomic::AtomicU8;
static ACTIVE: AtomicU8 = AtomicU8::new(0);
"#;
    let clean = r#"
use std::sync::atomic::AtomicU8;
// Ordering contract: Relaxed — monotonic cache, no publication.
static ACTIVE: AtomicU8 = AtomicU8::new(0);
"#;
    assert_eq!(fire("crates/tensor/src/dispatch.rs", dirty), ["R4:3"]);
    assert!(fire("crates/tensor/src/dispatch.rs", clean).is_empty());
}

#[test]
fn r4_non_atomic_static_needs_no_contract() {
    let src = r#"
static NAMES: [&str; 2] = ["a", "b"];
"#;
    assert!(fire("crates/tensor/src/dispatch.rs", src).is_empty());
}

// ---------------------------------------------------------------- R5

#[test]
fn r5_fires_outside_dispatch_files() {
    let src = r#"
#[target_feature(enable = "avx2")]
unsafe fn k() {}
"#;
    let v = fire("crates/nn/src/x.rs", src);
    // Out-of-place file; the `unsafe` also needs its SAFETY story, and the
    // crate confinement fires too — R5 is the one under test.
    assert!(v.iter().any(|v| v.starts_with("R5:")), "{v:?}");
}

#[test]
fn r5_fires_on_safe_target_feature_fn() {
    // Rust allows safe `#[target_feature]` fns since 1.86; this workspace
    // forbids them so every feature-gated call site stays visibly unsafe.
    let src = r#"
#[target_feature(enable = "avx2")]
fn k() {}
"#;
    let v = fire("crates/tensor/src/gemm.rs", src);
    assert!(v.iter().any(|v| v.starts_with("R5:")), "{v:?}");
}

#[test]
fn r5_fires_on_pub_target_feature_fn() {
    let src = r#"
/// # Safety
///
/// Host must support AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn k() {}
"#;
    let v = fire("crates/tensor/src/gemm.rs", src);
    assert!(v.iter().any(|v| v.starts_with("R5:")), "{v:?}");
}

#[test]
fn r5_quiet_on_confined_private_unsafe_kernel() {
    let src = r#"
/// # Safety
///
/// Host must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn k() {}
"#;
    assert!(fire("crates/tensor/src/gemm.rs", src).is_empty());
}
