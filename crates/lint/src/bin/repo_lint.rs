//! `repo_lint` — runs the invariant rules (R1–R5) over the workspace and
//! exits non-zero on any non-allowlisted violation.
//!
//! ```text
//! repo_lint [--root <dir>] [--allow <file>]
//! ```
//!
//! `--root` defaults to the nearest ancestor of the current directory that
//! contains both `Cargo.toml` and `crates/` (so it works from the workspace
//! root and from any crate directory). `--allow` defaults to
//! `<root>/lint_allow.toml`; a missing allowlist means "no exceptions".

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use invnorm_lint::{lint_workspace, load_allowlist};

fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allow: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--allow" => allow = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!("usage: repo_lint [--root <dir>] [--allow <file>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("repo_lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("repo_lint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "repo_lint: no workspace root (Cargo.toml + crates/) found above {}; \
                         pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let allow_path = allow.unwrap_or_else(|| root.join("lint_allow.toml"));
    let allowlist = match load_allowlist(&allow_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repo_lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match lint_workspace(&root, &allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repo_lint: {e}");
            return ExitCode::from(2);
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    for e in &report.unused_allow {
        println!(
            "lint_allow.toml:{}: stale allowlist entry ({} at {}): it matched no violation — \
             remove it or fix its `contains`",
            e.line, e.rule, e.path
        );
    }
    if report.is_clean() {
        println!(
            "repo_lint: {} files clean ({} violation(s) allowlisted)",
            report.files, report.suppressed
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "repo_lint: {} violation(s), {} stale allowlist entr(ies) across {} files",
            report.violations.len(),
            report.unused_allow.len(),
            report.files
        );
        ExitCode::FAILURE
    }
}
