//! The five invariant rules and the per-file rule engine.
//!
//! | ID | Name | Invariant |
//! |----|------|-----------|
//! | R1 | `safety-comment` | every `unsafe` is immediately preceded by a `// SAFETY:` comment (or `# Safety` doc section) stating the proof obligation |
//! | R2 | `unsafe-confinement` | `unsafe` only under `crates/tensor`; every other crate root carries `#![forbid(unsafe_code)]`, the tensor root carries `#![deny(unsafe_op_in_unsafe_fn)]` |
//! | R3 | `hot-path-alloc` | no allocating calls in `//! lint: no_alloc` modules / `// lint: no_alloc` functions, outside `// lint: alloc_ok` setup functions |
//! | R4 | `atomic-ordering` | every `Ordering::X` matches the per-module policy table; every `static` atomic carries an ordering-contract comment |
//! | R5 | `target-feature-confinement` | `#[target_feature]` functions are `unsafe`, non-`pub`, and live only in the dispatch-routed kernel modules |
//!
//! All rules work on the comment-and-string-aware token stream from
//! [`crate::lexer`] — `unsafe` inside a string literal or a doc example
//! never fires.
//!
//! ## Marker comments
//!
//! * `// SAFETY: <proof>` (or a `/// # Safety` doc section) — discharges R1
//!   for the *immediately following* run of `unsafe`-bearing lines; the
//!   lookup walks upward over attributes, other comment lines, and
//!   already-covered `unsafe` lines (so one comment covers back-to-back
//!   `unsafe impl Send`/`Sync` pairs), and stops at the first blank or
//!   ordinary code line.
//! * `//! lint: no_alloc` — marks the whole module hot (R3).
//! * `// lint: no_alloc` immediately above an `fn` — marks that function
//!   (and everything lexically inside it) hot (R3).
//! * `// lint: alloc_ok(<why>)` immediately above an `fn` — exempts a
//!   setup/compile-time function inside a hot module (R3).
//! * `#[cfg(test)] mod …` blocks are exempt from R3 entirely.

use crate::lexer::{self, Attr, Comment, Lexed};
use crate::policy;

/// The comment's text with its sigil (`//!`, `///`, `//`) stripped and
/// leading whitespace trimmed — lint markers must *start* the comment, so
/// prose that merely mentions a marker (like this module's docs) never
/// activates it.
fn marker_text(c: &Comment) -> &str {
    let t = c.text.as_str();
    let t = t
        .strip_prefix("//!")
        .or_else(|| t.strip_prefix("///"))
        .or_else(|| t.strip_prefix("//"))
        .unwrap_or(t);
    t.trim_start()
}

/// The five invariant rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    SafetyComment,
    UnsafeConfinement,
    HotPathAlloc,
    AtomicOrdering,
    TargetFeatureConfinement,
}

impl Rule {
    /// Stable rule ID used in output and in `lint_allow.toml`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "R1",
            Rule::UnsafeConfinement => "R2",
            Rule::HotPathAlloc => "R3",
            Rule::AtomicOrdering => "R4",
            Rule::TargetFeatureConfinement => "R5",
        }
    }

    /// Human-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::UnsafeConfinement => "unsafe-confinement",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::TargetFeatureConfinement => "target-feature-confinement",
        }
    }
}

/// One rule violation at a `file:line` location.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
    /// The flagged source line, trimmed (allowlist `contains` matches this).
    pub line_text: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} ({}): {}",
            self.path,
            self.line,
            self.rule.id(),
            self.rule.name(),
            self.message
        )
    }
}

/// Per-line classification derived from the lexed file.
#[derive(Debug, Default, Clone)]
struct LineInfo {
    has_code: bool,
    /// Line has code tokens and every one of them belongs to an attribute.
    attr_only: bool,
    has_unsafe: bool,
    has_comment: bool,
    /// Indices into `Lexed::comments` of comments covering this line.
    comment_ids: Vec<usize>,
}

/// Everything the rules need about one file, computed once.
pub struct FileContext<'a> {
    pub path: &'a str,
    pub src: &'a str,
    pub lexed: Lexed,
    pub attrs: Vec<Attr>,
    lines: Vec<LineInfo>,
    src_lines: Vec<&'a str>,
    fn_spans: Vec<FnSpan>,
    test_mod_spans: Vec<(usize, usize)>,
    module_no_alloc: bool,
}

/// One `fn` item with its body's line extent and lint markers.
#[derive(Debug, Clone)]
struct FnSpan {
    body_start: usize,
    body_end: usize,
    alloc_ok: bool,
    no_alloc: bool,
}

impl<'a> FileContext<'a> {
    pub fn new(path: &'a str, src: &'a str) -> Self {
        let lexed = lexer::lex(src);
        let attrs = lexer::attributes(&lexed.tokens);

        let mut lines = vec![LineInfo::default(); lexed.line_count + 2];
        // Token membership in attributes, for attr-only line classification.
        let mut in_attr = vec![false; lexed.tokens.len()];
        for attr in &attrs {
            for flag in in_attr
                .iter_mut()
                .take(attr.tok_end + 1)
                .skip(attr.tok_start)
            {
                *flag = true;
            }
        }
        let mut line_all_attr = vec![true; lexed.line_count + 2];
        for (idx, tok) in lexed.tokens.iter().enumerate() {
            let li = &mut lines[tok.line];
            li.has_code = true;
            if tok.is_ident("unsafe") {
                li.has_unsafe = true;
            }
            if !in_attr[idx] {
                line_all_attr[tok.line] = false;
            }
        }
        for (l, li) in lines.iter_mut().enumerate() {
            li.attr_only = li.has_code && line_all_attr[l];
        }
        for (cid, c) in lexed.comments.iter().enumerate() {
            for l in c.line_start..=c.line_end.min(lexed.line_count) {
                lines[l].has_comment = true;
                lines[l].comment_ids.push(cid);
            }
        }

        let module_no_alloc = lexed
            .comments
            .iter()
            .any(|c| c.inner_doc && marker_text(c).starts_with("lint: no_alloc"));

        let mut ctx = FileContext {
            path,
            src,
            lexed,
            attrs,
            lines,
            src_lines: src.lines().collect(),
            fn_spans: Vec::new(),
            test_mod_spans: Vec::new(),
            module_no_alloc,
        };
        ctx.fn_spans = ctx.collect_fn_spans();
        ctx.test_mod_spans = ctx.collect_test_mod_spans();
        ctx
    }

    fn line_text(&self, line: usize) -> String {
        self.src_lines
            .get(line.saturating_sub(1))
            .map(|s| s.trim().to_string())
            .unwrap_or_default()
    }

    fn violation(&self, rule: Rule, line: usize, message: String) -> Violation {
        Violation {
            rule,
            path: self.path.to_string(),
            line,
            message,
            line_text: self.line_text(line),
        }
    }

    /// Does any comment covering `line` satisfy `pred`?
    fn comment_matches(&self, line: usize, pred: &dyn Fn(&Comment) -> bool) -> bool {
        self.lines.get(line).is_some_and(|li| {
            li.comment_ids
                .iter()
                .any(|&cid| pred(&self.lexed.comments[cid]))
        })
    }

    /// Walks upward from `line` looking for a marker comment, skipping
    /// attribute-only lines, comment lines, and lines for which `chain`
    /// holds (used to let one comment cover a run of `unsafe` lines).
    /// Stops at the first blank or ordinary code line. The starting line's
    /// own (trailing) comment also counts.
    fn marker_above(
        &self,
        line: usize,
        pred: &dyn Fn(&Comment) -> bool,
        chain: &dyn Fn(&LineInfo) -> bool,
    ) -> bool {
        if self.comment_matches(line, pred) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let li = &self.lines[l];
            if li.has_comment && self.comment_matches(l, pred) {
                return true;
            }
            let comment_only = li.has_comment && !li.has_code;
            if comment_only || li.attr_only || chain(li) {
                continue;
            }
            return false;
        }
        false
    }

    /// Collects every `fn` item with a body, its line extent, and any
    /// `lint:` markers in the comment run above it.
    fn collect_fn_spans(&self) -> Vec<FnSpan> {
        let toks = &self.lexed.tokens;
        let mut spans = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("fn") {
                continue;
            }
            // `fn` must introduce an item/closure header: the next token is
            // its name (fn-pointer types like `unsafe fn(…)` have `(` next
            // and carry no body of their own).
            let Some(name_tok) = toks.get(i + 1) else {
                continue;
            };
            if name_tok.ident().is_none() {
                continue;
            }
            // Find the body `{` (or `;` for bodyless trait methods) at
            // bracket/paren depth 0 from the fn keyword.
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut body_open = None;
            while let Some(tok) = toks.get(j) {
                match tok.tok {
                    lexer::Tok::Punct('(') | lexer::Tok::Punct('[') => depth += 1,
                    lexer::Tok::Punct(')') | lexer::Tok::Punct(']') => depth -= 1,
                    lexer::Tok::Punct('{') if depth == 0 => {
                        body_open = Some(j);
                        break;
                    }
                    lexer::Tok::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = body_open else { continue };
            let mut brace = 0i32;
            let mut close = open;
            for (k, tok) in toks.iter().enumerate().skip(open) {
                match tok.tok {
                    lexer::Tok::Punct('{') => brace += 1,
                    lexer::Tok::Punct('}') => {
                        brace -= 1;
                        if brace == 0 {
                            close = k;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            // Markers must sit in the contiguous comment/attribute run
            // directly above the `fn` line — no chaining through code.
            let chain = |_: &LineInfo| false;
            let alloc_ok = self.marker_above(
                t.line,
                &|c: &Comment| marker_text(c).starts_with("lint: alloc_ok"),
                &chain,
            );
            let no_alloc = self.marker_above(
                t.line,
                &|c: &Comment| !c.inner_doc && marker_text(c).starts_with("lint: no_alloc"),
                &chain,
            );
            spans.push(FnSpan {
                body_start: toks[open].line,
                body_end: toks[close].line,
                alloc_ok,
                no_alloc,
            });
        }
        spans
    }

    /// Line spans of `#[cfg(test)] mod … { … }` blocks.
    fn collect_test_mod_spans(&self) -> Vec<(usize, usize)> {
        let toks = &self.lexed.tokens;
        let mut spans = Vec::new();
        for attr in &self.attrs {
            if attr.inner || !attr.has_ident("cfg") || !attr.has_ident("test") {
                continue;
            }
            // Skip any further attributes between this one and the item.
            let mut j = attr.tok_end + 1;
            while let Some(next) = self.attrs.iter().find(|a| a.tok_start == j) {
                j = next.tok_end + 1;
            }
            // Accept `pub`/visibility modifiers before `mod`.
            while toks.get(j).is_some_and(|t| {
                t.is_ident("pub")
                    || t.is_punct('(')
                    || t.is_punct(')')
                    || t.ident().is_some_and(|i| i == "crate" || i == "super")
            }) {
                j += 1;
            }
            if !toks.get(j).is_some_and(|t| t.is_ident("mod")) {
                continue;
            }
            // Find the opening brace and match it.
            let mut k = j;
            while toks
                .get(k)
                .is_some_and(|t| !t.is_punct('{') && !t.is_punct(';'))
            {
                k += 1;
            }
            if !toks.get(k).is_some_and(|t| t.is_punct('{')) {
                continue;
            }
            let mut brace = 0i32;
            let mut close = k;
            for (m, tok) in toks.iter().enumerate().skip(k) {
                match tok.tok {
                    lexer::Tok::Punct('{') => brace += 1,
                    lexer::Tok::Punct('}') => {
                        brace -= 1;
                        if brace == 0 {
                            close = m;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            spans.push((toks[k].line, toks[close].line));
        }
        spans
    }

    fn in_test_mod(&self, line: usize) -> bool {
        self.test_mod_spans
            .iter()
            .any(|&(s, e)| line >= s && line <= e)
    }
}

/// Runs every rule over one file. `path` must be workspace-relative with
/// forward slashes — R2/R4/R5 key their policy on it.
pub fn lint_file(path: &str, src: &str) -> Vec<Violation> {
    let ctx = FileContext::new(path, src);
    let mut v = Vec::new();
    rule_safety_comment(&ctx, &mut v);
    rule_unsafe_confinement(&ctx, &mut v);
    rule_hot_path_alloc(&ctx, &mut v);
    rule_atomic_ordering(&ctx, &mut v);
    rule_target_feature(&ctx, &mut v);
    v.sort_by_key(|x| x.line);
    v
}

/// R1: every line bearing an `unsafe` token needs a `SAFETY:` comment (or a
/// `# Safety` doc section) immediately above (attributes, comment runs, and
/// already-covered `unsafe` lines may intervene) or trailing on the line.
fn rule_safety_comment(ctx: &FileContext, out: &mut Vec<Violation>) {
    let pred = |c: &Comment| c.text.contains("SAFETY:") || c.text.contains("# Safety");
    let mut flagged = std::collections::BTreeSet::new();
    for t in &ctx.lexed.tokens {
        if !t.is_ident("unsafe") || flagged.contains(&t.line) {
            continue;
        }
        let chain = |li: &LineInfo| li.has_unsafe;
        if !ctx.marker_above(t.line, &pred, &chain) {
            flagged.insert(t.line);
            out.push(
                ctx.violation(
                    Rule::SafetyComment,
                    t.line,
                    "`unsafe` without an immediately preceding `// SAFETY:` comment stating the \
                 proof obligation"
                        .to_string(),
                ),
            );
        }
    }
}

/// R2: `unsafe` tokens are only permitted under [`policy::UNSAFE_DIRS`];
/// crate roots must carry their required crate-level lint attribute.
fn rule_unsafe_confinement(ctx: &FileContext, out: &mut Vec<Violation>) {
    let allowed = policy::UNSAFE_DIRS.iter().any(|d| ctx.path.starts_with(d));
    if !allowed {
        let mut flagged = std::collections::BTreeSet::new();
        for t in &ctx.lexed.tokens {
            if t.is_ident("unsafe") && flagged.insert(t.line) {
                out.push(ctx.violation(
                    Rule::UnsafeConfinement,
                    t.line,
                    format!(
                        "`unsafe` outside the confined kernel crate ({}); move the code behind \
                         a safe `invnorm_tensor` API or add a reviewed allowlist entry",
                        policy::UNSAFE_DIRS.join(", ")
                    ),
                ));
            }
        }
    }
    // Crate-root attribute obligations.
    let is_crate_root = ctx.path.starts_with("crates/") && ctx.path.ends_with("/src/lib.rs");
    let is_workspace_root_lib = ctx.path == "src/lib.rs";
    if is_crate_root || is_workspace_root_lib {
        if policy::UNSAFE_CRATE_ROOTS.contains(&ctx.path) {
            let has = ctx
                .attrs
                .iter()
                .any(|a| a.inner && a.has_ident("deny") && a.has_ident("unsafe_op_in_unsafe_fn"));
            if !has {
                out.push(
                    ctx.violation(
                        Rule::UnsafeConfinement,
                        1,
                        "unsafe-bearing crate root must carry `#![deny(unsafe_op_in_unsafe_fn)]`"
                            .to_string(),
                    ),
                );
            }
        } else {
            let has = ctx
                .attrs
                .iter()
                .any(|a| a.inner && a.has_ident("forbid") && a.has_ident("unsafe_code"));
            if !has {
                out.push(ctx.violation(
                    Rule::UnsafeConfinement,
                    1,
                    "unsafe-free crate root must carry `#![forbid(unsafe_code)]`".to_string(),
                ));
            }
        }
    }
}

/// R3: allocating calls inside `no_alloc` scope.
fn rule_hot_path_alloc(ctx: &FileContext, out: &mut Vec<Violation>) {
    let no_alloc_fns: Vec<&FnSpan> = ctx.fn_spans.iter().filter(|f| f.no_alloc).collect();
    if !ctx.module_no_alloc && no_alloc_fns.is_empty() {
        return;
    }
    // `static`/`const` item initializers are const-evaluated: a `Vec::new()`
    // there is guaranteed allocation-free at runtime, so they are exempt.
    let const_init_spans = const_initializer_spans(&ctx.lexed.tokens);
    let in_scope = |line: usize| -> bool {
        if ctx.in_test_mod(line) {
            return false;
        }
        if const_init_spans
            .iter()
            .any(|&(s, e)| line >= s && line <= e)
        {
            return false;
        }
        let hot = ctx.module_no_alloc
            || no_alloc_fns
                .iter()
                .any(|f| line >= f.body_start && line <= f.body_end);
        if !hot {
            return false;
        }
        // Exempt when any enclosing fn is marked alloc_ok.
        !ctx.fn_spans
            .iter()
            .any(|f| f.alloc_ok && line >= f.body_start && line <= f.body_end)
    };
    let toks = &ctx.lexed.tokens;
    let flag = |line: usize, what: &str, out: &mut Vec<Violation>| {
        if in_scope(line) {
            out.push(ctx.violation(
                Rule::HotPathAlloc,
                line,
                format!(
                    "{what} allocates inside a `lint: no_alloc` scope; hoist it into a setup \
                     function marked `// lint: alloc_ok(<why>)` or reuse a preallocated buffer"
                ),
            ));
        }
    };
    for (i, t) in toks.iter().enumerate() {
        // `vec!` / `format!` macros.
        if let Some(name) = t.ident() {
            if policy::ALLOC_MACROS.contains(&name)
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                flag(t.line, &format!("`{name}!`"), out);
                continue;
            }
            // `Vec::new`-style constructor paths.
            if i + 3 < toks.len() && toks[i + 1].is_punct(':') && toks[i + 2].is_punct(':') {
                if let Some(m) = toks[i + 3].ident() {
                    if policy::ALLOC_PATHS
                        .iter()
                        .any(|&(ty, me)| ty == name && me == m)
                    {
                        flag(t.line, &format!("`{name}::{m}`"), out);
                        continue;
                    }
                }
            }
        }
        // `.to_vec()` / `.clone()` / `.collect…` method calls.
        if t.is_punct('.') {
            if let Some(m) = toks.get(i + 1).and_then(|x| x.ident()) {
                if policy::ALLOC_METHODS.contains(&m)
                    && toks
                        .get(i + 2)
                        .is_some_and(|n| n.is_punct('(') || n.is_punct(':'))
                {
                    flag(toks[i + 1].line, &format!("`.{m}()`"), out);
                }
            }
        }
    }
}

/// Line spans of `static NAME: … = …;` / `const NAME: … = …;` item
/// initializers. These are const-evaluated by definition, so nothing in
/// them can allocate at runtime (R3 exempts them).
fn const_initializer_spans(toks: &[lexer::Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(kw) = t.ident() else { continue };
        if kw != "static" && kw != "const" {
            continue;
        }
        // `static [mut] NAME :` / `const NAME :` — anything else (`*const`,
        // `const {…}` blocks, const generics) lacks the `ident :` shape.
        let mut j = i + 1;
        if kw == "static" && toks.get(j).is_some_and(|x| x.is_ident("mut")) {
            j += 1;
        }
        if toks.get(j).and_then(|x| x.ident()).is_none() {
            continue;
        }
        if !toks.get(j + 1).is_some_and(|x| x.is_punct(':')) {
            continue;
        }
        // Find `=` then the terminating `;` at bracket depth 0.
        let mut k = j + 2;
        let mut depth = 0i32;
        let mut eq = None;
        while let Some(tok) = toks.get(k) {
            match tok.tok {
                lexer::Tok::Punct('(') | lexer::Tok::Punct('[') | lexer::Tok::Punct('{') => {
                    depth += 1
                }
                lexer::Tok::Punct(')') | lexer::Tok::Punct(']') | lexer::Tok::Punct('}') => {
                    depth -= 1
                }
                lexer::Tok::Punct('=') if depth == 0 && eq.is_none() => eq = Some(k),
                lexer::Tok::Punct(';') if depth == 0 => {
                    if let Some(eq) = eq {
                        spans.push((toks[eq].line, tok.line));
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
    }
    spans
}

/// R4: atomic-ordering policy conformance plus ordering-contract comments on
/// static atomics.
fn rule_atomic_ordering(ctx: &FileContext, out: &mut Vec<Violation>) {
    let toks = &ctx.lexed.tokens;
    let module_policy = policy::ATOMIC_POLICY
        .iter()
        .find(|(p, _)| *p == ctx.path)
        .map(|(_, o)| *o);
    // Ordering uses.
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("Ordering") {
            continue;
        }
        if !(toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && toks.get(i + 2).is_some_and(|x| x.is_punct(':')))
        {
            continue;
        }
        let Some(variant) = toks.get(i + 3).and_then(|x| x.ident()) else {
            continue;
        };
        if !policy::ATOMIC_ORDERINGS.contains(&variant) {
            continue; // `cmp::Ordering::{Less,Equal,Greater}` etc.
        }
        match module_policy {
            None => out.push(ctx.violation(
                Rule::AtomicOrdering,
                t.line,
                format!(
                    "`Ordering::{variant}` in a module with no declared atomic-ordering policy; \
                     add this file to `policy::ATOMIC_POLICY` with a rationale"
                ),
            )),
            Some(allowed) if !allowed.contains(&variant) => out.push(ctx.violation(
                Rule::AtomicOrdering,
                t.line,
                format!(
                    "`Ordering::{variant}` violates this module's policy (allowed: {})",
                    allowed.join(", ")
                ),
            )),
            Some(_) => {}
        }
    }
    // Static atomics need an ordering-contract comment.
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("static") {
            continue;
        }
        // `static NAME: <type…> =` — scan the type tokens for `Atomic*`.
        let Some(name) = toks.get(i + 1).and_then(|x| x.ident()) else {
            continue;
        };
        if !toks.get(i + 2).is_some_and(|x| x.is_punct(':')) {
            continue;
        }
        let mut j = i + 3;
        let mut is_atomic = false;
        while let Some(tok) = toks.get(j) {
            match &tok.tok {
                lexer::Tok::Punct('=') | lexer::Tok::Punct(';') => break,
                lexer::Tok::Ident(ty) if ty.starts_with("Atomic") => {
                    is_atomic = true;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        if !is_atomic {
            continue;
        }
        let pred = |c: &Comment| c.text.to_ascii_lowercase().contains("ordering");
        let chain = |_: &LineInfo| false;
        if !ctx.marker_above(t.line, &pred, &chain) {
            out.push(ctx.violation(
                Rule::AtomicOrdering,
                t.line,
                format!(
                    "static atomic `{name}` lacks an ordering-contract comment (state which \
                     orderings its users rely on and why they suffice)"
                ),
            ));
        }
    }
}

/// R5: `#[target_feature]` confinement.
fn rule_target_feature(ctx: &FileContext, out: &mut Vec<Violation>) {
    let toks = &ctx.lexed.tokens;
    for attr in &ctx.attrs {
        if attr.inner || !attr.has_ident("target_feature") {
            continue;
        }
        let line = attr.line_start;
        if !policy::TARGET_FEATURE_FILES.contains(&ctx.path) {
            out.push(ctx.violation(
                Rule::TargetFeatureConfinement,
                line,
                "`#[target_feature]` outside the dispatch-routed kernel modules; feature-gated \
                 code must be reachable only via `invnorm_tensor::dispatch`"
                    .to_string(),
            ));
            continue;
        }
        // Skip trailing attributes to the fn header and collect modifiers.
        let mut j = attr.tok_end + 1;
        while let Some(next) = ctx.attrs.iter().find(|a| a.tok_start == j) {
            j = next.tok_end + 1;
        }
        let mut is_pub = false;
        let mut is_unsafe = false;
        let mut found_fn = false;
        while let Some(tok) = toks.get(j) {
            match tok.ident() {
                Some("pub") => is_pub = true,
                Some("unsafe") => is_unsafe = true,
                Some("fn") => {
                    found_fn = true;
                    break;
                }
                Some("extern") | Some("const") => {}
                _ => {
                    // Visibility scope `pub(crate)` parens.
                    if !(tok.is_punct('(') || tok.is_punct(')')) {
                        break;
                    }
                }
            }
            j += 1;
        }
        if !found_fn {
            continue;
        }
        if !is_unsafe {
            out.push(
                ctx.violation(
                    Rule::TargetFeatureConfinement,
                    line,
                    "`#[target_feature]` fn must be declared `unsafe` so every call site states \
                 the CPU-support proof"
                        .to_string(),
                ),
            );
        }
        if is_pub && !policy::PUB_TARGET_FEATURE_FILES.contains(&ctx.path) {
            out.push(ctx.violation(
                Rule::TargetFeatureConfinement,
                line,
                "`#[target_feature]` fn must not be `pub` outside the dispatch surface; export \
                 a safe trampoline from `invnorm_tensor::dispatch` instead"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Violation> {
        lint_file(path, src)
    }

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule.id()).collect()
    }

    const TENSOR: &str = "crates/tensor/src/gemm.rs";

    #[test]
    fn fn_spans_cover_markers() {
        let src = "\
//! lint: no_alloc
// lint: alloc_ok(per-model setup)
pub fn setup() {
    let v = Vec::new();
}
fn hot() {
    let v = Vec::new();
}
";
        let ctx = FileContext::new(TENSOR, src);
        assert!(ctx.module_no_alloc);
        assert_eq!(ctx.fn_spans.len(), 2);
        assert!(ctx.fn_spans[0].alloc_ok);
        assert!(!ctx.fn_spans[1].alloc_ok);
        let v = lint(TENSOR, src);
        let r3: Vec<_> = v.iter().filter(|x| x.rule == Rule::HotPathAlloc).collect();
        assert_eq!(r3.len(), 1);
        assert_eq!(r3[0].line, 7);
    }

    #[test]
    fn safety_chain_covers_send_sync_pair() {
        let src = "\
// SAFETY: the raw pointer is only dereferenced at disjoint row offsets.
unsafe impl Send for P {}
unsafe impl Sync for P {}
";
        let v = lint(TENSOR, src);
        assert!(
            !rules_of(&v).contains(&"R1"),
            "chained unsafe lines should share one SAFETY comment: {v:?}"
        );
    }

    #[test]
    fn safety_comment_must_be_adjacent() {
        let src = "\
// SAFETY: stale comment.
fn other() {}

fn f(p: *mut u8) {
    unsafe { *p = 0; }
}
";
        let v = lint(TENSOR, src);
        assert!(rules_of(&v).contains(&"R1"), "{v:?}");
    }
}
