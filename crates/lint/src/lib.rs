//! # invnorm-lint
//!
//! In-tree invariant linter for the invnorm workspace: a static-analysis
//! pass that checks, at CI time, the invariants the rest of the repository
//! otherwise enforces only at runtime or by convention — `unsafe` hygiene
//! and confinement, the hot-path zero-allocation discipline, the
//! relaxed-atomic ordering policy, and `#[target_feature]` dispatch
//! confinement. See [`rules`] for the rule table (R1–R5), [`policy`] for
//! the reviewed policy data, and `lint_allow.toml` at the workspace root
//! for the commented exception list.
//!
//! Run it with:
//!
//! ```text
//! cargo run -p invnorm_lint --bin repo_lint
//! ```
//!
//! Exit codes: `0` clean, `1` violations (or stale allowlist entries),
//! `2` usage/IO errors. Every violation prints as
//! `path:line: R# (rule-name): message`.
//!
//! The implementation is dependency-free by construction (the workspace
//! builds offline): a hand-rolled, comment- and string-aware Rust lexer
//! ([`lexer`]) feeds a token-level rule engine ([`rules`]) — no external
//! parser. That buys robustness against the classic grep traps (`unsafe`
//! inside strings, nested block comments, raw strings) without the weight
//! of real syntax trees, and the same integration-tested binary lints the
//! workspace in CI and in `cargo test`.

#![forbid(unsafe_code)]

pub mod allow;
pub mod lexer;
pub mod policy;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

pub use allow::AllowEntry;
pub use rules::{lint_file, Rule, Violation};

/// Directories under the workspace root that the linter walks.
pub const LINT_DIRS: &[&str] = &["crates", "src", "tests", "examples"];

/// Result of linting the whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not suppressed by the allowlist, in path/line order.
    pub violations: Vec<Violation>,
    /// Number of violations suppressed by allowlist entries.
    pub suppressed: usize,
    /// Allowlist entries that matched nothing (stale — these fail the run).
    pub unused_allow: Vec<AllowEntry>,
    /// Number of `.rs` files linted.
    pub files: usize,
}

impl Report {
    /// True when the workspace is clean: no live violations and no stale
    /// allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.unused_allow.is_empty()
    }
}

/// Errors from the filesystem walk or the allowlist parse.
#[derive(Debug)]
pub enum LintError {
    Io(PathBuf, std::io::Error),
    Allow(allow::AllowParseError),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            LintError::Allow(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Recursively collects every `.rs` file under `root/{crates,src,tests,examples}`,
/// sorted for deterministic output. `target/` and hidden directories are
/// skipped; `shims/` is deliberately not walked — the shims stand in for
/// external crates.io dependencies and are vendored code, not product code.
pub fn collect_files(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut files = Vec::new();
    for dir in LINT_DIRS {
        let path = root.join(dir);
        if path.is_dir() {
            walk(&path, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the workspace rooted at `root` against `allowlist` entries.
pub fn lint_workspace(root: &Path, allowlist: &[AllowEntry]) -> Result<Report, LintError> {
    let files = collect_files(root)?;
    let mut report = Report {
        files: files.len(),
        ..Report::default()
    };
    let mut allow_used = vec![false; allowlist.len()];
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(file).map_err(|e| LintError::Io(file.clone(), e))?;
        for violation in rules::lint_file(&rel, &src) {
            let mut suppressed = false;
            for (i, entry) in allowlist.iter().enumerate() {
                if entry.matches(violation.rule.id(), &violation.path, &violation.line_text) {
                    allow_used[i] = true;
                    suppressed = true;
                    break;
                }
            }
            if suppressed {
                report.suppressed += 1;
            } else {
                report.violations.push(violation);
            }
        }
    }
    report.unused_allow = allowlist
        .iter()
        .zip(&allow_used)
        .filter(|(_, used)| !**used)
        .map(|(e, _)| e.clone())
        .collect();
    Ok(report)
}

/// Loads and parses the allowlist file; a missing file is an empty list.
pub fn load_allowlist(path: &Path) -> Result<Vec<AllowEntry>, LintError> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let src = fs::read_to_string(path).map_err(|e| LintError::Io(path.to_path_buf(), e))?;
    allow::parse(&src).map_err(LintError::Allow)
}
