//! The checked-in violation allowlist (`lint_allow.toml`).
//!
//! Some violations are intentional — e.g. the counting-allocator test
//! harnesses implement `GlobalAlloc`, which is inherently `unsafe`, outside
//! `crates/tensor`. Those exceptions live in a reviewed, commented file at
//! the workspace root rather than in scattered source annotations, so adding
//! one is a visible diff on a single file.
//!
//! The file is a small TOML subset parsed by hand (the workspace has no toml
//! dependency): `#` comments, `[[allow]]` array-of-table headers, and
//! `key = "value"` string pairs. Each entry must carry:
//!
//! * `rule`   — the rule ID (`R1` … `R5`),
//! * `path`   — the workspace-relative file the violation is in,
//! * `reason` — why the exception is sound (free text, for reviewers),
//!
//! and may carry `contains`, a substring that must appear in the flagged
//! source line (narrowing the exception to specific sites instead of the
//! whole file).
//!
//! Entries that match nothing make the lint run **fail**: a stale exception
//! is a sign the code moved and the allowlist no longer describes reality.

use std::fmt;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub reason: String,
    /// Optional substring of the flagged source line this entry is scoped to.
    pub contains: Option<String>,
    /// Line of the `[[allow]]` header in the allowlist file (diagnostics).
    pub line: usize,
}

impl AllowEntry {
    /// Does this entry suppress a violation of `rule` at `path` whose
    /// flagged source line is `line_text`?
    pub fn matches(&self, rule: &str, path: &str, line_text: &str) -> bool {
        self.rule == rule
            && self.path == path
            && self
                .contains
                .as_deref()
                .is_none_or(|c| line_text.contains(c))
    }
}

/// Parse failure with the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for AllowParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allowlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AllowParseError {}

/// Parses the TOML-subset allowlist format. See the module docs for the
/// accepted grammar; anything else is a hard error so typos cannot silently
/// disable an exception (or worse, silently allow everything).
pub fn parse(src: &str) -> Result<Vec<AllowEntry>, AllowParseError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<AllowEntry> = None;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut entries, current.take(), lineno)?;
            current = Some(AllowEntry {
                rule: String::new(),
                path: String::new(),
                reason: String::new(),
                contains: None,
                line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(AllowParseError {
                line: lineno,
                message: format!("expected `[[allow]]` or `key = \"value\"`, got `{line}`"),
            });
        };
        let key = key.trim();
        let value = value.trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(AllowParseError {
                line: lineno,
                message: format!("value for `{key}` must be a double-quoted string"),
            });
        };
        let Some(entry) = current.as_mut() else {
            return Err(AllowParseError {
                line: lineno,
                message: "key/value pair before the first [[allow]] header".to_string(),
            });
        };
        match key {
            "rule" => entry.rule = value.to_string(),
            "path" => entry.path = value.to_string(),
            "reason" => entry.reason = value.to_string(),
            "contains" => entry.contains = Some(value.to_string()),
            other => {
                return Err(AllowParseError {
                    line: lineno,
                    message: format!("unknown key `{other}` (expected rule/path/reason/contains)"),
                });
            }
        }
    }
    let end = src.lines().count();
    finish(&mut entries, current.take(), end)?;
    Ok(entries)
}

fn finish(
    entries: &mut Vec<AllowEntry>,
    entry: Option<AllowEntry>,
    lineno: usize,
) -> Result<(), AllowParseError> {
    let Some(entry) = entry else { return Ok(()) };
    for (field, value) in [
        ("rule", &entry.rule),
        ("path", &entry.path),
        ("reason", &entry.reason),
    ] {
        if value.is_empty() {
            return Err(AllowParseError {
                line: lineno,
                message: format!(
                    "entry starting at line {} is missing required key `{field}`",
                    entry.line
                ),
            });
        }
    }
    entries.push(entry);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_comments() {
        let src = r#"
# Why this file exists.

[[allow]]
# test harness
rule = "R2"
path = "tests/compiled_plans.rs"
reason = "counting allocator implements GlobalAlloc"

[[allow]]
rule = "R3"
path = "crates/tensor/src/gemm.rs"
reason = "scratch"
contains = "packed_b_buf"
"#;
        let entries = parse(src).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "R2");
        assert!(entries[0].contains.is_none());
        assert_eq!(entries[1].contains.as_deref(), Some("packed_b_buf"));
    }

    #[test]
    fn missing_required_key_is_an_error() {
        let src = "[[allow]]\nrule = \"R1\"\npath = \"x.rs\"\n";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
    }

    #[test]
    fn unquoted_value_is_an_error() {
        let src = "[[allow]]\nrule = R1\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn unknown_key_is_an_error() {
        let src = "[[allow]]\nrule = \"R1\"\npath = \"x\"\nreason = \"y\"\nlinez = \"3\"\n";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("unknown key"), "{err}");
    }

    #[test]
    fn contains_scopes_matching() {
        let e = AllowEntry {
            rule: "R3".into(),
            path: "a.rs".into(),
            reason: "r".into(),
            contains: Some("Vec::new".into()),
            line: 1,
        };
        assert!(e.matches("R3", "a.rs", "let v = Vec::new();"));
        assert!(!e.matches("R3", "a.rs", "let v = vec![];"));
        assert!(!e.matches("R3", "b.rs", "let v = Vec::new();"));
        assert!(!e.matches("R1", "a.rs", "let v = Vec::new();"));
    }
}
