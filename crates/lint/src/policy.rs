//! The workspace invariant policy: which files may hold `unsafe`, where
//! `#[target_feature]` may appear, and the per-module atomic-ordering table.
//!
//! This is deliberately data, not configuration: the policy *is* part of the
//! reviewed source. Widening it (a new unsafe module, a new ordering) is a
//! diff on this file that a reviewer sees, exactly like an allowlist entry.
//!
//! Paths are workspace-relative with forward slashes.

/// Directory prefixes in which `unsafe` code is permitted (rule R2).
///
/// `crates/tensor` is the only production crate allowed to contain `unsafe`:
/// the SIMD microkernels (`gemm`/`qgemm`/`vecmath`), the disjoint-slice
/// arena views (`arena`), and the parallel GEMM output sharing all live
/// there, each behind a safe API. Everything else must stay safe Rust —
/// enforced belt-and-braces by this rule *and* by `#![forbid(unsafe_code)]`
/// on every other crate root.
pub const UNSAFE_DIRS: &[&str] = &["crates/tensor/"];

/// Files that may contain `#[target_feature]` functions (rule R5).
///
/// The runtime dispatcher (`invnorm_tensor::dispatch`) resolves a
/// [`KernelTier`] once and every `#[target_feature]` trampoline is reached
/// only through that tier check, so feature-gated code must stay in the
/// modules the dispatcher routes: the GEMM/qgemm microkernels and the
/// vecmath elementwise bodies.
pub const TARGET_FEATURE_FILES: &[&str] = &[
    "crates/tensor/src/gemm.rs",
    "crates/tensor/src/qgemm.rs",
    "crates/tensor/src/vecmath.rs",
    "crates/tensor/src/dispatch.rs",
];

/// Files whose `#[target_feature]` functions may be `pub` (rule R5).
///
/// Only the dispatch surface itself may ever export one; today it exports
/// none, and the kernel modules must keep theirs private so the dispatch
/// tier check cannot be bypassed from outside the crate.
pub const PUB_TARGET_FEATURE_FILES: &[&str] = &["crates/tensor/src/dispatch.rs"];

/// Per-module atomic-ordering policy (rule R4): `(file, allowed orderings)`.
///
/// A module that uses `std::sync::atomic::Ordering` **must** appear here; an
/// unlisted module using atomics is a violation ("declare your policy"), so
/// new concurrent code cannot land with an unreviewed ordering choice.
///
/// Rationale per entry:
///
/// * `telemetry.rs` — counters and the enable flag are monotonic statistics;
///   no reader derives happens-before from them, so `Relaxed` only.
/// * `dispatch.rs` — the cached kernel tier is write-once-idempotent (every
///   racer computes the same value) and the payload it guards is immutable
///   code, not data, so `Relaxed` is documented as sufficient.
/// * `gemm.rs` / `qgemm.rs` — the work-stealing block counters only need
///   atomicity of `fetch_add`; the rayon scope join provides the
///   happens-before edge for the produced data.
/// * `imc/supervise.rs` — `CancelToken` is an advisory flag polled between
///   chip instances; missing one poll delays cancellation by one instance
///   and transfers no data, so `Relaxed` only.
/// * `imc/montecarlo.rs` — same work-stealing chunk/batch counters as the
///   GEMM modules.
/// * `tests/*` — counting-allocator tallies and panic tripwires need the
///   increment to be atomic, nothing more.
pub const ATOMIC_POLICY: &[(&str, &[&str])] = &[
    ("crates/tensor/src/telemetry.rs", &["Relaxed"]),
    ("crates/tensor/src/dispatch.rs", &["Relaxed"]),
    ("crates/tensor/src/gemm.rs", &["Relaxed"]),
    ("crates/tensor/src/qgemm.rs", &["Relaxed"]),
    ("crates/imc/src/supervise.rs", &["Relaxed"]),
    ("crates/imc/src/montecarlo.rs", &["Relaxed"]),
    ("tests/compiled_plans.rs", &["Relaxed"]),
    ("tests/telemetry.rs", &["Relaxed"]),
    ("tests/hardened_sweeps.rs", &["Relaxed"]),
    ("examples/resumable_sweep.rs", &["Relaxed"]),
];

/// The atomic `Ordering` variants (used to tell `sync::atomic::Ordering`
/// apart from `cmp::Ordering`, whose variants are Less/Equal/Greater).
pub const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Crate roots exempt from the `#![forbid(unsafe_code)]` requirement and
/// instead required to carry `#![deny(unsafe_op_in_unsafe_fn)]` (rule R2):
/// the one crate that holds the workspace's `unsafe`.
pub const UNSAFE_CRATE_ROOTS: &[&str] = &["crates/tensor/src/lib.rs"];

/// Method names whose receiver-call allocates (rule R3).
pub const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_string",
    "to_owned",
    "clone",
    "collect",
    "into_boxed_slice",
];

/// `Type::constructor` pairs that allocate (rule R3).
pub const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Rc", "new"),
    ("Arc", "new"),
    ("HashMap", "new"),
    ("HashMap", "with_capacity"),
    ("BTreeMap", "new"),
    ("VecDeque", "new"),
    ("VecDeque", "with_capacity"),
];

/// Macros that allocate (rule R3).
pub const ALLOC_MACROS: &[&str] = &["vec", "format"];
