//! A minimal hand-rolled Rust lexer.
//!
//! The invariant rules ([`crate::rules`]) need to find *keywords* —
//! `unsafe`, `static`, `fn`, `Ordering::SeqCst` — without being fooled by
//! the same words appearing inside comments, string literals, or raw
//! strings, and they need to know which comment text precedes which line of
//! code. A full parser would be overkill (and the offline-shims constraint
//! rules out external parser crates), so this module implements exactly the
//! token classes the rules consume:
//!
//! * **identifiers** (keywords included, raw `r#ident` unescaped),
//! * **punctuation**, one character per token (`::` is two `:` tokens),
//! * **literals** — strings (with escapes), raw strings (`r"…"`,
//!   `r#"…"#` with any number of hashes, plus `b`/`br`/`c`/`cr` prefixes),
//!   char literals (escaped and plain, disambiguated from lifetimes),
//!   and numbers — whose *content* is deliberately opaque: a string
//!   containing `unsafe` never produces an `unsafe` token,
//! * **comments** — line (`//`, `///`, `//!`) and block (`/* … */`,
//!   nested) — kept separately with their line spans so rules can check
//!   "is there a `// SAFETY:` comment immediately above this line?".
//!
//! Every token and comment carries 1-based line numbers for `file:line`
//! diagnostics.

/// Token payload. Literal contents are intentionally not retained: the
/// rules only ever care that "a literal sat here".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unsafe`, `fn`, `Ordering`, …).
    Ident(String),
    /// One punctuation character (`::` lexes as two `:` tokens).
    Punct(char),
    /// String / raw-string / char / byte / number literal (content opaque).
    Literal,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(t) if t == s)
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.tok, Tok::Punct(t) if *t == c)
    }

    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(t) => Some(t),
            _ => None,
        }
    }
}

/// One comment with its (inclusive) 1-based line span. Block comments may
/// span several lines; line comments always have `line_start == line_end`.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Raw comment text including the `//` / `/*` sigils.
    pub text: String,
    pub line_start: usize,
    pub line_end: usize,
    /// True for inner doc comments (`//!` / `/*!`), which document the
    /// enclosing module — module-level lint markers live in these.
    pub inner_doc: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Total number of source lines (1-based line numbers go up to this).
    pub line_count: usize,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: malformed input
/// (unterminated strings/comments) is consumed to end-of-file, which is the
/// right degradation for a linter — rustc will reject the file anyway.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut out = Lexed::default();

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            let inner_doc = text.starts_with("//!");
            out.comments.push(Comment {
                text,
                line_start: line,
                line_end: line,
                inner_doc,
            });
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let line_start = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text: String = b[start..i].iter().collect();
            let inner_doc = text.starts_with("/*!");
            out.comments.push(Comment {
                text,
                line_start,
                line_end: line,
                inner_doc,
            });
            continue;
        }
        // String literal.
        if c == '"' {
            i = consume_string(&b, i, &mut line);
            out.tokens.push(Token {
                tok: Tok::Literal,
                line,
            });
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            if let Some(next) = consume_char_literal(&b, i) {
                out.tokens.push(Token {
                    tok: Tok::Literal,
                    line,
                });
                i = next;
            } else {
                // Lifetime: skip the quote and the identifier. No token is
                // emitted — no rule cares about lifetimes.
                i += 1;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
            }
            continue;
        }
        // Identifier / keyword / prefixed string / raw identifier.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            let ident: String = b[start..i].iter().collect();
            let raw_capable = matches!(ident.as_str(), "r" | "br" | "cr");
            let str_capable = raw_capable || matches!(ident.as_str(), "b" | "c");
            if i < n && b[i] == '"' && str_capable {
                if raw_capable {
                    i = consume_raw_string(&b, i, 0, &mut line);
                } else {
                    i = consume_string(&b, i, &mut line);
                }
                out.tokens.push(Token {
                    tok: Tok::Literal,
                    line,
                });
                continue;
            }
            if i < n && b[i] == '#' && raw_capable {
                // Either a raw string with hashes (`r#"…"#`) or, for plain
                // `r`, a raw identifier (`r#unsafe`).
                let mut hashes = 0usize;
                let mut j = i;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    i = consume_raw_string(&b, j, hashes, &mut line);
                    out.tokens.push(Token {
                        tok: Tok::Literal,
                        line,
                    });
                    continue;
                }
                if ident == "r" && hashes == 1 && j < n && is_ident_start(b[j]) {
                    let rstart = j;
                    let mut k = j;
                    while k < n && is_ident_continue(b[k]) {
                        k += 1;
                    }
                    let name: String = b[rstart..k].iter().collect();
                    out.tokens.push(Token {
                        tok: Tok::Ident(name),
                        line,
                    });
                    i = k;
                    continue;
                }
            }
            if i < n && b[i] == '\'' && ident == "b" {
                // Byte char literal `b'x'`.
                if let Some(next) = consume_char_literal(&b, i) {
                    out.tokens.push(Token {
                        tok: Tok::Literal,
                        line,
                    });
                    i = next;
                    continue;
                }
            }
            out.tokens.push(Token {
                tok: Tok::Ident(ident),
                line,
            });
            continue;
        }
        // Number literal: digits plus any alphanumeric suffix/hex/underscores
        // (dots are left to punctuation so ranges like `0..n` lex cleanly).
        if c.is_ascii_digit() {
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Literal,
                line,
            });
            continue;
        }
        out.tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    out.line_count = line;
    out
}

/// Consumes a `"…"` string starting at the opening quote; returns the index
/// one past the closing quote. Tracks embedded newlines.
fn consume_string(b: &[char], mut i: usize, line: &mut usize) -> usize {
    let n = b.len();
    i += 1; // opening quote
    while i < n {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    n
}

/// Consumes a raw string whose opening quote is at `i` and which closes with
/// `"` followed by `hashes` `#` characters. Returns the index one past the
/// closing delimiter.
fn consume_raw_string(b: &[char], mut i: usize, hashes: usize, line: &mut usize) -> usize {
    let n = b.len();
    i += 1; // opening quote
    while i < n {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == '"' {
            let mut k = 0usize;
            while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    n
}

/// Tries to consume a char literal starting at the `'` at index `i`.
/// Returns `Some(next_index)` for a char literal, `None` when the quote
/// starts a lifetime instead.
fn consume_char_literal(b: &[char], i: usize) -> Option<usize> {
    let n = b.len();
    if i + 1 >= n {
        return None;
    }
    if b[i + 1] == '\\' {
        // Escaped char: scan to the closing quote on the same line.
        let mut j = i + 2;
        while j < n && b[j] != '\'' && b[j] != '\n' {
            j += 1;
        }
        return if j < n && b[j] == '\'' {
            Some(j + 1)
        } else {
            None
        };
    }
    if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
        return Some(i + 3);
    }
    None
}

/// One attribute (`#[…]` or `#![…]`) reconstructed from the token stream.
#[derive(Debug, Clone)]
pub struct Attr {
    /// Index of the `#` token in the file's token vector.
    pub tok_start: usize,
    /// Index of the closing `]` token (inclusive).
    pub tok_end: usize,
    pub line_start: usize,
    pub line_end: usize,
    /// `#![…]` (inner) vs `#[…]` (outer).
    pub inner: bool,
    /// Every identifier appearing inside the brackets, in order.
    pub idents: Vec<String>,
}

impl Attr {
    /// True when the attribute mentions identifier `name` anywhere.
    pub fn has_ident(&self, name: &str) -> bool {
        self.idents.iter().any(|i| i == name)
    }
}

/// Reconstructs attribute spans from a token stream.
pub fn attributes(tokens: &[Token]) -> Vec<Attr> {
    let mut out = Vec::new();
    let n = tokens.len();
    let mut i = 0usize;
    while i < n {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 1;
        let inner = j < n && tokens[j].is_punct('!');
        if inner {
            j += 1;
        }
        if j >= n || !tokens[j].is_punct('[') {
            i += 1;
            continue;
        }
        let mut depth = 0usize;
        let mut idents = Vec::new();
        let mut end = j;
        while j < n {
            match &tokens[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                Tok::Ident(t) => idents.push(t.clone()),
                _ => {}
            }
            j += 1;
        }
        out.push(Attr {
            tok_start: start,
            tok_end: end,
            line_start: tokens[start].line,
            line_end: tokens[end.min(n - 1)].line,
            inner,
            idents,
        });
        i = end.max(start) + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn keywords_in_strings_and_comments_are_not_tokens() {
        let src = r##"
            // unsafe in a line comment
            /* unsafe in a block /* nested unsafe */ comment */
            let a = "unsafe { }";
            let b = r#"unsafe fn"#;
            let c = 'u';
        "##;
        assert!(!idents(src).iter().any(|i| i == "unsafe"));
    }

    #[test]
    fn real_unsafe_is_a_token_with_the_right_line() {
        let src = "fn f() {\n    unsafe { g() }\n}\n";
        let lexed = lex(src);
        let tok = lexed.tokens.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(tok.line, 2);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* a /* b */ c */ unsafe";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("unsafe")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r##"has "# inside and unsafe"##; static X: u8 = 0;"####;
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unsafe")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("static")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lexed = lex(src);
        // No literals at all; `a`s from lifetimes are skipped entirely.
        assert!(!lexed.tokens.iter().any(|t| matches!(t.tok, Tok::Literal)));
    }

    #[test]
    fn char_and_byte_literals_are_opaque() {
        let src = "let a = 'x'; let b = b'y'; let c = '\\n'; let d = '\\'';";
        let lexed = lex(src);
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Literal))
            .count();
        assert_eq!(lits, 4);
    }

    #[test]
    fn raw_identifiers_unescape() {
        let src = "let r#unsafe = 1;";
        assert!(idents(src).iter().any(|i| i == "unsafe"));
    }

    #[test]
    fn comment_line_spans() {
        let src = "// one\n/* two\nthree */\ncode();\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments[0].line_start, 1);
        assert_eq!(lexed.comments[1].line_start, 2);
        assert_eq!(lexed.comments[1].line_end, 3);
    }

    #[test]
    fn inner_doc_comments_are_flagged() {
        let src = "//! module docs\n/// item docs\n// plain\n";
        let lexed = lex(src);
        assert!(lexed.comments[0].inner_doc);
        assert!(!lexed.comments[1].inner_doc);
        assert!(!lexed.comments[2].inner_doc);
    }

    #[test]
    fn attributes_are_reconstructed() {
        let src =
            "#![forbid(unsafe_code)]\n#[target_feature(enable = \"avx2\")]\nunsafe fn k() {}\n";
        let lexed = lex(src);
        let attrs = attributes(&lexed.tokens);
        assert_eq!(attrs.len(), 2);
        assert!(attrs[0].inner);
        assert!(attrs[0].has_ident("forbid"));
        assert!(attrs[0].has_ident("unsafe_code"));
        assert!(!attrs[1].inner);
        assert!(attrs[1].has_ident("target_feature"));
    }

    #[test]
    fn numeric_literals_do_not_eat_ranges() {
        let src = "for i in 0..n { a[i] = 1.5e-3; }";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("n")));
    }
}
