//! Error type shared by all layer, loss and optimizer code.

use invnorm_tensor::TensorError;
use std::fmt;

/// Error returned by neural-network operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor-level operation failed (shape mismatch, bad axis, ...).
    Tensor(TensorError),
    /// A layer was configured with inconsistent hyper-parameters.
    Config(String),
    /// `backward` was called before `forward` (no cached activations).
    BackwardBeforeForward(&'static str),
    /// The loss received targets that do not match the predictions.
    TargetMismatch {
        /// Number of predictions.
        predictions: usize,
        /// Number of targets.
        targets: usize,
    },
    /// A layer was asked to perform an operation it does not implement
    /// (batched evaluation, compiled plans, backward on an inference-only
    /// layer, ...). Replaces the scattered ad-hoc `Config` messages so every
    /// "unsupported" failure names the layer and the operation uniformly.
    Unsupported {
        /// Human-readable layer name (from [`crate::Layer::name`]).
        layer: &'static str,
        /// The unsupported operation, e.g. `"batched evaluation"`.
        op: &'static str,
    },
    /// An execution engine cannot honor the requested fault configuration
    /// (e.g. a per-inference fault lifetime on a path that realizes faults
    /// once per run). Typed so graceful-degradation policies can distinguish
    /// a capability gap — fall down the engine ladder — from a genuine
    /// failure that must propagate.
    FaultUnsupported {
        /// The engine entry point that rejected the configuration.
        engine: &'static str,
        /// What about the fault configuration is unsupported.
        reason: String,
    },
    /// A serialized checkpoint (model parameters or Monte-Carlo sweep state)
    /// failed validation before any of its payload was trusted. Typed so
    /// callers can distinguish a stale format (re-export), a corrupted blob
    /// (discard) and a mismatched target (caller bug) without string
    /// matching.
    Checkpoint(CheckpointFault),
    /// An activation handed to a compiled plan does not match the shape the
    /// plan was compiled for. Typed (rather than a formatted `Config`
    /// string) so the Monte-Carlo engines and callers can distinguish a
    /// recompile-needed situation from genuine misconfiguration.
    ShapeMismatch {
        /// Where the mismatch was detected (layer or plan entry point).
        context: &'static str,
        /// The dims the plan was compiled for.
        expected: Vec<usize>,
        /// The dims the caller provided.
        got: Vec<usize>,
    },
}

/// Why a serialized checkpoint was rejected (see [`NnError::Checkpoint`]).
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointFault {
    /// The buffer ends before the declared content does.
    Truncated {
        /// Bytes needed to finish the read in progress.
        needed: usize,
        /// Bytes actually available from the read position.
        available: usize,
    },
    /// The buffer does not start with the expected format magic — it is not
    /// a checkpoint of this kind at all.
    BadMagic,
    /// The checkpoint was written by a different (incompatible) format
    /// version.
    VersionSkew {
        /// The version this build reads and writes.
        expected: u32,
        /// The version found in the buffer.
        got: u32,
    },
    /// The payload checksum does not match the header — the bytes were
    /// corrupted in storage or transit.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as received.
        got: u64,
    },
    /// The payload parsed but is internally inconsistent, or does not match
    /// the target it is being applied to (wrong engine, seed, shape, ...).
    Mismatch {
        /// Which field disagreed.
        field: &'static str,
        /// The value the target expects.
        expected: String,
        /// The value the checkpoint carries.
        got: String,
    },
}

impl fmt::Display for CheckpointFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointFault::Truncated { needed, available } => write!(
                f,
                "truncated: needed {needed} more bytes but only {available} remain"
            ),
            CheckpointFault::BadMagic => f.write_str("bad magic: not a checkpoint of this format"),
            CheckpointFault::VersionSkew { expected, got } => {
                write!(
                    f,
                    "version skew: this build reads v{expected}, found v{got}"
                )
            }
            CheckpointFault::ChecksumMismatch { expected, got } => write!(
                f,
                "checksum mismatch: header says {expected:#018x}, payload hashes to {got:#018x}"
            ),
            CheckpointFault::Mismatch {
                field,
                expected,
                got,
            } => write!(f, "{field} mismatch: expected {expected}, found {got}"),
        }
    }
}

impl NnError {
    /// Convenience constructor for [`NnError::Unsupported`].
    pub fn unsupported(layer: &'static str, op: &'static str) -> Self {
        NnError::Unsupported { layer, op }
    }

    /// Convenience constructor for [`NnError::FaultUnsupported`].
    pub fn fault_unsupported(engine: &'static str, reason: impl Into<String>) -> Self {
        NnError::FaultUnsupported {
            engine,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`NnError::ShapeMismatch`].
    pub fn shape_mismatch(context: &'static str, expected: &[usize], got: &[usize]) -> Self {
        NnError::ShapeMismatch {
            context,
            expected: expected.to_vec(),
            got: got.to_vec(),
        }
    }
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::Config(msg) => write!(f, "invalid layer configuration: {msg}"),
            NnError::BackwardBeforeForward(layer) => {
                write!(f, "backward called before forward on layer {layer}")
            }
            NnError::TargetMismatch {
                predictions,
                targets,
            } => write!(
                f,
                "loss received {predictions} predictions but {targets} targets"
            ),
            NnError::Unsupported { layer, op } => {
                write!(f, "layer {layer} does not support {op}")
            }
            NnError::FaultUnsupported { engine, reason } => {
                write!(f, "{engine} does not support {reason}")
            }
            NnError::Checkpoint(fault) => write!(f, "invalid checkpoint: {fault}"),
            NnError::ShapeMismatch {
                context,
                expected,
                got,
            } => write!(
                f,
                "{context}: plan compiled for shape {expected:?}, got {got:?}"
            ),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_display() {
        let te = TensorError::InvalidArgument("x".into());
        let ne: NnError = te.into();
        assert!(ne.to_string().contains("tensor error"));
        assert!(NnError::Config("bad".into()).to_string().contains("bad"));
        assert!(NnError::BackwardBeforeForward("Linear")
            .to_string()
            .contains("Linear"));
        let e = NnError::unsupported("Lstm", "batched evaluation");
        assert_eq!(
            e.to_string(),
            "layer Lstm does not support batched evaluation"
        );
        let e = NnError::fault_unsupported(
            "MonteCarloEngine::run_batched",
            "per-inference fault lifetime",
        );
        assert_eq!(
            e.to_string(),
            "MonteCarloEngine::run_batched does not support per-inference fault lifetime"
        );
    }

    #[test]
    fn checkpoint_fault_display() {
        let cases: [(CheckpointFault, &str); 5] = [
            (
                CheckpointFault::Truncated {
                    needed: 8,
                    available: 3,
                },
                "needed 8 more bytes",
            ),
            (CheckpointFault::BadMagic, "bad magic"),
            (
                CheckpointFault::VersionSkew {
                    expected: 1,
                    got: 9,
                },
                "reads v1, found v9",
            ),
            (
                CheckpointFault::ChecksumMismatch {
                    expected: 1,
                    got: 2,
                },
                "checksum mismatch",
            ),
            (
                CheckpointFault::Mismatch {
                    field: "seed",
                    expected: "1".into(),
                    got: "2".into(),
                },
                "seed mismatch",
            ),
        ];
        for (fault, needle) in cases {
            let msg = NnError::Checkpoint(fault).to_string();
            assert!(msg.starts_with("invalid checkpoint:"), "{msg}");
            assert!(msg.contains(needle), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
