//! Shape-manipulation layers (flatten / reshape).

use crate::error::NnError;
use crate::layer::{Layer, Mode};
use crate::plan::{PlanArenas, PlanCtx, PlanShape};
use crate::Result;
use invnorm_tensor::Tensor;

/// Planned execution of a pure reshape: copy the input edge into the output
/// edge (dims change, data order does not).
fn plan_copy(input: &PlanShape, output: &PlanShape, arenas: &mut PlanArenas) -> Result<()> {
    let [x, y] = arenas.f.many_mut([input.slot, output.slot]);
    y.copy_from_slice(x);
    Ok(())
}

/// Flattens all dimensions after the batch dimension: `[N, ...]` → `[N, F]`.
#[derive(Debug, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.rank() < 2 {
            return Err(NnError::Config(format!(
                "Flatten expects rank >= 2 input, got {:?}",
                input.dims()
            )));
        }
        self.input_dims = Some(input.dims().to_vec());
        let n = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        Ok(input.reshape(&[n, rest])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Flatten"))?;
        Ok(grad_output.reshape(dims)?)
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        if input.dims.len() < 2 {
            return Err(NnError::Config(format!(
                "Flatten expects rank >= 2 input, got {:?}",
                input.dims
            )));
        }
        let n = input.dims[0];
        let rest: usize = input.dims[1..].iter().product();
        Ok(PlanShape {
            slot: arenas.f.reserve(n * rest),
            dims: vec![n, rest],
        })
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        _ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        plan_copy(input, output, arenas)
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

/// Reshapes the non-batch dimensions to a fixed target shape:
/// `[N, ...]` → `[N, target...]`.
#[derive(Debug)]
pub struct Reshape {
    target: Vec<usize>,
    input_dims: Option<Vec<usize>>,
}

impl Reshape {
    /// Creates a reshape layer with the given per-sample target shape.
    pub fn new(target: &[usize]) -> Self {
        Self {
            target: target.to_vec(),
            input_dims: None,
        }
    }
}

impl Layer for Reshape {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.rank() < 1 {
            return Err(NnError::Config("Reshape expects batched input".into()));
        }
        self.input_dims = Some(input.dims().to_vec());
        let n = input.dims()[0];
        let mut dims = vec![n];
        dims.extend_from_slice(&self.target);
        Ok(input.reshape(&dims)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Reshape"))?;
        Ok(grad_output.reshape(dims)?)
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        if input.dims.is_empty() {
            return Err(NnError::Config("Reshape expects batched input".into()));
        }
        let mut dims = vec![input.dims[0]];
        dims.extend_from_slice(&self.target);
        if dims.iter().product::<usize>() != input.numel() {
            return Err(NnError::Config(format!(
                "Reshape target {:?} incompatible with input {:?}",
                self.target, input.dims
            )));
        }
        Ok(PlanShape {
            slot: arenas.f.reserve(input.numel()),
            dims,
        })
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        _ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        plan_copy(input, output, arenas)
    }

    fn name(&self) -> &'static str {
        "Reshape"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4, 5]);
        let y = f.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 60]);
        let g = f.backward(&Tensor::ones(&[2, 60])).unwrap();
        assert_eq!(g.dims(), &[2, 3, 4, 5]);
    }

    #[test]
    fn flatten_rejects_rank1() {
        let mut f = Flatten::new();
        assert!(f.forward(&Tensor::ones(&[5]), Mode::Train).is_err());
        assert!(Flatten::new().backward(&Tensor::ones(&[2, 2])).is_err());
    }

    #[test]
    fn reshape_roundtrip() {
        let mut r = Reshape::new(&[2, 6]);
        let x = Tensor::ones(&[3, 12]);
        let y = r.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[3, 2, 6]);
        let g = r.backward(&y).unwrap();
        assert_eq!(g.dims(), &[3, 12]);
        // Incompatible element count is rejected.
        let mut r = Reshape::new(&[5]);
        assert!(r.forward(&Tensor::ones(&[3, 12]), Mode::Train).is_err());
    }
}
