//! Element-wise activation layers.
//!
//! Besides the standard activations, this module provides [`SignSte`], the
//! binarized-network activation used by the paper's ResNet-18 and U-Net
//! configurations: the forward pass is `sign(x)` and the backward pass uses
//! the straight-through estimator (gradient passes where `|x| <= 1`).

use crate::error::NnError;
use crate::layer::{Layer, Mode};
use crate::plan::{PlanArenas, PlanCtx, PlanShape};
use crate::Result;
use invnorm_tensor::{vecmath, Tensor};

/// Shared planned-execution body for element-wise activations: apply the
/// slice kernel `f` from the input edge to the output edge, zero-alloc. The
/// direct (`forward`) paths use the same [`vecmath`] kernels, so planned and
/// direct execution stay bit-identical.
fn plan_elementwise(
    input: &PlanShape,
    output: &PlanShape,
    arenas: &mut PlanArenas,
    f: impl Fn(&[f32], &mut [f32]),
) -> Result<()> {
    let [x, y] = arenas.f.many_mut([input.slot, output.slot]);
    f(x, y);
    Ok(())
}

/// Implements the plan protocol for an element-wise activation: the output
/// edge mirrors the input dims and the forward applies the given
/// tier-dispatched slice kernel.
macro_rules! planned_elementwise {
    ($f:expr) => {
        fn plan_compile(
            &mut self,
            input: &PlanShape,
            arenas: &mut PlanArenas,
        ) -> Result<PlanShape> {
            Ok(arenas.reserve_like(input))
        }

        fn plan_forward(
            &mut self,
            input: &PlanShape,
            output: &PlanShape,
            _ctx: PlanCtx,
            arenas: &mut PlanArenas,
        ) -> Result<()> {
            plan_elementwise(input, output, arenas, $f)
        }
    };
}

/// Rectified linear unit, `max(0, x)`.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        let mut out = input.clone();
        vecmath::relu_mut(out.data_mut());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Relu"))?;
        if mask.len() != grad_output.numel() {
            return Err(NnError::Config(
                "Relu backward gradient size mismatch".into(),
            ));
        }
        let mut out = grad_output.clone();
        for (g, &keep) in out.data_mut().iter_mut().zip(mask.iter()) {
            if !keep {
                *g = 0.0;
            }
        }
        Ok(out)
    }

    planned_elementwise!(vecmath::relu);

    fn name(&self) -> &'static str {
        "Relu"
    }
}

/// Leaky rectified linear unit, `x` for positive inputs and `slope * x`
/// otherwise.
#[derive(Debug)]
pub struct LeakyRelu {
    slope: f32,
    mask: Option<Vec<bool>>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative-side slope.
    pub fn new(slope: f32) -> Self {
        Self { slope, mask: None }
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        let mut out = input.clone();
        vecmath::leaky_relu_mut(out.data_mut(), self.slope);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("LeakyRelu"))?;
        let mut out = grad_output.clone();
        for (g, &pos) in out.data_mut().iter_mut().zip(mask.iter()) {
            if !pos {
                *g *= self.slope;
            }
        }
        Ok(out)
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        Ok(arenas.reserve_like(input))
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        _ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let slope = self.slope;
        plan_elementwise(input, output, arenas, |src, dst| {
            vecmath::leaky_relu(src, dst, slope)
        })
    }

    fn name(&self) -> &'static str {
        "LeakyRelu"
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let mut out = input.clone();
        vecmath::tanh_mut(out.data_mut());
        self.cached_output = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let y = self
            .cached_output
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Tanh"))?;
        Ok(grad_output.zip_map(y, |g, y| g * (1.0 - y * y))?)
    }

    planned_elementwise!(vecmath::tanh);

    fn name(&self) -> &'static str {
        "Tanh"
    }
}

/// Logistic sigmoid activation.
#[derive(Debug, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Scalar sigmoid, exposed for use in LSTM gates and losses. Delegates to
/// the [`vecmath`] per-lane body, so scalar call sites compute exactly what
/// the vectorized [`Sigmoid`] layer computes.
pub fn sigmoid(x: f32) -> f32 {
    vecmath::sigmoid_scalar(x)
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let mut out = input.clone();
        vecmath::sigmoid_mut(out.data_mut());
        self.cached_output = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let y = self
            .cached_output
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Sigmoid"))?;
        Ok(grad_output.zip_map(y, |g, y| g * y * (1.0 - y))?)
    }

    planned_elementwise!(vecmath::sigmoid);

    fn name(&self) -> &'static str {
        "Sigmoid"
    }
}

/// Hard tanh: clamps the input to `[-1, 1]`; gradient is 1 inside the clamp
/// region and 0 outside.
#[derive(Debug, Default)]
pub struct Hardtanh {
    mask: Option<Vec<bool>>,
}

impl Hardtanh {
    /// Creates a hard-tanh activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Hardtanh {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        self.mask = Some(input.data().iter().map(|&x| x.abs() <= 1.0).collect());
        let mut out = input.clone();
        vecmath::hardtanh(input.data(), out.data_mut());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Hardtanh"))?;
        let mut out = grad_output.clone();
        for (g, &inside) in out.data_mut().iter_mut().zip(mask.iter()) {
            if !inside {
                *g = 0.0;
            }
        }
        Ok(out)
    }

    planned_elementwise!(vecmath::hardtanh);

    fn name(&self) -> &'static str {
        "Hardtanh"
    }
}

/// Binary activation: `sign(x)` in the forward pass (outputs ±1, with
/// `sign(0) = +1`), straight-through estimator in the backward pass
/// (gradient passes unchanged where `|x| <= 1`, is zeroed elsewhere).
///
/// This is the activation binarization used by IR-Net-style binary networks,
/// which the paper uses for its ResNet-18 (1/1-bit) and U-Net (1-bit weight)
/// configurations. Non-ideality injection for binary networks happens on the
/// *pre-activation* values (see `invnorm-imc`), i.e. on the input of this
/// layer, matching Sec. IV-A2 of the paper.
#[derive(Debug, Default)]
pub struct SignSte {
    mask: Option<Vec<bool>>,
}

impl SignSte {
    /// Creates a sign activation with straight-through gradient.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for SignSte {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        self.mask = Some(input.data().iter().map(|&x| x.abs() <= 1.0).collect());
        let mut out = input.clone();
        vecmath::sign_ste(input.data(), out.data_mut());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("SignSte"))?;
        let mut out = grad_output.clone();
        for (g, &inside) in out.data_mut().iter_mut().zip(mask.iter()) {
            if !inside {
                *g = 0.0;
            }
        }
        Ok(out)
    }

    planned_elementwise!(vecmath::sign_ste);

    fn name(&self) -> &'static str {
        "SignSte"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_tensor::Rng;

    fn check_backward_consistency(layer: &mut dyn Layer, x: &Tensor) {
        let y = layer.forward(x, Mode::Train).unwrap();
        let g = layer.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert!(!g.has_non_finite());
    }

    #[test]
    fn relu_forward_and_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = relu.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = relu
            .backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]).unwrap())
            .unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_slope() {
        let mut act = LeakyRelu::new(0.1);
        let x = Tensor::from_vec(vec![-2.0, 3.0], &[2]).unwrap();
        let y = act.forward(&x, Mode::Train).unwrap();
        assert!((y.data()[0] + 0.2).abs() < 1e-6);
        assert_eq!(y.data()[1], 3.0);
        let g = act.backward(&Tensor::ones(&[2])).unwrap();
        assert!((g.data()[0] - 0.1).abs() < 1e-6);
        assert_eq!(g.data()[1], 1.0);
    }

    #[test]
    fn tanh_and_sigmoid_gradients_match_numerical() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[10], 0.0, 1.0, &mut rng);
        let eps = 1e-3f32;

        let mut tanh = Tanh::new();
        let _ = tanh.forward(&x, Mode::Train).unwrap();
        let g = tanh.backward(&Tensor::ones(&[10])).unwrap();
        for i in 0..10 {
            let num = ((x.data()[i] + eps).tanh() - (x.data()[i] - eps).tanh()) / (2.0 * eps);
            assert!((num - g.data()[i]).abs() < 1e-3);
        }

        let mut sig = Sigmoid::new();
        let _ = sig.forward(&x, Mode::Train).unwrap();
        let g = sig.backward(&Tensor::ones(&[10])).unwrap();
        for i in 0..10 {
            let num = (sigmoid(x.data()[i] + eps) - sigmoid(x.data()[i] - eps)) / (2.0 * eps);
            assert!((num - g.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn hardtanh_clamps_and_masks_gradient() {
        let mut act = Hardtanh::new();
        let x = Tensor::from_vec(vec![-3.0, -0.5, 0.5, 3.0], &[4]).unwrap();
        let y = act.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[-1.0, -0.5, 0.5, 1.0]);
        let g = act.backward(&Tensor::ones(&[4])).unwrap();
        assert_eq!(g.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn sign_ste_outputs_binary_and_passes_gradient_inside_clip() {
        let mut act = SignSte::new();
        let x = Tensor::from_vec(vec![-2.0, -0.3, 0.0, 0.7, 1.5], &[5]).unwrap();
        let y = act.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[-1.0, -1.0, 1.0, 1.0, 1.0]);
        assert!(y.data().iter().all(|&v| v == 1.0 || v == -1.0));
        let g = act
            .backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[5]).unwrap())
            .unwrap();
        assert_eq!(g.data(), &[0.0, 2.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        assert!(Relu::new().backward(&Tensor::ones(&[1])).is_err());
        assert!(Tanh::new().backward(&Tensor::ones(&[1])).is_err());
        assert!(SignSte::new().backward(&Tensor::ones(&[1])).is_err());
    }

    #[test]
    fn all_activations_have_no_params_and_handle_random_input() {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[2, 3, 4], 0.0, 2.0, &mut rng);
        let mut layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Relu::new()),
            Box::new(LeakyRelu::new(0.01)),
            Box::new(Tanh::new()),
            Box::new(Sigmoid::new()),
            Box::new(Hardtanh::new()),
            Box::new(SignSte::new()),
        ];
        for layer in &mut layers {
            assert_eq!(layer.param_count(), 0);
            check_backward_consistency(layer.as_mut(), &x);
        }
    }
}
