//! Containers for composing layers: [`Sequential`] chains and the
//! [`Residual`] skip-connection combinator used by the residual CNN.

use crate::error::NnError;
use crate::layer::{BatchedCodeView, BatchedParamView, BoxedLayer, CodeView, Layer, Mode, Param};
use crate::plan::{PlanArenas, PlanCodeView, PlanCtx, PlanParamView, PlanShape};
use crate::Result;
use invnorm_tensor::Tensor;

/// Broadcasts a shared activation tensor to per-realization layout by tiling
/// it `batch` times along the leading dimension (used when the two branches
/// of a [`Residual`] disagree on sharedness).
fn tile_realizations(t: &Tensor, batch: usize) -> Result<Tensor> {
    let mut dims = t.dims().to_vec();
    if dims.is_empty() {
        return Err(NnError::Config(
            "cannot tile a rank-0 activation across realizations".into(),
        ));
    }
    dims[0] *= batch;
    let mut data = Vec::with_capacity(t.numel() * batch);
    for _ in 0..batch {
        data.extend_from_slice(t.data());
    }
    Ok(Tensor::from_vec(data, &dims)?)
}

/// A chain of layers applied in order; the backward pass walks them in
/// reverse.
///
/// # Example
///
/// ```
/// use invnorm_nn::activation::Relu;
/// use invnorm_nn::layer::{Layer, Mode};
/// use invnorm_nn::linear::Linear;
/// use invnorm_nn::Sequential;
/// use invnorm_tensor::{Rng, Tensor};
///
/// # fn main() -> Result<(), invnorm_nn::NnError> {
/// let mut rng = Rng::seed_from(0);
/// let mut net = Sequential::new();
/// net.push(Box::new(Linear::new(4, 8, &mut rng)));
/// net.push(Box::new(Relu::new()));
/// net.push(Box::new(Linear::new(8, 2, &mut rng)));
/// let x = Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng);
/// assert_eq!(net.forward(&x, Mode::Train)?.dims(), &[3, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<BoxedLayer>,
    plan: Option<SeqPlan>,
}

/// Compiled-plan state: every child's output edge, in chain order.
struct SeqPlan {
    shapes: Vec<PlanShape>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self {
            layers: Vec::new(),
            plan: None,
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: BoxedLayer) {
        self.layers.push(layer);
    }

    /// Builder-style [`Sequential::push`].
    #[must_use]
    pub fn with(mut self, layer: BoxedLayer) -> Self {
        self.push(layer);
        self
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over the contained layers.
    pub fn layers_mut(&mut self) -> impl Iterator<Item = &mut BoxedLayer> {
        self.layers.iter_mut()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .finish()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }

    fn visit_codes(&mut self, visitor: &mut dyn FnMut(CodeView<'_>)) {
        for layer in &mut self.layers {
            layer.visit_codes(visitor);
        }
    }

    fn begin_batched(&mut self, batch: usize) -> Result<()> {
        for layer in &mut self.layers {
            layer.begin_batched(batch)?;
        }
        Ok(())
    }

    fn end_batched(&mut self) {
        for layer in &mut self.layers {
            layer.end_batched();
        }
    }

    fn visit_batched(&mut self, visitor: &mut dyn FnMut(BatchedParamView<'_>)) {
        // Re-base each layer's local parameter indices onto the container's
        // global `visit_params` order, so RNG stream forking matches the
        // sequential injector exactly.
        let mut base = 0usize;
        for layer in &mut self.layers {
            layer.visit_batched(&mut |mut view| {
                view.index += base;
                visitor(view);
            });
            let mut params = 0usize;
            layer.visit_params(&mut |_| params += 1);
            base += params;
        }
    }

    fn visit_batched_codes(&mut self, visitor: &mut dyn FnMut(BatchedCodeView<'_>)) {
        let mut base = 0usize;
        for layer in &mut self.layers {
            layer.visit_batched_codes(&mut |mut view| {
                view.index += base;
                visitor(view);
            });
            let mut codes = 0usize;
            layer.visit_codes(&mut |_| codes += 1);
            base += codes;
        }
    }

    fn forward_batched(
        &mut self,
        input: &Tensor,
        shared: bool,
        batch: usize,
        mode: Mode,
    ) -> Result<(Tensor, bool)> {
        let mut x = input.clone();
        let mut sh = shared;
        for layer in &mut self.layers {
            let (y, s) = layer.forward_batched(&x, sh, batch, mode)?;
            x = y;
            sh = s;
        }
        Ok((x, sh))
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        let mut shapes = Vec::with_capacity(self.layers.len());
        let mut cur = input.clone();
        for layer in &mut self.layers {
            cur = layer.plan_compile(&cur, arenas)?;
            shapes.push(cur.clone());
        }
        self.plan = Some(SeqPlan { shapes });
        Ok(cur)
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        _output: &PlanShape,
        ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let state = self.plan.take().ok_or_else(|| {
            NnError::Config("Sequential::plan_forward called without plan_compile".into())
        })?;
        let mut prev = input;
        let mut result = Ok(());
        for (i, (layer, shape)) in self.layers.iter_mut().zip(&state.shapes).enumerate() {
            result = layer.plan_forward(prev, shape, ctx.child(i == 0), arenas);
            if result.is_err() {
                break;
            }
            prev = shape;
        }
        self.plan = Some(state);
        result
    }

    fn plan_end(&mut self) {
        self.plan = None;
        for layer in &mut self.layers {
            layer.plan_end();
        }
    }

    fn visit_plan_params(&mut self, visitor: &mut dyn FnMut(PlanParamView<'_>)) {
        // Re-base each layer's local parameter indices onto the container's
        // global `visit_params` order, exactly like `visit_batched`, so the
        // injector's RNG stream forking matches the sequential engine.
        let mut base = 0usize;
        for layer in &mut self.layers {
            layer.visit_plan_params(&mut |mut view| {
                view.index += base;
                visitor(view);
            });
            let mut params = 0usize;
            layer.visit_params(&mut |_| params += 1);
            base += params;
        }
    }

    fn visit_plan_codes(&mut self, visitor: &mut dyn FnMut(PlanCodeView<'_>)) {
        let mut base = 0usize;
        for layer in &mut self.layers {
            layer.visit_plan_codes(&mut |mut view| {
                view.index += base;
                visitor(view);
            });
            let mut codes = 0usize;
            layer.visit_codes(&mut |_| codes += 1);
            base += codes;
        }
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }
}

/// A residual block: `output = post(main(x) + shortcut(x))`.
///
/// `main` is the residual branch, `shortcut` the skip path (identity when
/// `None`, or e.g. a strided 1×1 convolution when the spatial size or channel
/// count changes), and `post` an optional layer applied after the addition
/// (typically the activation).
pub struct Residual {
    main: Sequential,
    shortcut: Option<Sequential>,
    post: Option<BoxedLayer>,
    plan: Option<ResidualPlan>,
}

/// Compiled-plan state: the two branch output edges, the sum edge, and the
/// post-layer output edge.
struct ResidualPlan {
    main_out: PlanShape,
    skip_out: PlanShape,
    sum: PlanShape,
    post_out: Option<PlanShape>,
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    pub fn new(main: Sequential) -> Self {
        Self {
            main,
            shortcut: None,
            post: None,
            plan: None,
        }
    }

    /// Creates a residual block with a projection shortcut.
    pub fn with_shortcut(main: Sequential, shortcut: Sequential) -> Self {
        Self {
            main,
            shortcut: Some(shortcut),
            post: None,
            plan: None,
        }
    }

    /// Adds a layer applied after the residual addition.
    #[must_use]
    pub fn with_post(mut self, post: BoxedLayer) -> Self {
        self.post = Some(post);
        self
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Residual")
            .field("main", &self.main)
            .field("has_shortcut", &self.shortcut.is_some())
            .field("has_post", &self.post.is_some())
            .finish()
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let main_out = self.main.forward(input, mode)?;
        let skip_out = match &mut self.shortcut {
            Some(shortcut) => shortcut.forward(input, mode)?,
            None => input.clone(),
        };
        if main_out.dims() != skip_out.dims() {
            return Err(NnError::Config(format!(
                "residual branch output {:?} does not match shortcut output {:?}",
                main_out.dims(),
                skip_out.dims()
            )));
        }
        let summed = main_out.add(&skip_out)?;
        match &mut self.post {
            Some(post) => post.forward(&summed, mode),
            None => Ok(summed),
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let grad_sum = match &mut self.post {
            Some(post) => post.backward(grad_output)?,
            None => grad_output.clone(),
        };
        let grad_main = self.main.backward(&grad_sum)?;
        let grad_skip = match &mut self.shortcut {
            Some(shortcut) => shortcut.backward(&grad_sum)?,
            None => grad_sum,
        };
        Ok(grad_main.add(&grad_skip)?)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(visitor);
        if let Some(shortcut) = &mut self.shortcut {
            shortcut.visit_params(visitor);
        }
        if let Some(post) = &mut self.post {
            post.visit_params(visitor);
        }
    }

    fn visit_codes(&mut self, visitor: &mut dyn FnMut(CodeView<'_>)) {
        self.main.visit_codes(visitor);
        if let Some(shortcut) = &mut self.shortcut {
            shortcut.visit_codes(visitor);
        }
        if let Some(post) = &mut self.post {
            post.visit_codes(visitor);
        }
    }

    fn begin_batched(&mut self, batch: usize) -> Result<()> {
        self.main.begin_batched(batch)?;
        if let Some(shortcut) = &mut self.shortcut {
            shortcut.begin_batched(batch)?;
        }
        if let Some(post) = &mut self.post {
            post.begin_batched(batch)?;
        }
        Ok(())
    }

    fn end_batched(&mut self) {
        self.main.end_batched();
        if let Some(shortcut) = &mut self.shortcut {
            shortcut.end_batched();
        }
        if let Some(post) = &mut self.post {
            post.end_batched();
        }
    }

    fn visit_batched(&mut self, visitor: &mut dyn FnMut(BatchedParamView<'_>)) {
        // Branch order and index re-basing mirror `visit_params`.
        let mut base = 0usize;
        self.main.visit_batched(&mut |mut view| {
            view.index += base;
            visitor(view);
        });
        let mut params = 0usize;
        self.main.visit_params(&mut |_| params += 1);
        base += params;
        if let Some(shortcut) = &mut self.shortcut {
            shortcut.visit_batched(&mut |mut view| {
                view.index += base;
                visitor(view);
            });
            let mut params = 0usize;
            shortcut.visit_params(&mut |_| params += 1);
            base += params;
        }
        if let Some(post) = &mut self.post {
            post.visit_batched(&mut |mut view| {
                view.index += base;
                visitor(view);
            });
        }
    }

    fn visit_batched_codes(&mut self, visitor: &mut dyn FnMut(BatchedCodeView<'_>)) {
        let mut base = 0usize;
        self.main.visit_batched_codes(&mut |mut view| {
            view.index += base;
            visitor(view);
        });
        let mut codes = 0usize;
        self.main.visit_codes(&mut |_| codes += 1);
        base += codes;
        if let Some(shortcut) = &mut self.shortcut {
            shortcut.visit_batched_codes(&mut |mut view| {
                view.index += base;
                visitor(view);
            });
            let mut codes = 0usize;
            shortcut.visit_codes(&mut |_| codes += 1);
            base += codes;
        }
        if let Some(post) = &mut self.post {
            post.visit_batched_codes(&mut |mut view| {
                view.index += base;
                visitor(view);
            });
        }
    }

    fn forward_batched(
        &mut self,
        input: &Tensor,
        shared: bool,
        batch: usize,
        mode: Mode,
    ) -> Result<(Tensor, bool)> {
        let (main_out, main_sh) = self.main.forward_batched(input, shared, batch, mode)?;
        let (skip_out, skip_sh) = match &mut self.shortcut {
            Some(shortcut) => shortcut.forward_batched(input, shared, batch, mode)?,
            None => (input.clone(), shared),
        };
        // Harmonize sharedness: a shared branch is broadcast to
        // per-realization layout before the addition.
        let (main_out, skip_out, sum_sh) = match (main_sh, skip_sh) {
            (true, false) => (tile_realizations(&main_out, batch)?, skip_out, false),
            (false, true) => (main_out, tile_realizations(&skip_out, batch)?, false),
            (sh, _) => (main_out, skip_out, sh),
        };
        if main_out.dims() != skip_out.dims() {
            return Err(NnError::Config(format!(
                "residual branch output {:?} does not match shortcut output {:?}",
                main_out.dims(),
                skip_out.dims()
            )));
        }
        let summed = main_out.add(&skip_out)?;
        match &mut self.post {
            Some(post) => post.forward_batched(&summed, sum_sh, batch, mode),
            None => Ok((summed, sum_sh)),
        }
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        let main_out = self.main.plan_compile(input, arenas)?;
        let skip_out = match &mut self.shortcut {
            Some(shortcut) => shortcut.plan_compile(input, arenas)?,
            None => input.clone(),
        };
        if main_out.dims != skip_out.dims {
            return Err(NnError::Config(format!(
                "residual branch output {:?} does not match shortcut output {:?}",
                main_out.dims, skip_out.dims
            )));
        }
        let sum = PlanShape {
            slot: arenas.f.reserve(main_out.numel()),
            dims: main_out.dims.clone(),
        };
        let post_out = match &mut self.post {
            Some(post) => Some(post.plan_compile(&sum, arenas)?),
            None => None,
        };
        let out = post_out.clone().unwrap_or_else(|| sum.clone());
        self.plan = Some(ResidualPlan {
            main_out,
            skip_out,
            sum,
            post_out,
        });
        Ok(out)
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        _output: &PlanShape,
        ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let state = self.plan.take().ok_or_else(|| {
            NnError::Config("Residual::plan_forward called without plan_compile".into())
        })?;
        let mut run = || -> Result<()> {
            self.main
                .plan_forward(input, &state.main_out, ctx.child(true), arenas)?;
            if let Some(shortcut) = &mut self.shortcut {
                shortcut.plan_forward(input, &state.skip_out, ctx.child(true), arenas)?;
            }
            // Elementwise sum in `Tensor::add` order, into the sum edge. An
            // empty main chain would alias both branch slots to the input;
            // fold that degenerate case into a doubling.
            if state.main_out.slot == state.skip_out.slot {
                let [a, s] = arenas.f.many_mut([state.main_out.slot, state.sum.slot]);
                for (d, &x) in s.iter_mut().zip(a.iter()) {
                    *d = x + x;
                }
            } else {
                let [a, b, s] =
                    arenas
                        .f
                        .many_mut([state.main_out.slot, state.skip_out.slot, state.sum.slot]);
                for ((d, &x), &y) in s.iter_mut().zip(a.iter()).zip(b.iter()) {
                    *d = x + y;
                }
            }
            if let (Some(post), Some(post_out)) = (&mut self.post, &state.post_out) {
                post.plan_forward(&state.sum, post_out, ctx.child(false), arenas)?;
            }
            Ok(())
        };
        let result = run();
        self.plan = Some(state);
        result
    }

    fn plan_end(&mut self) {
        self.plan = None;
        self.main.plan_end();
        if let Some(shortcut) = &mut self.shortcut {
            shortcut.plan_end();
        }
        if let Some(post) = &mut self.post {
            post.plan_end();
        }
    }

    fn visit_plan_params(&mut self, visitor: &mut dyn FnMut(PlanParamView<'_>)) {
        // Branch order and index re-basing mirror `visit_params`.
        let mut base = 0usize;
        self.main.visit_plan_params(&mut |mut view| {
            view.index += base;
            visitor(view);
        });
        let mut params = 0usize;
        self.main.visit_params(&mut |_| params += 1);
        base += params;
        if let Some(shortcut) = &mut self.shortcut {
            shortcut.visit_plan_params(&mut |mut view| {
                view.index += base;
                visitor(view);
            });
            let mut params = 0usize;
            shortcut.visit_params(&mut |_| params += 1);
            base += params;
        }
        if let Some(post) = &mut self.post {
            post.visit_plan_params(&mut |mut view| {
                view.index += base;
                visitor(view);
            });
        }
    }

    fn visit_plan_codes(&mut self, visitor: &mut dyn FnMut(PlanCodeView<'_>)) {
        let mut base = 0usize;
        self.main.visit_plan_codes(&mut |mut view| {
            view.index += base;
            visitor(view);
        });
        let mut codes = 0usize;
        self.main.visit_codes(&mut |_| codes += 1);
        base += codes;
        if let Some(shortcut) = &mut self.shortcut {
            shortcut.visit_plan_codes(&mut |mut view| {
                view.index += base;
                visitor(view);
            });
            let mut codes = 0usize;
            shortcut.visit_codes(&mut |_| codes += 1);
            base += codes;
        }
        if let Some(post) = &mut self.post {
            post.visit_plan_codes(&mut |mut view| {
                view.index += base;
                visitor(view);
            });
        }
    }

    fn name(&self) -> &'static str {
        "Residual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::linear::Linear;
    use invnorm_tensor::Rng;

    #[test]
    fn sequential_chains_layers() {
        let mut rng = Rng::seed_from(1);
        let mut net = Sequential::new()
            .with(Box::new(Linear::new(4, 8, &mut rng)))
            .with(Box::new(Relu::new()))
            .with(Box::new(Linear::new(8, 2, &mut rng)));
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
        let x = Tensor::randn(&[5, 4], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[5, 2]);
        let g = net.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert!(net.param_count() > 0);
        assert!(format!("{net:?}").contains("Linear"));
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::new();
        let x = Tensor::ones(&[2, 2]);
        assert!(net.forward(&x, Mode::Eval).unwrap().approx_eq(&x, 0.0));
        assert!(net.backward(&x).unwrap().approx_eq(&x, 0.0));
    }

    #[test]
    fn residual_identity_shortcut_gradients() {
        let mut rng = Rng::seed_from(2);
        // main branch: Linear(4 -> 4) so shapes match the identity skip.
        let main = Sequential::new().with(Box::new(Linear::new(4, 4, &mut rng)));
        let mut block = Residual::new(main);
        let x = Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[3, 4]);
        let g = block.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        // With grad_out = 1 the identity path contributes exactly 1 to every
        // input gradient entry, plus the Linear path contribution.
        let mut lin_only = Sequential::new().with(Box::new(Linear::new(4, 4, &mut rng)));
        let _ = lin_only.forward(&x, Mode::Train).unwrap();
        // Not comparable numerically (different init), so just check it is not
        // the pure identity gradient.
        assert!(!g.approx_eq(&Tensor::ones(x.dims()), 1e-9));
    }

    #[test]
    fn residual_numerical_gradient() {
        let mut rng = Rng::seed_from(3);
        let main = Sequential::new().with(Box::new(Linear::new(3, 3, &mut rng)));
        let mut block = Residual::new(main).with_post(Box::new(Relu::new()));
        let x = Tensor::randn(&[2, 3], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train).unwrap();
        let g = block.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 2, 5] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = block.forward(&xp, Mode::Train).unwrap().sum();
            let lm = block.forward(&xm, Mode::Train).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - g.data()[idx]).abs() < 2e-2,
                "residual grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn residual_shape_mismatch_is_reported() {
        let mut rng = Rng::seed_from(4);
        let main = Sequential::new().with(Box::new(Linear::new(4, 6, &mut rng)));
        let mut block = Residual::new(main);
        let x = Tensor::randn(&[2, 4], 0.0, 1.0, &mut rng);
        assert!(matches!(
            block.forward(&x, Mode::Train),
            Err(NnError::Config(_))
        ));
    }

    #[test]
    fn residual_with_projection_shortcut() {
        let mut rng = Rng::seed_from(5);
        let main = Sequential::new().with(Box::new(Linear::new(4, 6, &mut rng)));
        let shortcut = Sequential::new().with(Box::new(Linear::new(4, 6, &mut rng)));
        let mut block = Residual::with_shortcut(main, shortcut);
        let x = Tensor::randn(&[2, 4], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 6]);
        let g = block.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        // Both branches hold parameters.
        assert_eq!(block.param_count(), 2 * (4 * 6 + 6));
    }
}
