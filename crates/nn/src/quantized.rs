//! Integer-domain inference layers: [`QuantizedLinear`] and
//! [`QuantizedConv2d`].
//!
//! These are the eval-path counterparts of [`crate::linear::Linear`] and
//! [`crate::conv::Conv2d`] for crossbar-mapped deployment: weights live as
//! packed i8 quantization codes with one symmetric scale per output channel,
//! activations are dynamically quantized to i8 at the layer boundary, and
//! the matrix product runs through the blocked i8×i8→i32 GEMM
//! ([`invnorm_tensor::qgemm`]) — the forward pass stays in the integer
//! domain from the input codes to the i32 accumulators and only
//! requantizes/dequantizes once, at the layer output:
//!
//! ```text
//! x (f32) ──quantize──▶ i8 codes ──im2col──▶ i8 patches ──qgemm──▶ i32
//!                                                                   │
//! y (f32) ◀── +bias ◀── × (s_x · s_w[channel]) ◀──────dequantize────┘
//! ```
//!
//! The i8 weight codes are exposed through [`crate::layer::Layer::visit_codes`],
//! which is where the code-domain fault injection of `invnorm-imc` perturbs
//! them — bit flips land on exactly the integers the hardware programs,
//! instead of being emulated by a quantize → flip → dequantize round trip.
//!
//! Both layers are **inference-only**: `backward` returns an error.
//! Quantization-aware training is served by `invnorm-quant`'s fake
//! quantization instead.

use crate::error::NnError;
use crate::layer::{BatchedCodeView, BatchedCodes, CodeView, Layer, Mode};
use crate::plan::{PlanArenas, PlanCodeView, PlanCtx, PlanShape, PlannedCodes};
use crate::Result;
use invnorm_tensor::conv::{conv_out_shape, im2col_codes_into, im2col_slice_into, Conv2dSpec};
use invnorm_tensor::qgemm::{qgemm_prepacked, qgemm_prepacked_ab, qgemm_prepacked_b, QPackedA};
use invnorm_tensor::scratch::uninit_slice_of;
use invnorm_tensor::telemetry;
use invnorm_tensor::{qgemm, ArenaSlot, Scratch, Tensor};

/// Largest i8 code magnitude; also the fixed bit-width ceiling of the packed
/// storage.
const QMAX8: i32 = 127;

/// Largest positive code for a bit width.
fn qmax_for(bits: u8) -> i32 {
    (1i32 << (bits - 1)) - 1
}

/// Per-output-channel symmetric quantization of a `[channels, cols]`-shaped
/// weight slice to `bits`-bit codes stored as packed i8.
fn quantize_rows(data: &[f32], channels: usize, bits: u8) -> (Vec<i8>, Vec<f32>) {
    let qmax = qmax_for(bits) as f32;
    let cols = data.len() / channels;
    let mut codes = vec![0i8; data.len()];
    let mut scales = vec![1.0f32; channels];
    for ch in 0..channels {
        let row = &data[ch * cols..(ch + 1) * cols];
        let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max_abs > 0.0 { max_abs / qmax } else { 1.0 };
        scales[ch] = scale;
        for (dst, &x) in codes[ch * cols..(ch + 1) * cols].iter_mut().zip(row) {
            *dst = (x / scale).round().clamp(-qmax, qmax) as i8;
        }
    }
    (codes, scales)
}

/// Symmetric i8 activation scale for a maximum absolute value.
fn scale_for_max_abs(max_abs: f32) -> f32 {
    if max_abs > 0.0 {
        max_abs / QMAX8 as f32
    } else {
        1.0
    }
}

/// Maximum absolute value of an activation slice (the max-abs pass a
/// calibrated static scale skips).
fn max_abs(data: &[f32]) -> f32 {
    data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// Quantizes an activation slice to i8 codes with a fixed symmetric scale.
fn quantize_with_scale(data: &[f32], scale: f32, out: &mut [i8]) {
    for (dst, &x) in out.iter_mut().zip(data) {
        *dst = (x / scale).round().clamp(-(QMAX8 as f32), QMAX8 as f32) as i8;
    }
}

/// Dynamic symmetric per-tensor quantization of an activation slice into a
/// reusable i8 buffer; returns the scale. With `calibrated` set, the max-abs
/// pass is skipped and the static scale is used instead.
fn quantize_activations(data: &[f32], calibrated: Option<f32>, out: &mut [i8]) -> f32 {
    let scale = calibrated.unwrap_or_else(|| scale_for_max_abs(max_abs(data)));
    quantize_with_scale(data, scale, out);
    scale
}

fn check_bits(bits: u8) -> Result<()> {
    if !(2..=8).contains(&bits) {
        return Err(NnError::Config(format!(
            "quantized layers support 2-8 bit weights (packed i8 storage), got {bits}"
        )));
    }
    Ok(())
}

/// A fully connected layer computing `y = x Wᵀ + b` entirely in the integer
/// domain: `W` is stored as `bits`-bit codes (packed i8, one scale per
/// output channel), `x` is dynamically quantized to i8, and the product is
/// an exact i8×i8→i32 GEMM dequantized once at the output.
#[derive(Debug)]
pub struct QuantizedLinear {
    in_features: usize,
    out_features: usize,
    codes: Vec<i8>,
    scales: Vec<f32>,
    bias: Option<Tensor>,
    bits: u8,
    act_scale: Option<f32>,
    // Reusable buffers: input codes, i32 accumulators, GEMM packing.
    qin: Vec<i8>,
    acc: Vec<i32>,
    scratch: Scratch,
    batched: Option<QuantizedBatched>,
    plan: Option<QuantizedPlan>,
}

/// Batched-eval state shared by both quantized layers: stacked code
/// realizations plus the reusable i8 GEMM packing buffers.
#[derive(Debug, Default)]
struct QuantizedBatched {
    codes: BatchedCodes,
    packed: QPackedA,
    packed_b: Vec<i8>,
}

/// Compiled-plan state shared by both quantized layers: arena slots for the
/// activation codes / patch matrix / i32 accumulators, the cached packed
/// code operand with realization bookkeeping (one panel per stacked
/// realization for batched plans), and the cached packed activation panel
/// (plus its quantization scale) for frozen inputs.
#[derive(Debug)]
struct QuantizedPlan {
    qin: ArenaSlot,
    /// Patch matrix of unfolded codes (conv only; empty slot for linear).
    cols: ArenaSlot,
    acc: ArenaSlot,
    codes: PlannedCodes,
    packed_a: QPackedA,
    a_gen: u64,
    a_scale: f32,
    plan_scratch: Scratch,
    /// Stacked realizations per forward (1 for ordinary plans).
    batch: usize,
    /// Dims of one realization's tile of the stacked input edge (conv only).
    tile_dims: Vec<usize>,
    /// Per-realization dynamic activation scales of the current forward
    /// (conv only; capacity reserved at compile so steady state allocates
    /// nothing).
    sx_buf: Vec<f32>,
}

impl QuantizedLinear {
    /// Quantizes a float [`crate::linear::Linear`] layer's weights to
    /// `bits`-bit codes (per-output-channel scales). The bias stays f32 — it
    /// is added after dequantization, matching crossbar deployments where
    /// biases are applied digitally.
    ///
    /// # Errors
    ///
    /// Returns an error when `bits` is outside `[2, 8]`.
    pub fn from_linear(linear: &crate::linear::Linear, bits: u8) -> Result<Self> {
        check_bits(bits)?;
        let (out_features, in_features) = (linear.out_features(), linear.in_features());
        let (codes, scales) = quantize_rows(linear.weight().value.data(), out_features, bits);
        Ok(Self {
            in_features,
            out_features,
            codes,
            scales,
            bias: linear.bias().map(|b| b.value.clone()),
            bits,
            act_scale: None,
            qin: Vec::new(),
            acc: Vec::new(),
            scratch: Scratch::new(),
            batched: None,
            plan: None,
        })
    }

    /// Records a **static activation scale** from a calibration batch: the
    /// batch's maximum absolute value becomes the fixed symmetric scale, and
    /// every subsequent forward pass skips the per-batch max-abs pass.
    /// Returns the recorded scale.
    ///
    /// # Errors
    ///
    /// Returns an error when the sample is not `[N, in_features]`.
    pub fn calibrate(&mut self, sample: &Tensor) -> Result<f32> {
        if sample.rank() != 2 || sample.dims()[1] != self.in_features {
            return Err(NnError::Config(format!(
                "QuantizedLinear calibration expects [N, {}], got {:?}",
                self.in_features,
                sample.dims()
            )));
        }
        let scale = scale_for_max_abs(max_abs(sample.data()));
        self.act_scale = Some(scale);
        Ok(scale)
    }

    /// The calibrated static activation scale, if any.
    pub fn activation_scale(&self) -> Option<f32> {
        self.act_scale
    }

    /// Reverts to dynamic per-batch activation quantization.
    pub fn clear_calibration(&mut self) {
        self.act_scale = None;
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The per-output-channel weight scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The packed i8 weight codes (`[out, in]`, row-major).
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// The effective (dequantized) weight matrix, for inspection in tests.
    pub fn dequantized_weight(&self) -> Tensor {
        let data: Vec<f32> = self
            .codes
            .iter()
            .enumerate()
            .map(|(i, &c)| f32::from(c) * self.scales[i / self.in_features])
            .collect();
        Tensor::from_vec(data, &[self.out_features, self.in_features])
            .expect("codes match [out, in]")
    }
}

impl Layer for QuantizedLinear {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::Config(format!(
                "QuantizedLinear expects input [N, {}], got {:?}",
                self.in_features,
                input.dims()
            )));
        }
        let n = input.dims()[0];
        let qin = uninit_slice_of(&mut self.qin, n * self.in_features);
        let sx = quantize_activations(input.data(), self.act_scale, qin);
        let acc = uninit_slice_of(&mut self.acc, n * self.out_features);
        qgemm::qgemm_with_scratch(
            false,
            true,
            n,
            self.out_features,
            self.in_features,
            qin,
            &self.codes,
            false,
            acc,
            &mut self.scratch,
        );
        let mut out = vec![0.0f32; n * self.out_features];
        let bias = self.bias.as_ref().map(Tensor::data);
        for i in 0..n {
            for j in 0..self.out_features {
                let mut v = acc[i * self.out_features + j] as f32 * sx * self.scales[j];
                if let Some(b) = bias {
                    v += b[j];
                }
                out[i * self.out_features + j] = v;
            }
        }
        Ok(Tensor::from_vec(out, &[n, self.out_features])?)
    }

    fn backward(&mut self, _grad_output: &Tensor) -> Result<Tensor> {
        Err(NnError::unsupported(
            "QuantizedLinear",
            "backward (inference-only; train the float model and re-quantize)",
        ))
    }

    fn visit_codes(&mut self, visitor: &mut dyn FnMut(CodeView<'_>)) {
        visitor(CodeView {
            codes: &mut self.codes,
            bits: self.bits,
            rows: self.out_features,
        });
    }

    fn begin_batched(&mut self, batch: usize) -> Result<()> {
        let state = self.batched.get_or_insert_with(QuantizedBatched::default);
        state.codes.reset(&self.codes, batch);
        Ok(())
    }

    fn end_batched(&mut self) {
        self.batched = None;
    }

    fn visit_batched_codes(&mut self, visitor: &mut dyn FnMut(BatchedCodeView<'_>)) {
        if let Some(state) = &mut self.batched {
            visitor(BatchedCodeView {
                index: 0,
                clean: &self.codes,
                bits: self.bits,
                rows: self.out_features,
                stacked: &mut state.codes,
            });
        }
    }

    fn forward_batched(
        &mut self,
        input: &Tensor,
        shared: bool,
        batch: usize,
        _mode: Mode,
    ) -> Result<(Tensor, bool)> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::Config(format!(
                "QuantizedLinear expects input [N, {}], got {:?}",
                self.in_features,
                input.dims()
            )));
        }
        let state = self.batched.as_mut().ok_or_else(|| {
            NnError::Config("QuantizedLinear::forward_batched called without begin_batched".into())
        })?;
        if state.codes.batch() != batch {
            return Err(NnError::Config(format!(
                "QuantizedLinear has {} staged code realizations, expected {batch}",
                state.codes.batch()
            )));
        }
        let rows = input.dims()[0];
        let n = if shared {
            rows
        } else {
            if !rows.is_multiple_of(batch) {
                return Err(NnError::Config(format!(
                    "per-realization input rows {rows} not divisible by batch {batch}"
                )));
            }
            rows / batch
        };
        let (fin, fout) = (self.in_features, self.out_features);
        let qin = uninit_slice_of(&mut self.qin, n * fin * if shared { 1 } else { batch });
        // Activation quantization must match the sequential path exactly:
        // per-tensor scale over each realization's own input slice (or the
        // calibrated static scale when one is recorded).
        let shared_sx = if shared {
            Some(quantize_activations(input.data(), self.act_scale, qin))
        } else {
            None
        };
        let mut out = vec![0.0f32; batch * n * fout];
        let bias = self.bias.as_ref().map(Tensor::data);
        let QuantizedBatched {
            codes,
            packed,
            packed_b,
        } = state;
        if let Some(sx) = shared_sx {
            // Batch-fused wide product: the stacked codes `[B·out, in]` are
            // contiguous, so one integer GEMM `[N, in] @ [B·out, in]ᵀ →
            // [N, B·out]` evaluates every realization bit-exactly while
            // packing/streaming the shared activation panel once.
            let acc = uninit_slice_of(&mut self.acc, n * batch * fout);
            qgemm::qgemm(
                false,
                true,
                n,
                batch * fout,
                fin,
                qin,
                codes.data(),
                false,
                acc,
            );
            let ld = batch * fout;
            for b in 0..batch {
                let out_b = &mut out[b * n * fout..][..n * fout];
                for i in 0..n {
                    for j in 0..fout {
                        let mut v = acc[i * ld + b * fout + j] as f32 * sx * self.scales[j];
                        if let Some(bd) = bias {
                            v += bd[j];
                        }
                        out_b[i * fout + j] = v;
                    }
                }
            }
        } else {
            let acc = uninit_slice_of(&mut self.acc, n * fout);
            for b in 0..batch {
                let xs = &input.data()[b * n * fin..][..n * fin];
                let sx =
                    quantize_activations(xs, self.act_scale, &mut qin[b * n * fin..][..n * fin]);
                packed.pack(false, &qin[b * n * fin..][..n * fin], n, fin);
                qgemm_prepacked(
                    packed,
                    true,
                    fout,
                    codes.realization(b),
                    false,
                    acc,
                    packed_b,
                );
                let out_b = &mut out[b * n * fout..][..n * fout];
                for i in 0..n {
                    for j in 0..fout {
                        let mut v = acc[i * fout + j] as f32 * sx * self.scales[j];
                        if let Some(bd) = bias {
                            v += bd[j];
                        }
                        out_b[i * fout + j] = v;
                    }
                }
            }
        }
        Ok((Tensor::from_vec(out, &[batch * n, fout])?, false))
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        let batch = arenas.batch();
        if input.dims.len() != 2
            || input.dims[1] != self.in_features
            || !input.dims[0].is_multiple_of(batch)
        {
            return Err(NnError::Config(format!(
                "QuantizedLinear expects input [N, {}] (N divisible by the plan batch {batch}), got {:?}",
                self.in_features, input.dims
            )));
        }
        let n = input.dims[0];
        let n_per = n / batch;
        let (fin, fout) = (self.in_features, self.out_features);
        self.plan = Some(QuantizedPlan {
            // One realization's activation codes, reused across the stack;
            // the accumulators are sized for the fused wide `[N, B·out]`
            // product of a frozen layer (the per-realization path reuses
            // the `[N, out]` prefix).
            qin: arenas.q.reserve(n_per * fin),
            cols: arenas.q.reserve(0),
            acc: arenas.acc.reserve(n_per * fout * batch),
            codes: PlannedCodes::pack_batched(&self.codes, fin, fout, batch),
            packed_a: QPackedA::new(),
            a_gen: 0,
            a_scale: 1.0,
            plan_scratch: Scratch::new(),
            batch,
            tile_dims: Vec::new(),
            sx_buf: Vec::new(),
        });
        Ok(PlanShape {
            slot: arenas.f.reserve(n * fout),
            dims: vec![n, fout],
        })
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let state = self.plan.as_mut().ok_or_else(|| {
            NnError::Config("QuantizedLinear::plan_forward called without plan_compile".into())
        })?;
        let (fin, fout) = (self.in_features, self.out_features);
        let batch = state.batch;
        let n = input.dims[0] / batch;
        let [x, out] = arenas.f.many_mut([input.slot, output.slot]);
        let qin = arenas.q.slot_mut(state.qin);
        let acc = arenas.acc.slot_mut(state.acc);
        let bias = self.bias.as_ref().map(Tensor::data);
        if ctx.frozen && batch > 1 {
            // Fused wide product: one cached panel of the first tile's
            // quantized codes meets the wide stacked code operand in a
            // single `[N, B·out]` integer GEMM; realization b dequantizes
            // its own column block.
            let wide_w = state.codes.refresh_wide();
            if state.a_gen != ctx.input_gen {
                telemetry::count(telemetry::Counter::FrozenInputMisses, 1);
                state.a_scale = quantize_activations(&x[..n * fin], self.act_scale, qin);
                state.packed_a.pack(false, qin, n, fin);
                state.a_gen = ctx.input_gen;
            } else {
                telemetry::count(telemetry::Counter::FrozenInputHits, 1);
            }
            telemetry::count(telemetry::Counter::WideGemms, 1);
            qgemm_prepacked_ab(&state.packed_a, wide_w, false, acc);
            let sx = state.a_scale;
            let ld = batch * fout;
            for b in 0..batch {
                let out_b = &mut out[b * n * fout..][..n * fout];
                for i in 0..n {
                    for j in 0..fout {
                        let mut v = acc[i * ld + b * fout + j] as f32 * sx * self.scales[j];
                        if let Some(bd) = bias {
                            v += bd[j];
                        }
                        out_b[i * fout + j] = v;
                    }
                }
            }
            return Ok(());
        }
        // Bring the cached packed operands up to date with this realization
        // batch (dirty-row re-packing).
        state.codes.refresh_all();
        for b in 0..batch {
            let out_b = &mut out[b * n * fout..][..n * fout];
            let acc = &mut acc[..n * fout];
            let sx = if ctx.frozen {
                // Single-realization frozen plan: quantize + pack the codes
                // once per `load_input` and reuse the panel.
                if state.a_gen != ctx.input_gen {
                    telemetry::count(telemetry::Counter::FrozenInputMisses, 1);
                    state.a_scale = quantize_activations(&x[..n * fin], self.act_scale, qin);
                    state.packed_a.pack(false, qin, n, fin);
                    state.a_gen = ctx.input_gen;
                } else {
                    telemetry::count(telemetry::Counter::FrozenInputHits, 1);
                }
                qgemm_prepacked_ab(&state.packed_a, state.codes.panel(b), false, acc);
                state.a_scale
            } else {
                let sx = quantize_activations(&x[b * n * fin..][..n * fin], self.act_scale, qin);
                qgemm_prepacked_b(
                    false,
                    n,
                    qin,
                    state.codes.panel(b),
                    false,
                    acc,
                    &mut state.plan_scratch,
                );
                sx
            };
            for i in 0..n {
                for j in 0..fout {
                    let mut v = acc[i * fout + j] as f32 * sx * self.scales[j];
                    if let Some(bd) = bias {
                        v += bd[j];
                    }
                    out_b[i * fout + j] = v;
                }
            }
        }
        Ok(())
    }

    fn plan_end(&mut self) {
        self.plan = None;
    }

    fn visit_plan_codes(&mut self, visitor: &mut dyn FnMut(PlanCodeView<'_>)) {
        if let Some(state) = &mut self.plan {
            visitor(state.codes.view(0, &self.codes, self.bits));
        }
    }

    fn name(&self) -> &'static str {
        "QuantizedLinear"
    }
}

/// A 2-D convolution over `[N, C, H, W]` activations computed in the integer
/// domain: im2col unfolds the **i8 input codes** directly (zero padding is
/// exact — code 0), the patch matrix feeds the i8 GEMM against the packed
/// kernel codes, and the i32 result is dequantized once during the NCHW
/// re-layout.
#[derive(Debug)]
pub struct QuantizedConv2d {
    in_channels: usize,
    out_channels: usize,
    spec: Conv2dSpec,
    codes: Vec<i8>,
    scales: Vec<f32>,
    bias: Option<Tensor>,
    bits: u8,
    act_scale: Option<f32>,
    qin: Vec<i8>,
    cols: Vec<i8>,
    acc: Vec<i32>,
    scratch: Scratch,
    batched: Option<QuantizedBatched>,
    plan: Option<QuantizedPlan>,
}

impl QuantizedConv2d {
    /// Quantizes a float [`crate::conv::Conv2d`] layer's kernel to
    /// `bits`-bit codes (per-output-channel scales).
    ///
    /// # Errors
    ///
    /// Returns an error when `bits` is outside `[2, 8]`.
    pub fn from_conv2d(conv: &crate::conv::Conv2d, bits: u8) -> Result<Self> {
        check_bits(bits)?;
        let (codes, scales) = quantize_rows(conv.weight().value.data(), conv.out_channels(), bits);
        Ok(Self {
            in_channels: conv.in_channels(),
            out_channels: conv.out_channels(),
            spec: *conv.spec(),
            codes,
            scales,
            bias: conv.bias().map(|b| b.value.clone()),
            bits,
            act_scale: None,
            qin: Vec::new(),
            cols: Vec::new(),
            acc: Vec::new(),
            scratch: Scratch::new(),
            batched: None,
            plan: None,
        })
    }

    /// Records a **static activation scale** from a calibration batch (see
    /// [`QuantizedLinear::calibrate`]); subsequent forwards skip the
    /// per-batch max-abs pass. Returns the recorded scale.
    ///
    /// # Errors
    ///
    /// Returns an error when the sample is not `[N, in_channels, H, W]`.
    pub fn calibrate(&mut self, sample: &Tensor) -> Result<f32> {
        if sample.rank() != 4 || sample.dims()[1] != self.in_channels {
            return Err(NnError::Config(format!(
                "QuantizedConv2d calibration expects [N, {}, H, W], got {:?}",
                self.in_channels,
                sample.dims()
            )));
        }
        let scale = scale_for_max_abs(max_abs(sample.data()));
        self.act_scale = Some(scale);
        Ok(scale)
    }

    /// The calibrated static activation scale, if any.
    pub fn activation_scale(&self) -> Option<f32> {
        self.act_scale
    }

    /// Reverts to dynamic per-batch activation quantization.
    pub fn clear_calibration(&mut self) {
        self.act_scale = None;
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// The weight bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The packed i8 kernel codes (`[oc, ic·kh·kw]`, row-major).
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }
}

impl Layer for QuantizedConv2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.rank() != 4 || input.dims()[1] != self.in_channels {
            return Err(NnError::Config(format!(
                "QuantizedConv2d expects [N, {}, H, W], got {:?}",
                self.in_channels,
                input.dims()
            )));
        }
        let d = input.dims().to_vec();
        let shape = conv_out_shape(&d, &self.spec)?;
        let (n, oh, ow, patch, rows) = (shape.n, shape.oh, shape.ow, shape.patch, shape.rows);
        let oc = self.out_channels;

        // Quantize the input once, then unfold the codes.
        let qin = uninit_slice_of(&mut self.qin, input.numel());
        let sx = quantize_activations(input.data(), self.act_scale, qin);
        let cols = uninit_slice_of(&mut self.cols, rows * patch);
        im2col_codes_into(qin, &d, &self.spec, cols)?;

        // [rows, patch] @ [oc, patch]ᵀ → [rows, oc], exact i32.
        let acc = uninit_slice_of(&mut self.acc, rows * oc);
        qgemm::qgemm_with_scratch(
            false,
            true,
            rows,
            oc,
            patch,
            cols,
            &self.codes,
            false,
            acc,
            &mut self.scratch,
        );

        // Dequantize during the NCHW re-layout; bias is digital f32.
        let mut out = vec![0.0f32; n * oc * oh * ow];
        let bias = self.bias.as_ref().map(Tensor::data);
        for ni in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (ni * oh + oy) * ow + ox;
                    for co in 0..oc {
                        let mut v = acc[row * oc + co] as f32 * sx * self.scales[co];
                        if let Some(b) = bias {
                            v += b[co];
                        }
                        out[((ni * oc + co) * oh + oy) * ow + ox] = v;
                    }
                }
            }
        }
        Ok(Tensor::from_vec(out, &[n, oc, oh, ow])?)
    }

    fn backward(&mut self, _grad_output: &Tensor) -> Result<Tensor> {
        Err(NnError::unsupported(
            "QuantizedConv2d",
            "backward (inference-only; train the float model and re-quantize)",
        ))
    }

    fn visit_codes(&mut self, visitor: &mut dyn FnMut(CodeView<'_>)) {
        visitor(CodeView {
            codes: &mut self.codes,
            bits: self.bits,
            rows: self.out_channels,
        });
    }

    fn begin_batched(&mut self, batch: usize) -> Result<()> {
        let state = self.batched.get_or_insert_with(QuantizedBatched::default);
        state.codes.reset(&self.codes, batch);
        Ok(())
    }

    fn end_batched(&mut self) {
        self.batched = None;
    }

    fn visit_batched_codes(&mut self, visitor: &mut dyn FnMut(BatchedCodeView<'_>)) {
        if let Some(state) = &mut self.batched {
            visitor(BatchedCodeView {
                index: 0,
                clean: &self.codes,
                bits: self.bits,
                rows: self.out_channels,
                stacked: &mut state.codes,
            });
        }
    }

    fn forward_batched(
        &mut self,
        input: &Tensor,
        shared: bool,
        batch: usize,
        _mode: Mode,
    ) -> Result<(Tensor, bool)> {
        if input.rank() != 4 || input.dims()[1] != self.in_channels {
            return Err(NnError::Config(format!(
                "QuantizedConv2d expects [N, {}, H, W], got {:?}",
                self.in_channels,
                input.dims()
            )));
        }
        let state = self.batched.as_mut().ok_or_else(|| {
            NnError::Config("QuantizedConv2d::forward_batched called without begin_batched".into())
        })?;
        if state.codes.batch() != batch {
            return Err(NnError::Config(format!(
                "QuantizedConv2d has {} staged code realizations, expected {batch}",
                state.codes.batch()
            )));
        }
        let d = input.dims().to_vec();
        let (n_total, h, w) = (d[0], d[2], d[3]);
        let n_per = if shared {
            n_total
        } else {
            if n_total % batch != 0 {
                return Err(NnError::Config(format!(
                    "per-realization input rows {n_total} not divisible by batch {batch}"
                )));
            }
            n_total / batch
        };
        let (oh, ow) = self.spec.output_hw(h, w)?;
        let c = self.in_channels;
        let oc = self.out_channels;
        let patch = c * self.spec.kh * self.spec.kw;
        let rows_per = n_per * oh * ow;
        let per_in = n_per * c * h * w;
        let per_out = n_per * oc * oh * ow;

        // Quantize each realization's input over its own slice (the
        // sequential per-instance scale semantics), then unfold the whole
        // stacked batch of codes in a single im2col call.
        let qin = uninit_slice_of(&mut self.qin, input.numel());
        let mut shared_sx = 1.0f32;
        let mut per_sx: Vec<f32> = Vec::new();
        if shared {
            shared_sx = quantize_activations(input.data(), self.act_scale, qin);
        } else {
            per_sx.reserve(batch);
            for b in 0..batch {
                let xs = &input.data()[b * per_in..][..per_in];
                per_sx.push(quantize_activations(
                    xs,
                    self.act_scale,
                    &mut qin[b * per_in..][..per_in],
                ));
            }
        }
        let cols = uninit_slice_of(&mut self.cols, n_total * oh * ow * patch);
        im2col_codes_into(qin, &d, &self.spec, cols)?;

        let mut out = vec![0.0f32; batch * per_out];
        let bias = self.bias.as_ref().map(Tensor::data);
        let QuantizedBatched {
            codes,
            packed,
            packed_b,
        } = state;
        if shared {
            // Batch-fused wide product: the stacked kernel codes
            // `[B·OC, patch]` are contiguous, so one integer GEMM
            // `[rows, patch] @ [B·OC, patch]ᵀ → [rows, B·OC]` evaluates every
            // realization bit-exactly while packing/streaming the shared
            // patch panel once.
            let acc = uninit_slice_of(&mut self.acc, rows_per * batch * oc);
            qgemm::qgemm(
                false,
                true,
                rows_per,
                batch * oc,
                patch,
                cols,
                codes.data(),
                false,
                acc,
            );
            let ld = batch * oc;
            for b in 0..batch {
                let out_b = &mut out[b * per_out..][..per_out];
                for ni in 0..n_per {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let row = (ni * oh + oy) * ow + ox;
                            for co in 0..oc {
                                let mut v = acc[row * ld + b * oc + co] as f32
                                    * shared_sx
                                    * self.scales[co];
                                if let Some(bd) = bias {
                                    v += bd[co];
                                }
                                out_b[((ni * oc + co) * oh + oy) * ow + ox] = v;
                            }
                        }
                    }
                }
            }
        } else {
            let acc = uninit_slice_of(&mut self.acc, rows_per * oc);
            for b in 0..batch {
                packed.pack(
                    false,
                    &cols[b * rows_per * patch..][..rows_per * patch],
                    rows_per,
                    patch,
                );
                let sx = per_sx[b];
                // [rows, patch] @ [oc, patch]ᵀ → [rows, oc], exact i32.
                qgemm_prepacked(packed, true, oc, codes.realization(b), false, acc, packed_b);
                // Dequantize during the NCHW re-layout; bias is digital f32.
                let out_b = &mut out[b * per_out..][..per_out];
                for ni in 0..n_per {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let row = (ni * oh + oy) * ow + ox;
                            for co in 0..oc {
                                let mut v = acc[row * oc + co] as f32 * sx * self.scales[co];
                                if let Some(bd) = bias {
                                    v += bd[co];
                                }
                                out_b[((ni * oc + co) * oh + oy) * ow + ox] = v;
                            }
                        }
                    }
                }
            }
        }
        Ok((Tensor::from_vec(out, &[batch * n_per, oc, oh, ow])?, false))
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        let batch = arenas.batch();
        if input.dims.len() != 4
            || input.dims[1] != self.in_channels
            || !input.dims[0].is_multiple_of(batch)
        {
            return Err(NnError::Config(format!(
                "QuantizedConv2d expects [N, {}, H, W] (N divisible by the plan batch {batch}), got {:?}",
                self.in_channels, input.dims
            )));
        }
        let shape = conv_out_shape(&input.dims, &self.spec)?;
        let oc = self.out_channels;
        let mut tile_dims = input.dims.clone();
        tile_dims[0] /= batch;
        self.plan = Some(QuantizedPlan {
            // The whole stacked batch of codes is quantized/unfolded (each
            // realization's tile with its own dynamic scale); the i32
            // accumulators are sized for the fused wide `[rows/B, B·oc]`
            // product of a frozen layer (the per-realization path reuses
            // the `[rows/B, oc]` prefix).
            qin: arenas.q.reserve(input.numel()),
            cols: arenas.q.reserve(shape.rows * shape.patch),
            acc: arenas.acc.reserve(shape.rows / batch * oc * batch),
            codes: PlannedCodes::pack_batched(&self.codes, shape.patch, oc, batch),
            packed_a: QPackedA::new(),
            a_gen: 0,
            a_scale: 1.0,
            plan_scratch: Scratch::new(),
            batch,
            tile_dims,
            sx_buf: Vec::with_capacity(batch),
        });
        Ok(PlanShape {
            slot: arenas.f.reserve(shape.output_dims(oc).iter().product()),
            dims: shape.output_dims(oc).to_vec(),
        })
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let state = self.plan.as_mut().ok_or_else(|| {
            NnError::Config("QuantizedConv2d::plan_forward called without plan_compile".into())
        })?;
        let shape = conv_out_shape(&input.dims, &self.spec)?;
        let oc = self.out_channels;
        let batch = state.batch;
        let n_per = shape.n / batch;
        let rows_per = shape.rows / batch;
        let per_in = input.numel() / batch;
        let per_out = n_per * oc * shape.oh * shape.ow;
        let [x, out] = arenas.f.many_mut([input.slot, output.slot]);
        let [qin, cols] = arenas.q.many_mut([state.qin, state.cols]);
        let acc = arenas.acc.slot_mut(state.acc);
        if ctx.frozen && batch > 1 {
            // Fused wide product: one cached patch panel of the first
            // tile's codes meets the wide stacked kernel operand in a
            // single `[rows, B·oc]` integer GEMM; realization b
            // dequantizes its strided column block during the NCHW
            // re-layout.
            let wide_w = state.codes.refresh_wide();
            if state.a_gen != ctx.input_gen {
                telemetry::count(telemetry::Counter::FrozenInputMisses, 1);
                state.a_scale =
                    quantize_activations(&x[..per_in], self.act_scale, &mut qin[..per_in]);
                im2col_slice_into(
                    &qin[..per_in],
                    &state.tile_dims,
                    &self.spec,
                    &mut cols[..rows_per * shape.patch],
                )?;
                state.packed_a.pack(
                    false,
                    &cols[..rows_per * shape.patch],
                    rows_per,
                    shape.patch,
                );
                state.a_gen = ctx.input_gen;
            } else {
                telemetry::count(telemetry::Counter::FrozenInputHits, 1);
            }
            telemetry::count(telemetry::Counter::WideGemms, 1);
            qgemm_prepacked_ab(&state.packed_a, wide_w, false, acc);
            let sx = state.a_scale;
            let ld = batch * oc;
            let bias = self.bias.as_ref().map(Tensor::data);
            for b in 0..batch {
                let out_b = &mut out[b * per_out..][..per_out];
                for ni in 0..n_per {
                    for oy in 0..shape.oh {
                        for ox in 0..shape.ow {
                            let row = (ni * shape.oh + oy) * shape.ow + ox;
                            for co in 0..oc {
                                let mut v =
                                    acc[row * ld + b * oc + co] as f32 * sx * self.scales[co];
                                if let Some(bd) = bias {
                                    v += bd[co];
                                }
                                out_b[((ni * oc + co) * shape.oh + oy) * shape.ow + ox] = v;
                            }
                        }
                    }
                }
            }
            return Ok(());
        }
        // Bring the cached packed operands up to date with this realization
        // batch (dirty-row re-packing).
        state.codes.refresh_all();
        if ctx.frozen {
            // Single-realization frozen plan: quantize + unfold + pack the
            // patch panel once per `load_input`.
            if state.a_gen != ctx.input_gen {
                telemetry::count(telemetry::Counter::FrozenInputMisses, 1);
                state.a_scale =
                    quantize_activations(&x[..per_in], self.act_scale, &mut qin[..per_in]);
                im2col_slice_into(
                    &qin[..per_in],
                    &state.tile_dims,
                    &self.spec,
                    &mut cols[..rows_per * shape.patch],
                )?;
                state.packed_a.pack(
                    false,
                    &cols[..rows_per * shape.patch],
                    rows_per,
                    shape.patch,
                );
                state.a_gen = ctx.input_gen;
            } else {
                telemetry::count(telemetry::Counter::FrozenInputHits, 1);
            }
        } else {
            // Per-realization inputs: quantize each realization's tile over
            // its own slice (the sequential per-instance scale semantics),
            // then unfold the whole stacked batch of codes in one call.
            state.sx_buf.clear();
            for b in 0..batch {
                state.sx_buf.push(quantize_activations(
                    &x[b * per_in..][..per_in],
                    self.act_scale,
                    &mut qin[b * per_in..][..per_in],
                ));
            }
            im2col_slice_into(qin, &input.dims, &self.spec, cols)?;
        }
        let bias = self.bias.as_ref().map(Tensor::data);
        for b in 0..batch {
            let acc = &mut acc[..rows_per * oc];
            let sx = if ctx.frozen {
                qgemm_prepacked_ab(&state.packed_a, state.codes.panel(b), false, acc);
                state.a_scale
            } else {
                qgemm_prepacked_b(
                    false,
                    rows_per,
                    &cols[b * rows_per * shape.patch..][..rows_per * shape.patch],
                    state.codes.panel(b),
                    false,
                    acc,
                    &mut state.plan_scratch,
                );
                state.sx_buf[b]
            };
            // Dequantize during the NCHW re-layout; bias is digital f32 —
            // the exact loop of the direct forward, per realization.
            let out_b = &mut out[b * per_out..][..per_out];
            for ni in 0..n_per {
                for oy in 0..shape.oh {
                    for ox in 0..shape.ow {
                        let row = (ni * shape.oh + oy) * shape.ow + ox;
                        for co in 0..oc {
                            let mut v = acc[row * oc + co] as f32 * sx * self.scales[co];
                            if let Some(bd) = bias {
                                v += bd[co];
                            }
                            out_b[((ni * oc + co) * shape.oh + oy) * shape.ow + ox] = v;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn plan_end(&mut self) {
        self.plan = None;
    }

    fn visit_plan_codes(&mut self, visitor: &mut dyn FnMut(PlanCodeView<'_>)) {
        if let Some(state) = &mut self.plan {
            visitor(state.codes.view(0, &self.codes, self.bits));
        }
    }

    fn name(&self) -> &'static str {
        "QuantizedConv2d"
    }
}

/// Blanket helper: quantizes every [`crate::linear::Linear`]-compatible
/// float layer of a [`crate::Sequential`]-built network is out of scope for
/// a generic container (layers are type-erased); model builders construct
/// quantized networks layer by layer instead. This free function covers the
/// common leaf case: quantize a `Linear` and box it.
///
/// # Errors
///
/// Returns an error when `bits` is outside `[2, 8]`.
pub fn quantize_linear_boxed(
    linear: &crate::linear::Linear,
    bits: u8,
) -> Result<crate::layer::BoxedLayer> {
    Ok(Box::new(QuantizedLinear::from_linear(linear, bits)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Conv2d;
    use crate::linear::Linear;
    use crate::Sequential;
    use invnorm_tensor::Rng;

    /// Worst-case output error of the quantized path vs the float layer:
    /// per-element products lose at most `|x|·Δw + |w|·Δx + Δx·Δw` with
    /// `Δx ≤ s_x/2`, `Δw ≤ s_w/2`, summed over the reduction dimension.
    fn error_bound(x: &Tensor, w_scales: &[f32], w_max: f32, k: usize) -> f32 {
        let x_max = x.abs().max();
        let sx = x_max / 127.0;
        let sw = w_scales.iter().fold(0.0f32, |m, &s| m.max(s));
        k as f32 * (x_max * sw * 0.5 + w_max * sx * 0.5 + sx * sw * 0.25) + 1e-5
    }

    #[test]
    fn quantized_linear_matches_float_within_tolerance() {
        let mut rng = Rng::seed_from(1);
        let mut float = Linear::new(32, 12, &mut rng);
        let mut quant = QuantizedLinear::from_linear(&float, 8).unwrap();
        let x = Tensor::randn(&[5, 32], 0.0, 1.0, &mut rng);
        let yf = float.forward(&x, Mode::Eval).unwrap();
        let yq = quant.forward(&x, Mode::Eval).unwrap();
        assert_eq!(yq.dims(), yf.dims());
        let bound = error_bound(&x, quant.scales(), float.weight().value.abs().max(), 32);
        let max_err = yf.sub(&yq).unwrap().abs().max();
        assert!(max_err <= bound, "err {max_err} vs bound {bound}");
    }

    #[test]
    fn quantized_linear_matches_its_dequantized_weights_closely() {
        // Against the *dequantized* weights the only error left is the
        // activation quantization — a much tighter check of the integer GEMM
        // + rescaling chain.
        let mut rng = Rng::seed_from(2);
        let float = Linear::new(24, 8, &mut rng);
        let mut quant = QuantizedLinear::from_linear(&float, 8).unwrap();
        let x = Tensor::randn(&[4, 24], 0.0, 1.0, &mut rng);
        let wq = quant.dequantized_weight();
        let mut exact = invnorm_tensor::ops::matmul_a_bt(&x, &wq).unwrap();
        if let Some(b) = float.bias() {
            let od = exact.data_mut();
            for i in 0..4 {
                for j in 0..8 {
                    od[i * 8 + j] += b.value.data()[j];
                }
            }
        }
        let yq = quant.forward(&x, Mode::Eval).unwrap();
        let x_max = x.abs().max();
        let sx = x_max / 127.0;
        let w_row_sum = 24.0 * wq.abs().max();
        let bound = sx * 0.5 * w_row_sum + 1e-4;
        let max_err = exact.sub(&yq).unwrap().abs().max();
        assert!(max_err <= bound, "err {max_err} vs bound {bound}");
    }

    #[test]
    fn quantized_conv_matches_float_within_tolerance() {
        let mut rng = Rng::seed_from(3);
        let mut float = Conv2d::new(3, 6, 3, 1, 1, &mut rng);
        let mut quant = QuantizedConv2d::from_conv2d(&float, 8).unwrap();
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let yf = float.forward(&x, Mode::Eval).unwrap();
        let yq = quant.forward(&x, Mode::Eval).unwrap();
        assert_eq!(yq.dims(), yf.dims());
        let k = 3 * 3 * 3;
        let bound = error_bound(&x, &quant.scales, float.weight().value.abs().max(), k);
        let max_err = yf.sub(&yq).unwrap().abs().max();
        assert!(max_err <= bound, "err {max_err} vs bound {bound}");
    }

    #[test]
    fn forward_buffers_reach_steady_state() {
        let mut rng = Rng::seed_from(4);
        let float = Conv2d::new(4, 8, 3, 1, 1, &mut rng);
        let mut quant = QuantizedConv2d::from_conv2d(&float, 8).unwrap();
        let x = Tensor::randn(&[2, 4, 10, 10], 0.0, 1.0, &mut rng);
        quant.forward(&x, Mode::Eval).unwrap();
        let caps = (
            quant.qin.capacity(),
            quant.cols.capacity(),
            quant.acc.capacity(),
            quant.scratch.capacity(),
        );
        for _ in 0..3 {
            quant.forward(&x, Mode::Eval).unwrap();
        }
        assert_eq!(
            caps,
            (
                quant.qin.capacity(),
                quant.cols.capacity(),
                quant.acc.capacity(),
                quant.scratch.capacity(),
            ),
            "steady-state forwards must not reallocate"
        );
    }

    #[test]
    fn backward_is_rejected() {
        let mut rng = Rng::seed_from(5);
        let mut ql = QuantizedLinear::from_linear(&Linear::new(4, 2, &mut rng), 8).unwrap();
        assert!(ql.backward(&Tensor::zeros(&[1, 2])).is_err());
        let mut qc =
            QuantizedConv2d::from_conv2d(&Conv2d::new(2, 2, 3, 1, 1, &mut rng), 8).unwrap();
        assert!(qc.backward(&Tensor::zeros(&[1, 2, 4, 4])).is_err());
    }

    #[test]
    fn shape_validation() {
        let mut rng = Rng::seed_from(6);
        let mut ql = QuantizedLinear::from_linear(&Linear::new(4, 2, &mut rng), 8).unwrap();
        assert!(ql.forward(&Tensor::zeros(&[2, 5]), Mode::Eval).is_err());
        assert!(ql.forward(&Tensor::zeros(&[4]), Mode::Eval).is_err());
        let mut qc =
            QuantizedConv2d::from_conv2d(&Conv2d::new(3, 4, 3, 1, 1, &mut rng), 8).unwrap();
        assert!(qc
            .forward(&Tensor::zeros(&[1, 2, 8, 8]), Mode::Eval)
            .is_err());
        assert!(QuantizedLinear::from_linear(&Linear::new(4, 2, &mut rng), 9).is_err());
        assert!(QuantizedLinear::from_linear(&Linear::new(4, 2, &mut rng), 1).is_err());
    }

    #[test]
    fn visit_codes_reaches_every_quantized_layer() {
        let mut rng = Rng::seed_from(7);
        let mut net = Sequential::new();
        net.push(Box::new(
            QuantizedLinear::from_linear(&Linear::new(6, 8, &mut rng), 8).unwrap(),
        ));
        net.push(Box::new(crate::activation::Relu::new()));
        net.push(Box::new(
            QuantizedLinear::from_linear(&Linear::new(8, 3, &mut rng), 8).unwrap(),
        ));
        let mut visited = Vec::new();
        net.visit_codes(&mut |view| visited.push((view.codes.len(), view.bits)));
        assert_eq!(visited, vec![(6 * 8, 8), (8 * 3, 8)]);
        // Float layers expose no codes.
        let mut float = Linear::new(4, 4, &mut rng);
        let mut count = 0;
        float.visit_codes(&mut |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn perturbing_codes_changes_the_output() {
        let mut rng = Rng::seed_from(8);
        let mut ql = QuantizedLinear::from_linear(&Linear::new(8, 4, &mut rng), 8).unwrap();
        let x = Tensor::randn(&[2, 8], 0.0, 1.0, &mut rng);
        let clean = ql.forward(&x, Mode::Eval).unwrap();
        ql.visit_codes(&mut |view| {
            for c in view.codes.iter_mut() {
                *c = (*c).wrapping_add(1).clamp(-127, 127);
            }
        });
        let faulty = ql.forward(&x, Mode::Eval).unwrap();
        assert!(!clean.approx_eq(&faulty, 1e-6));
    }

    #[test]
    fn calibrated_scale_matches_dynamic_on_the_calibration_batch() {
        let mut rng = Rng::seed_from(20);
        let float = Linear::new(12, 5, &mut rng);
        let mut dynamic = QuantizedLinear::from_linear(&float, 8).unwrap();
        let mut calibrated = QuantizedLinear::from_linear(&float, 8).unwrap();
        let x = Tensor::randn(&[6, 12], 0.0, 1.0, &mut rng);
        let scale = calibrated.calibrate(&x).unwrap();
        assert!(scale > 0.0);
        assert_eq!(calibrated.activation_scale(), Some(scale));
        // On the calibration batch itself the static scale equals the
        // dynamic one, so the outputs are bit-identical.
        let yd = dynamic.forward(&x, Mode::Eval).unwrap();
        let yc = calibrated.forward(&x, Mode::Eval).unwrap();
        assert!(yd.approx_eq(&yc, 0.0));
        // On a *smaller-magnitude* batch the static scale differs from the
        // dynamic one but stays within quantization tolerance.
        let x2 = x.scale(0.5);
        let yd2 = dynamic.forward(&x2, Mode::Eval).unwrap();
        let yc2 = calibrated.forward(&x2, Mode::Eval).unwrap();
        let tol = error_bound(&x2, dynamic.scales(), float.weight().value.abs().max(), 12);
        assert!(yd2.sub(&yc2).unwrap().abs().max() <= tol);
        calibrated.clear_calibration();
        assert_eq!(calibrated.activation_scale(), None);
        let yd3 = calibrated.forward(&x2, Mode::Eval).unwrap();
        assert!(yd3.approx_eq(&yd2, 0.0));
        // Shape validation.
        assert!(calibrated.calibrate(&Tensor::zeros(&[3, 4])).is_err());
        let mut qc =
            QuantizedConv2d::from_conv2d(&Conv2d::new(3, 4, 3, 1, 1, &mut rng), 8).unwrap();
        assert!(qc.calibrate(&Tensor::zeros(&[1, 2, 6, 6])).is_err());
        let xc = Tensor::randn(&[2, 3, 6, 6], 0.0, 1.0, &mut rng);
        let sc = qc.calibrate(&xc).unwrap();
        assert!(sc > 0.0 && qc.activation_scale() == Some(sc));
    }

    #[test]
    fn quantized_forward_batched_matches_sequential_realizations() {
        let mut rng = Rng::seed_from(21);
        let batch = 3usize;
        // Linear.
        let float = Linear::new(10, 4, &mut rng);
        let mut ql = QuantizedLinear::from_linear(&float, 8).unwrap();
        let x = Tensor::randn(&[5, 10], 0.0, 1.0, &mut rng);
        ql.begin_batched(batch).unwrap();
        ql.visit_batched_codes(&mut |view| {
            assert_eq!(view.index, 0);
            for b in 0..batch {
                for c in view.stacked.realization_mut(b).iter_mut() {
                    *c = c.wrapping_add(b as i8 + 1).clamp(-127, 127);
                }
            }
        });
        let realizations: Vec<Vec<i8>> = {
            let mut v = Vec::new();
            ql.visit_batched_codes(&mut |view| {
                for b in 0..batch {
                    v.push(view.stacked.realization(b).to_vec());
                }
            });
            v
        };
        let (out, shared) = ql.forward_batched(&x, true, batch, Mode::Eval).unwrap();
        assert!(!shared);
        assert_eq!(out.dims(), &[batch * 5, 4]);
        for (b, codes) in realizations.iter().enumerate() {
            let mut reference = QuantizedLinear::from_linear(&float, 8).unwrap();
            reference.codes = codes.clone();
            let expected = reference.forward(&x, Mode::Eval).unwrap();
            let got = &out.data()[b * 20..(b + 1) * 20];
            let identical = got
                .iter()
                .zip(expected.data().iter())
                .all(|(g, e)| g.to_bits() == e.to_bits());
            assert!(identical, "quantized linear realization {b} diverged");
        }
        ql.end_batched();

        // Conv, per-realization input path included.
        let floatc = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let mut qc = QuantizedConv2d::from_conv2d(&floatc, 8).unwrap();
        let xs = Tensor::randn(&[batch * 2, 2, 5, 5], 0.0, 1.0, &mut rng);
        qc.begin_batched(batch).unwrap();
        qc.visit_batched_codes(&mut |view| {
            for b in 0..batch {
                for c in view.stacked.realization_mut(b).iter_mut() {
                    *c = c.wrapping_sub(b as i8).clamp(-127, 127);
                }
            }
        });
        let realizations: Vec<Vec<i8>> = {
            let mut v = Vec::new();
            qc.visit_batched_codes(&mut |view| {
                for b in 0..batch {
                    v.push(view.stacked.realization(b).to_vec());
                }
            });
            v
        };
        let (out, _) = qc.forward_batched(&xs, false, batch, Mode::Eval).unwrap();
        let per_in = 2 * 2 * 5 * 5;
        let per_out = 2 * 3 * 5 * 5;
        for (b, codes) in realizations.iter().enumerate() {
            let mut reference = QuantizedConv2d::from_conv2d(&floatc, 8).unwrap();
            reference.codes = codes.clone();
            let xb = Tensor::from_vec(
                xs.data()[b * per_in..(b + 1) * per_in].to_vec(),
                &[2, 2, 5, 5],
            )
            .unwrap();
            let expected = reference.forward(&xb, Mode::Eval).unwrap();
            let got = &out.data()[b * per_out..(b + 1) * per_out];
            let identical = got
                .iter()
                .zip(expected.data().iter())
                .all(|(g, e)| g.to_bits() == e.to_bits());
            assert!(identical, "quantized conv realization {b} diverged");
        }
    }

    #[test]
    fn low_bit_widths_degrade_gracefully() {
        let mut rng = Rng::seed_from(9);
        let mut float = Linear::new(16, 4, &mut rng);
        let x = Tensor::randn(&[3, 16], 0.0, 1.0, &mut rng);
        let yf = float.forward(&x, Mode::Eval).unwrap();
        let err_of = |bits: u8, float: &Linear| {
            let mut q = QuantizedLinear::from_linear(float, bits).unwrap();
            let yq = q.forward(&x, Mode::Eval).unwrap();
            yf.sub(&yq).unwrap().abs().max()
        };
        assert!(err_of(2, &float) > err_of(8, &float));
    }
}
