//! Optimizers: SGD with momentum/weight decay and Adam.
//!
//! Optimizers operate on a network through the [`crate::Layer::visit_params`]
//! hook, so any layer composition (sequential, residual, model structs) can be
//! optimized without a central parameter registry.

use crate::layer::{Layer, Param};
use crate::Result;
use invnorm_tensor::Tensor;

/// Common interface of the optimizers in this module.
pub trait Optimizer {
    /// Applies one update step to every trainable parameter of `network` and
    /// clears the gradients.
    ///
    /// # Errors
    ///
    /// Returns an error if internal tensor operations fail (which indicates a
    /// bug in layer bookkeeping, e.g. a gradient with the wrong shape).
    fn step(&mut self, network: &mut dyn Layer) -> Result<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and decoupled L2
/// weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }

    /// SGD with momentum and weight decay.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
        }
    }

    fn update_param(&self, p: &mut Param, lr: f32) {
        if !p.trainable {
            return;
        }
        let mut grad = p.grad.clone();
        if self.weight_decay > 0.0 {
            // L2 regularization: grad += wd * value
            let _ = grad.add_scaled(&p.value, self.weight_decay);
        }
        if self.momentum > 0.0 {
            let velocity = p.opt_m.get_or_insert_with(|| Tensor::zeros(p.value.dims()));
            // v = momentum*v + grad ; value -= lr * v
            let vd = velocity.data_mut();
            for (v, g) in vd.iter_mut().zip(grad.data().iter()) {
                *v = self.momentum * *v + g;
            }
            let _ = p.value.add_scaled(velocity, -lr);
        } else {
            let _ = p.value.add_scaled(&grad, -lr);
        }
        p.zero_grad();
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, network: &mut dyn Layer) -> Result<()> {
        let lr = self.lr;
        let this = self.clone();
        network.visit_params(&mut |p| this.update_param(p, lr));
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with optional weight decay.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
}

impl Adam {
    /// Adam with standard hyper-parameters (β₁ = 0.9, β₂ = 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step_count: 0,
        }
    }

    /// Adam with weight decay.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Self {
            weight_decay,
            ..Self::new(lr)
        }
    }

    fn update_param(&self, p: &mut Param, lr_t: f32) {
        if !p.trainable {
            return;
        }
        let mut grad = p.grad.clone();
        if self.weight_decay > 0.0 {
            let _ = grad.add_scaled(&p.value, self.weight_decay);
        }
        let m = p.opt_m.get_or_insert_with(|| Tensor::zeros(p.value.dims()));
        let md = m.data_mut();
        for (mi, g) in md.iter_mut().zip(grad.data().iter()) {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
        }
        let v = p.opt_v.get_or_insert_with(|| Tensor::zeros(p.value.dims()));
        let vd = v.data_mut();
        for (vi, g) in vd.iter_mut().zip(grad.data().iter()) {
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
        }
        // Both buffers exist now; update the value.
        let (m, v) = (p.opt_m.as_ref().unwrap(), p.opt_v.as_ref().unwrap());
        let val = p.value.data_mut();
        for ((x, mi), vi) in val.iter_mut().zip(m.data().iter()).zip(v.data().iter()) {
            *x -= lr_t * mi / (vi.sqrt() + self.eps);
        }
        p.zero_grad();
    }
}

impl Optimizer for Adam {
    fn step(&mut self, network: &mut dyn Layer) -> Result<()> {
        self.step_count += 1;
        let t = self.step_count as f32;
        // Bias-corrected learning rate.
        let lr_t = self.lr * (1.0 - self.beta2.powf(t)).sqrt() / (1.0 - self.beta1.powf(t));
        let this = self.clone();
        network.visit_params(&mut |p| this.update_param(p, lr_t));
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Step learning-rate schedule: multiplies the learning rate by `gamma` every
/// `step_every` epochs.
#[derive(Debug, Clone)]
pub struct StepLrSchedule {
    initial_lr: f32,
    gamma: f32,
    step_every: usize,
}

impl StepLrSchedule {
    /// Creates a schedule.
    pub fn new(initial_lr: f32, gamma: f32, step_every: usize) -> Self {
        Self {
            initial_lr,
            gamma,
            step_every: step_every.max(1),
        }
    }

    /// Learning rate to use for the given (0-based) epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.initial_lr * self.gamma.powi((epoch / self.step_every) as i32)
    }

    /// Applies the schedule to an optimizer for the given epoch.
    pub fn apply(&self, optimizer: &mut dyn Optimizer, epoch: usize) {
        optimizer.set_learning_rate(self.lr_at(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use crate::linear::Linear;
    use crate::loss::mse;
    use crate::Sequential;
    use invnorm_tensor::{Rng, Tensor};

    /// Train y = 2x + 1 with a single Linear layer and check convergence.
    fn fit_line(optimizer: &mut dyn Optimizer, epochs: usize) -> f32 {
        let mut rng = Rng::seed_from(11);
        let mut net = Sequential::new().with(Box::new(Linear::new(1, 1, &mut rng)));
        let x = Tensor::linspace(-1.0, 1.0, 32).reshape(&[32, 1]).unwrap();
        let y = x.map(|v| 2.0 * v + 1.0);
        let mut last = f32::MAX;
        for _ in 0..epochs {
            let pred = net.forward(&x, Mode::Train).unwrap();
            let out = mse(&pred, &y).unwrap();
            net.backward(&out.grad).unwrap();
            optimizer.step(&mut net).unwrap();
            last = out.loss;
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        let mut opt = Sgd::new(0.5);
        assert!(fit_line(&mut opt, 200) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let mut plain = Sgd::new(0.05);
        let mut momentum = Sgd::with_momentum(0.05, 0.9, 0.0);
        let loss_plain = fit_line(&mut plain, 60);
        let loss_momentum = fit_line(&mut momentum, 60);
        assert!(
            loss_momentum < loss_plain,
            "momentum {loss_momentum} vs plain {loss_plain}"
        );
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        let mut opt = Adam::new(0.05);
        assert!(fit_line(&mut opt, 300) < 1e-3);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = Rng::seed_from(12);
        let mut net = Sequential::new().with(Box::new(Linear::new(4, 4, &mut rng)));
        let initial_norm = {
            let mut n = 0.0;
            net.visit_params(&mut |p| n += p.value.sq_norm());
            n
        };
        // Zero gradients, only weight decay acts.
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.5);
        for _ in 0..10 {
            net.zero_grad();
            opt.step(&mut net).unwrap();
        }
        let final_norm = {
            let mut n = 0.0;
            net.visit_params(&mut |p| n += p.value.sq_norm());
            n
        };
        assert!(final_norm < initial_norm);
    }

    #[test]
    fn frozen_params_are_not_updated() {
        let mut rng = Rng::seed_from(13);
        let mut net = Sequential::new().with(Box::new(Linear::new(2, 2, &mut rng)));
        net.visit_params(&mut |p| {
            p.trainable = false;
            p.grad.fill(1.0);
        });
        let before: Vec<f32> = {
            let mut v = Vec::new();
            net.visit_params(&mut |p| v.extend_from_slice(p.value.data()));
            v
        };
        Sgd::new(1.0).step(&mut net).unwrap();
        let after: Vec<f32> = {
            let mut v = Vec::new();
            net.visit_params(&mut |p| v.extend_from_slice(p.value.data()));
            v
        };
        assert_eq!(before, after);
    }

    #[test]
    fn step_clears_gradients() {
        let mut rng = Rng::seed_from(14);
        let mut net = Sequential::new().with(Box::new(Linear::new(2, 2, &mut rng)));
        net.visit_params(&mut |p| p.grad.fill(1.0));
        Adam::new(0.01).step(&mut net).unwrap();
        let mut grad_norm = 0.0;
        net.visit_params(&mut |p| grad_norm += p.grad.sq_norm());
        assert_eq!(grad_norm, 0.0);
    }

    #[test]
    fn lr_schedule_and_setters() {
        let sched = StepLrSchedule::new(0.1, 0.5, 10);
        assert_eq!(sched.lr_at(0), 0.1);
        assert_eq!(sched.lr_at(9), 0.1);
        assert!((sched.lr_at(10) - 0.05).abs() < 1e-7);
        assert!((sched.lr_at(25) - 0.025).abs() < 1e-7);
        let mut opt = Sgd::new(0.1);
        sched.apply(&mut opt, 20);
        assert!((opt.learning_rate() - 0.025).abs() < 1e-7);
        opt.set_learning_rate(1.0);
        assert_eq!(opt.learning_rate(), 1.0);
    }
}
