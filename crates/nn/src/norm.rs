//! Conventional normalization layers (normalize first, affine second).
//!
//! These are the baselines the paper's *inverted* normalization (see
//! `invnorm-core`) is compared against:
//!
//! * [`BatchNorm`] — per-channel statistics over the batch and spatial
//!   dimensions, with running statistics for evaluation.
//! * [`GroupNorm`] — per-instance statistics over channel groups; with
//!   `groups == 1` it behaves like Layer Normalization and with
//!   `groups == channels` like Instance Normalization.
//!
//! All layers accept activations of rank 2 (`[N, C]`), 3 (`[N, C, L]`) or 4
//! (`[N, C, H, W]`); internally they are viewed as `[N, C, S]` with `S` the
//! flattened spatial extent.

use crate::error::NnError;
use crate::layer::{Layer, Mode, Param};
use crate::plan::{PlanArenas, PlanCtx, PlanShape};
use crate::Result;
use invnorm_tensor::{vecmath, Tensor};

/// Small constant added to variances for numerical stability.
pub const NORM_EPS: f32 = 1e-5;

/// Views an activation tensor as `[N, C, S]`, returning `(n, c, s)`.
fn ncs_dims(input: &Tensor) -> Result<(usize, usize, usize)> {
    ncs_of(input.dims())
}

/// [`ncs_dims`] over raw dims (shared with the planned execution path).
fn ncs_of(d: &[usize]) -> Result<(usize, usize, usize)> {
    match d.len() {
        2 => Ok((d[0], d[1], 1)),
        3 => Ok((d[0], d[1], d[2])),
        4 => Ok((d[0], d[1], d[2] * d[3])),
        _ => Err(NnError::Config(format!(
            "normalization layers expect rank 2-4 input, got {:?}",
            d
        ))),
    }
}

/// Batch Normalization with learnable per-channel affine parameters applied
/// *after* normalization (the conventional ordering, Eq. 1 of the paper).
#[derive(Debug)]
pub struct BatchNorm {
    channels: usize,
    momentum: f32,
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    cache: Option<BatchNormCache>,
}

#[derive(Debug)]
struct BatchNormCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    input_dims: Vec<usize>,
}

impl BatchNorm {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        Self {
            channels,
            momentum: 0.1,
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            cache: None,
        }
    }

    /// Running mean estimate (used in evaluation mode).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance estimate (used in evaluation mode).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (n, c, s) = ncs_dims(input)?;
        if c != self.channels {
            return Err(NnError::Config(format!(
                "BatchNorm configured for {} channels, input has {c}",
                self.channels
            )));
        }
        let data = input.data();
        let count = (n * s) as f32;
        let mut out = input.clone();
        let mut x_hat = input.clone();
        let mut inv_stds = vec![0.0f32; c];
        for ci in 0..c {
            let (mean, var) = if mode.is_train() {
                let mut mean = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * s;
                    for i in 0..s {
                        mean += data[base + i];
                    }
                }
                mean /= count;
                let mut var = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * s;
                    for i in 0..s {
                        var += (data[base + i] - mean).powi(2);
                    }
                }
                var /= count;
                // Update running statistics.
                let rm = &mut self.running_mean.data_mut()[ci];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                let rv = &mut self.running_var.data_mut()[ci];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean.data()[ci], self.running_var.data()[ci])
            };
            let inv_std = 1.0 / (var + NORM_EPS).sqrt();
            inv_stds[ci] = inv_std;
            let g = self.gamma.value.data()[ci];
            let b = self.beta.value.data()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * s;
                vecmath::normalize_affine2(
                    &data[base..base + s],
                    &mut x_hat.data_mut()[base..base + s],
                    &mut out.data_mut()[base..base + s],
                    mean,
                    inv_std,
                    g,
                    b,
                );
            }
        }
        if mode.is_train() {
            self.cache = Some(BatchNormCache {
                x_hat,
                inv_std: inv_stds,
                input_dims: input.dims().to_vec(),
            });
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("BatchNorm"))?;
        let (n, c, s) = ncs_dims(grad_output)?;
        if grad_output.dims() != cache.input_dims.as_slice() {
            return Err(NnError::Config(
                "BatchNorm backward gradient shape mismatch".into(),
            ));
        }
        let count = (n * s) as f32;
        let gd = grad_output.data();
        let xh = cache.x_hat.data();
        let mut grad_input = Tensor::zeros(&cache.input_dims);
        for ci in 0..c {
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * s;
                for i in 0..s {
                    sum_dy += gd[base + i];
                    sum_dy_xhat += gd[base + i] * xh[base + i];
                }
            }
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat;
            self.beta.grad.data_mut()[ci] += sum_dy;
            let g = self.gamma.value.data()[ci];
            let inv_std = cache.inv_std[ci];
            let mean_dy = sum_dy / count;
            let mean_dy_xhat = sum_dy_xhat / count;
            for ni in 0..n {
                let base = (ni * c + ci) * s;
                for i in 0..s {
                    grad_input.data_mut()[base + i] =
                        g * inv_std * (gd[base + i] - mean_dy - xh[base + i] * mean_dy_xhat);
                }
            }
        }
        Ok(grad_input)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.gamma);
        visitor(&mut self.beta);
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        let (_, c, _) = ncs_of(&input.dims)?;
        if c != self.channels {
            return Err(NnError::Config(format!(
                "BatchNorm configured for {} channels, input has {c}",
                self.channels
            )));
        }
        Ok(arenas.reserve_like(input))
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        _ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        // Evaluation-mode normalization from the running statistics, in the
        // exact arithmetic order of `forward` (bit-identical results).
        let (n, c, s) = ncs_of(&input.dims)?;
        let [data, out] = arenas.f.many_mut([input.slot, output.slot]);
        for ci in 0..c {
            let mean = self.running_mean.data()[ci];
            let var = self.running_var.data()[ci];
            let inv_std = 1.0 / (var + NORM_EPS).sqrt();
            let g = self.gamma.value.data()[ci];
            let b = self.beta.value.data()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * s;
                vecmath::normalize_affine(
                    &data[base..base + s],
                    &mut out[base..base + s],
                    mean,
                    inv_std,
                    g,
                    b,
                );
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "BatchNorm"
    }
}

/// Group Normalization with learnable per-channel affine parameters applied
/// *after* normalization.
///
/// Statistics are computed per sample over groups of channels (and all
/// spatial positions), so train-time and test-time behaviour are identical —
/// the property the paper relies on for robustness to distribution shifts of
/// the weighted sum.
#[derive(Debug)]
pub struct GroupNorm {
    channels: usize,
    groups: usize,
    gamma: Param,
    beta: Param,
    cache: Option<GroupNormCache>,
}

#[derive(Debug)]
struct GroupNormCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    input_dims: Vec<usize>,
}

impl GroupNorm {
    /// Creates a group-norm layer.
    ///
    /// # Errors
    ///
    /// Returns an error if `groups` does not divide `channels` or is zero.
    pub fn new(channels: usize, groups: usize) -> Result<Self> {
        if groups == 0 || !channels.is_multiple_of(groups) {
            return Err(NnError::Config(format!(
                "groups ({groups}) must divide channels ({channels})"
            )));
        }
        Ok(Self {
            channels,
            groups,
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            cache: None,
        })
    }

    /// Layer-Normalization convenience constructor (`groups == 1`).
    pub fn layer_norm(channels: usize) -> Self {
        Self::new(channels, 1).expect("groups=1 always divides channels")
    }

    /// Instance-Normalization convenience constructor (`groups == channels`).
    pub fn instance_norm(channels: usize) -> Self {
        Self::new(channels, channels).expect("groups=channels always divides channels")
    }

    /// Number of channel groups.
    pub fn groups(&self) -> usize {
        self.groups
    }
}

impl Layer for GroupNorm {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (n, c, s) = ncs_dims(input)?;
        if c != self.channels {
            return Err(NnError::Config(format!(
                "GroupNorm configured for {} channels, input has {c}",
                self.channels
            )));
        }
        let cpg = c / self.groups; // channels per group
        let group_count = (cpg * s) as f32;
        let data = input.data();
        let mut out = input.clone();
        let mut x_hat = input.clone();
        let mut inv_stds = vec![0.0f32; n * self.groups];
        for ni in 0..n {
            for gi in 0..self.groups {
                let mut mean = 0.0f32;
                for cc in 0..cpg {
                    let ci = gi * cpg + cc;
                    let base = (ni * c + ci) * s;
                    for i in 0..s {
                        mean += data[base + i];
                    }
                }
                mean /= group_count;
                let mut var = 0.0f32;
                for cc in 0..cpg {
                    let ci = gi * cpg + cc;
                    let base = (ni * c + ci) * s;
                    for i in 0..s {
                        var += (data[base + i] - mean).powi(2);
                    }
                }
                var /= group_count;
                let inv_std = 1.0 / (var + NORM_EPS).sqrt();
                inv_stds[ni * self.groups + gi] = inv_std;
                for cc in 0..cpg {
                    let ci = gi * cpg + cc;
                    let g = self.gamma.value.data()[ci];
                    let b = self.beta.value.data()[ci];
                    let base = (ni * c + ci) * s;
                    vecmath::normalize_affine2(
                        &data[base..base + s],
                        &mut x_hat.data_mut()[base..base + s],
                        &mut out.data_mut()[base..base + s],
                        mean,
                        inv_std,
                        g,
                        b,
                    );
                }
            }
        }
        // GroupNorm has identical train/eval behaviour; cache for backward in
        // both modes so eval-time fault analyses can also request gradients.
        let _ = mode;
        self.cache = Some(GroupNormCache {
            x_hat,
            inv_std: inv_stds,
            input_dims: input.dims().to_vec(),
        });
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("GroupNorm"))?;
        if grad_output.dims() != cache.input_dims.as_slice() {
            return Err(NnError::Config(
                "GroupNorm backward gradient shape mismatch".into(),
            ));
        }
        let (n, c, s) = ncs_dims(grad_output)?;
        let cpg = c / self.groups;
        let group_count = (cpg * s) as f32;
        let gd = grad_output.data();
        let xh = cache.x_hat.data();
        let mut grad_input = Tensor::zeros(&cache.input_dims);

        // Per-channel affine gradients.
        for ci in 0..c {
            let mut dgamma = 0.0f32;
            let mut dbeta = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * s;
                for i in 0..s {
                    dgamma += gd[base + i] * xh[base + i];
                    dbeta += gd[base + i];
                }
            }
            self.gamma.grad.data_mut()[ci] += dgamma;
            self.beta.grad.data_mut()[ci] += dbeta;
        }

        // Per-(sample, group) input gradients.
        for ni in 0..n {
            for gi in 0..self.groups {
                let inv_std = cache.inv_std[ni * self.groups + gi];
                let mut mean_dxhat = 0.0f32;
                let mut mean_dxhat_xhat = 0.0f32;
                for cc in 0..cpg {
                    let ci = gi * cpg + cc;
                    let g = self.gamma.value.data()[ci];
                    let base = (ni * c + ci) * s;
                    for i in 0..s {
                        let dxh = gd[base + i] * g;
                        mean_dxhat += dxh;
                        mean_dxhat_xhat += dxh * xh[base + i];
                    }
                }
                mean_dxhat /= group_count;
                mean_dxhat_xhat /= group_count;
                for cc in 0..cpg {
                    let ci = gi * cpg + cc;
                    let g = self.gamma.value.data()[ci];
                    let base = (ni * c + ci) * s;
                    for i in 0..s {
                        let dxh = gd[base + i] * g;
                        grad_input.data_mut()[base + i] =
                            inv_std * (dxh - mean_dxhat - xh[base + i] * mean_dxhat_xhat);
                    }
                }
            }
        }
        Ok(grad_input)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.gamma);
        visitor(&mut self.beta);
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        let (_, c, _) = ncs_of(&input.dims)?;
        if c != self.channels {
            return Err(NnError::Config(format!(
                "GroupNorm configured for {} channels, input has {c}",
                self.channels
            )));
        }
        Ok(arenas.reserve_like(input))
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        _ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        // Per-(sample, group) statistics in the exact accumulation order of
        // `forward` (bit-identical results); no backward cache is retained.
        let (n, c, s) = ncs_of(&input.dims)?;
        let cpg = c / self.groups;
        let group_count = (cpg * s) as f32;
        let [data, out] = arenas.f.many_mut([input.slot, output.slot]);
        for ni in 0..n {
            for gi in 0..self.groups {
                let mut mean = 0.0f32;
                for cc in 0..cpg {
                    let base = (ni * c + gi * cpg + cc) * s;
                    for i in 0..s {
                        mean += data[base + i];
                    }
                }
                mean /= group_count;
                let mut var = 0.0f32;
                for cc in 0..cpg {
                    let base = (ni * c + gi * cpg + cc) * s;
                    for i in 0..s {
                        var += (data[base + i] - mean).powi(2);
                    }
                }
                var /= group_count;
                let inv_std = 1.0 / (var + NORM_EPS).sqrt();
                for cc in 0..cpg {
                    let ci = gi * cpg + cc;
                    let g = self.gamma.value.data()[ci];
                    let b = self.beta.value.data()[ci];
                    let base = (ni * c + ci) * s;
                    vecmath::normalize_affine(
                        &data[base..base + s],
                        &mut out[base..base + s],
                        mean,
                        inv_std,
                        g,
                        b,
                    );
                }
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "GroupNorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_tensor::Rng;

    #[test]
    fn batchnorm_normalizes_in_train_mode() {
        let mut rng = Rng::seed_from(1);
        let mut bn = BatchNorm::new(3);
        let x = Tensor::randn(&[8, 3, 4, 4], 5.0, 2.0, &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // With gamma=1, beta=0 the per-channel output should be ~N(0,1).
        for ci in 0..3 {
            let mut vals = Vec::new();
            for ni in 0..8 {
                for i in 0..16 {
                    vals.push(y.data()[(ni * 3 + ci) * 16 + i]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut rng = Rng::seed_from(2);
        let mut bn = BatchNorm::new(2);
        let x = Tensor::randn(&[16, 2, 3, 3], 1.0, 2.0, &mut rng);
        // Several train steps so running stats move toward batch stats.
        for _ in 0..50 {
            bn.forward(&x, Mode::Train).unwrap();
        }
        let y_eval = bn.forward(&x, Mode::Eval).unwrap();
        // Eval output should also be roughly standardized.
        assert!(y_eval.mean().abs() < 0.2);
        assert!((y_eval.std() - 1.0).abs() < 0.2);
    }

    #[test]
    fn batchnorm_gradients_match_numerical() {
        let mut rng = Rng::seed_from(3);
        let mut bn = BatchNorm::new(2);
        // Use non-trivial gamma/beta to exercise the full formula.
        bn.gamma.value = Tensor::from_vec(vec![1.5, 0.5], &[2]).unwrap();
        bn.beta.value = Tensor::from_vec(vec![0.3, -0.2], &[2]).unwrap();
        let x = Tensor::randn(&[3, 2, 2, 2], 0.0, 1.0, &mut rng);
        // Weighted-sum loss so the gradient is not uniform.
        let w = Tensor::randn(&[3, 2, 2, 2], 0.0, 1.0, &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        let _ = y;
        let grad_in = bn.backward(&w).unwrap();

        let eps = 1e-2f32;
        let loss = |bn: &mut BatchNorm, x: &Tensor| -> f32 {
            bn.forward(x, Mode::Train).unwrap().mul(&w).unwrap().sum()
        };
        for idx in [0usize, 5, 13, 23] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            // Fresh layers so running stats don't accumulate differences.
            let mut bnp = BatchNorm::new(2);
            bnp.gamma.value = bn.gamma.value.clone();
            bnp.beta.value = bn.beta.value.clone();
            let mut bnm = BatchNorm::new(2);
            bnm.gamma.value = bn.gamma.value.clone();
            bnm.beta.value = bn.beta.value.clone();
            let num = (loss(&mut bnp, &xp) - loss(&mut bnm, &xm)) / (2.0 * eps);
            assert!(
                (num - grad_in.data()[idx]).abs() < 2e-2,
                "batchnorm input grad mismatch at {idx}: num {num} ana {}",
                grad_in.data()[idx]
            );
        }
    }

    #[test]
    fn groupnorm_constructor_validation() {
        assert!(GroupNorm::new(8, 3).is_err());
        assert!(GroupNorm::new(8, 0).is_err());
        assert!(GroupNorm::new(8, 4).is_ok());
        assert_eq!(GroupNorm::layer_norm(8).groups(), 1);
        assert_eq!(GroupNorm::instance_norm(8).groups(), 8);
    }

    #[test]
    fn groupnorm_normalizes_each_instance() {
        let mut rng = Rng::seed_from(4);
        let mut gn = GroupNorm::layer_norm(4);
        let x = Tensor::randn(&[3, 4, 5, 5], -2.0, 3.0, &mut rng);
        let y = gn.forward(&x, Mode::Eval).unwrap();
        for ni in 0..3 {
            let inst = y.index_axis0(ni).unwrap();
            assert!(inst.mean().abs() < 1e-4);
            assert!((inst.std() - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn groupnorm_train_eval_identical() {
        let mut rng = Rng::seed_from(5);
        let mut gn = GroupNorm::new(6, 3).unwrap();
        let x = Tensor::randn(&[2, 6, 3, 3], 1.0, 2.0, &mut rng);
        let yt = gn.forward(&x, Mode::Train).unwrap();
        let ye = gn.forward(&x, Mode::Eval).unwrap();
        assert!(yt.approx_eq(&ye, 1e-6));
    }

    #[test]
    fn groupnorm_gradients_match_numerical() {
        let mut rng = Rng::seed_from(6);
        let mut gn = GroupNorm::new(4, 2).unwrap();
        gn.gamma.value = Tensor::from_vec(vec![1.2, 0.8, 1.5, 0.5], &[4]).unwrap();
        gn.beta.value = Tensor::from_vec(vec![0.1, -0.1, 0.2, 0.0], &[4]).unwrap();
        let x = Tensor::randn(&[2, 4, 2, 2], 0.0, 1.0, &mut rng);
        let w = Tensor::randn(&[2, 4, 2, 2], 0.0, 1.0, &mut rng);
        gn.forward(&x, Mode::Train).unwrap();
        let grad_in = gn.backward(&w).unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = gn.forward(&xp, Mode::Train).unwrap().mul(&w).unwrap().sum();
            let lm = gn.forward(&xm, Mode::Train).unwrap().mul(&w).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad_in.data()[idx]).abs() < 2e-2,
                "groupnorm input grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn norm_layers_accept_rank2_and_rank3() {
        let mut rng = Rng::seed_from(7);
        let mut bn = BatchNorm::new(5);
        let x2 = Tensor::randn(&[6, 5], 0.0, 1.0, &mut rng);
        assert_eq!(bn.forward(&x2, Mode::Train).unwrap().dims(), &[6, 5]);
        let mut gn = GroupNorm::layer_norm(5);
        let x3 = Tensor::randn(&[2, 5, 7], 0.0, 1.0, &mut rng);
        assert_eq!(gn.forward(&x3, Mode::Train).unwrap().dims(), &[2, 5, 7]);
        assert!(gn.forward(&Tensor::zeros(&[2, 3, 7]), Mode::Train).is_err());
    }

    #[test]
    fn affine_param_gradients_accumulate() {
        let mut rng = Rng::seed_from(8);
        let mut gn = GroupNorm::layer_norm(3);
        let x = Tensor::randn(&[2, 3, 4], 0.0, 1.0, &mut rng);
        let y = gn.forward(&x, Mode::Train).unwrap();
        gn.backward(&Tensor::ones(y.dims())).unwrap();
        // dβ = sum of grad = numel per channel.
        for ci in 0..3 {
            assert!((gn.beta.grad.data()[ci] - 8.0).abs() < 1e-4);
        }
    }
}
