//! # invnorm-nn
//!
//! A small, trainable neural-network layer stack built on
//! [`invnorm_tensor`], used as the substrate for reproducing *"Enhancing
//! Reliability of Neural Networks at the Edge: Inverted Normalization with
//! Stochastic Affine Transformations"* (DATE 2024).
//!
//! Everything is implemented with explicit, hand-written forward/backward
//! passes behind the object-safe [`Layer`] trait, so networks are assembled
//! from trait objects and trained with the optimizers in [`optim`]:
//!
//! * [`layer`] — the [`Layer`] trait, [`Param`] storage, and train/eval
//!   [`Mode`].
//! * [`linear`], [`conv`], [`pool`], [`activation`], [`norm`], [`dropout`],
//!   [`lstm`], [`reshape`] — concrete layers.
//! * [`quantized`] — integer-domain inference layers
//!   ([`quantized::QuantizedLinear`], [`quantized::QuantizedConv2d`]) whose
//!   i8 weight codes feed the blocked i8 GEMM and are exposed to code-domain
//!   fault injection via [`Layer::visit_codes`].
//! * [`plan`] — compiled inference plans: one-shot shape inference,
//!   arena-backed buffers and cached packed-weight panels with dirty-row
//!   re-packing, driven by the Monte-Carlo engine's planned execution paths.
//! * [`sequential`] — [`Sequential`] container plus the [`Residual`]
//!   combinator used by the residual CNN topology.
//! * [`loss`] — cross-entropy, mean-squared-error and binary-cross-entropy
//!   losses returning both the loss value and the logits gradient.
//! * [`optim`] — SGD (momentum + weight decay) and Adam.
//! * [`metrics`] — accuracy, RMSE, IoU and negative log-likelihood.
//! * [`train`] — small convenience training loops used by the examples,
//!   tests and experiment harness.
//!
//! # Example
//!
//! ```
//! use invnorm_nn::layer::{Layer, Mode};
//! use invnorm_nn::linear::Linear;
//! use invnorm_tensor::{Rng, Tensor};
//!
//! # fn main() -> Result<(), invnorm_nn::NnError> {
//! let mut rng = Rng::seed_from(0);
//! let mut layer = Linear::new(4, 2, &mut rng);
//! let x = Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng);
//! let y = layer.forward(&x, Mode::Train)?;
//! assert_eq!(y.dims(), &[3, 2]);
//! # Ok(())
//! # }
//! ```

// This crate must stay free of `unsafe`; all unsafe code in the
// workspace is confined to `crates/tensor` (lint rule R2).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod activation;
pub mod checkpoint;
pub mod conv;
pub mod dropout;
pub mod error;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod lstm;
pub mod metrics;
pub mod norm;
pub mod optim;
pub mod plan;
pub mod pool;
pub mod quantized;
pub mod reshape;
pub mod sequential;
pub mod train;
pub mod upsample;

pub use error::{CheckpointFault, NnError};
pub use invnorm_tensor::telemetry;
pub use layer::{CodeView, Layer, Mode, Param};
pub use plan::Plan;
pub use quantized::{QuantizedConv2d, QuantizedLinear};
pub use sequential::{Residual, Sequential};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NnError>;
