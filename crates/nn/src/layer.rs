//! The [`Layer`] trait, learnable [`Param`] storage and execution [`Mode`].

use crate::error::NnError;
use crate::plan::{self, PlanArenas, PlanCodeView, PlanCtx, PlanParamView, PlanShape};
use crate::Result;
use invnorm_tensor::Tensor;

/// Whether a forward pass is part of training (dropout active, batch
/// statistics updated) or evaluation.
///
/// Note that for the paper's Bayesian layers (affine dropout), stochasticity
/// is *also* applied at evaluation time — that behaviour is controlled by the
/// layer itself, not by `Mode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: stochastic regularizers active, normalization statistics
    /// computed from the current batch.
    Train,
    /// Inference: deterministic layers behave deterministically.
    Eval,
}

impl Mode {
    /// Returns `true` in training mode.
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// A learnable parameter: its value, the gradient accumulated by the latest
/// backward pass, and optimizer scratch state (first/second moment estimates
/// for Adam, velocity for SGD momentum).
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss w.r.t. this parameter (same shape as `value`).
    pub grad: Tensor,
    /// First-moment / velocity buffer, lazily created by optimizers.
    pub opt_m: Option<Tensor>,
    /// Second-moment buffer, lazily created by Adam.
    pub opt_v: Option<Tensor>,
    /// When `false` the optimizer skips this parameter (frozen).
    pub trainable: bool,
}

impl Param {
    /// Wraps a tensor as a trainable parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Self {
            value,
            grad,
            opt_m: None,
            opt_v: None,
            trainable: true,
        }
    }

    /// Wraps a tensor as a frozen (non-trainable) parameter.
    pub fn frozen(value: Tensor) -> Self {
        let mut p = Self::new(value);
        p.trainable = false;
        p
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar elements in the parameter.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// A mutable view of one quantized parameter's integer codes, handed to
/// [`Layer::visit_codes`] visitors.
///
/// This is the code-domain analogue of [`Param`]: fault injectors perturb
/// `codes` directly (bit flips, stuck-at cells) instead of round-tripping
/// through f32, so the realization lands exactly on the representation the
/// hardware programs into the crossbar.
#[derive(Debug)]
pub struct CodeView<'a> {
    /// The packed i8 quantization codes, row-major.
    pub codes: &'a mut [i8],
    /// Bit width of the quantized representation (≤ 8).
    pub bits: u8,
    /// Leading (output) dimension of the code matrix — the row count
    /// structured tile topologies map crossbar lines onto.
    pub rows: usize,
}

/// Stacked per-realization storage for one fault-targetable parameter,
/// staged by [`Layer::begin_batched`] for batched Monte-Carlo evaluation.
///
/// Realization `b` of the parameter occupies
/// `data[b * numel .. (b + 1) * numel]`. Buffers grow monotonically, so
/// re-staging the same network batch after batch allocates nothing in steady
/// state.
#[derive(Debug, Default, Clone)]
pub struct BatchedParam {
    data: Vec<f32>,
    batch: usize,
    numel: usize,
}

impl BatchedParam {
    /// Re-stages the buffer as `batch` copies of the clean parameter value
    /// (fault injectors then overwrite targeted slots in place).
    pub fn reset(&mut self, clean: &Tensor, batch: usize) {
        self.numel = clean.numel();
        self.batch = batch;
        self.data.clear();
        self.data.reserve(batch * self.numel);
        for _ in 0..batch {
            self.data.extend_from_slice(clean.data());
        }
    }

    /// Number of staged realizations.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Elements per realization.
    pub fn numel(&self) -> usize {
        self.numel
    }

    /// The full stacked buffer (`[batch * numel]`).
    pub fn data(&self) -> &[f32] {
        &self.data[..self.batch * self.numel]
    }

    /// Realization `b` of the parameter.
    ///
    /// # Panics
    ///
    /// Panics when `b >= batch`.
    pub fn realization(&self, b: usize) -> &[f32] {
        &self.data[b * self.numel..(b + 1) * self.numel]
    }

    /// Mutable realization `b` of the parameter.
    ///
    /// # Panics
    ///
    /// Panics when `b >= batch`.
    pub fn realization_mut(&mut self, b: usize) -> &mut [f32] {
        &mut self.data[b * self.numel..(b + 1) * self.numel]
    }
}

/// Stacked per-realization storage for one quantized parameter's integer
/// codes — the code-domain analogue of [`BatchedParam`].
#[derive(Debug, Default, Clone)]
pub struct BatchedCodes {
    data: Vec<i8>,
    batch: usize,
    numel: usize,
}

impl BatchedCodes {
    /// Re-stages the buffer as `batch` copies of the clean codes.
    pub fn reset(&mut self, clean: &[i8], batch: usize) {
        self.numel = clean.len();
        self.batch = batch;
        self.data.clear();
        self.data.reserve(batch * self.numel);
        for _ in 0..batch {
            self.data.extend_from_slice(clean);
        }
    }

    /// Number of staged realizations.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Codes per realization.
    pub fn numel(&self) -> usize {
        self.numel
    }

    /// The full stacked buffer (`[batch * numel]`).
    pub fn data(&self) -> &[i8] {
        &self.data[..self.batch * self.numel]
    }

    /// Realization `b` of the codes.
    ///
    /// # Panics
    ///
    /// Panics when `b >= batch`.
    pub fn realization(&self, b: usize) -> &[i8] {
        &self.data[b * self.numel..(b + 1) * self.numel]
    }

    /// Mutable realization `b` of the codes.
    ///
    /// # Panics
    ///
    /// Panics when `b >= batch`.
    pub fn realization_mut(&mut self, b: usize) -> &mut [i8] {
        &mut self.data[b * self.numel..(b + 1) * self.numel]
    }
}

/// One fault-targetable parameter's stacked buffer alongside its clean
/// value, handed to [`Layer::visit_batched`] visitors.
#[derive(Debug)]
pub struct BatchedParamView<'a> {
    /// Index of this parameter in [`Layer::visit_params`] order. Fault
    /// injectors fork the per-parameter RNG stream from this index, exactly
    /// as the sequential injector does, so batched realizations are
    /// bit-identical to sequential ones.
    pub index: usize,
    /// The clean parameter value (never touched by batched injection).
    pub clean: &'a Tensor,
    /// The stacked realizations staged by [`Layer::begin_batched`].
    pub stacked: &'a mut BatchedParam,
}

/// One quantized parameter's stacked code buffer alongside its clean codes,
/// handed to [`Layer::visit_batched_codes`] visitors.
#[derive(Debug)]
pub struct BatchedCodeView<'a> {
    /// Index of this parameter in [`Layer::visit_codes`] order (the fork
    /// index of the sequential code injector).
    pub index: usize,
    /// The clean codes (never touched by batched injection).
    pub clean: &'a [i8],
    /// Bit width of the quantized representation (≤ 8).
    pub bits: u8,
    /// Leading (output) dimension of one realization's code matrix — the
    /// row count structured tile topologies map crossbar lines onto.
    pub rows: usize,
    /// The stacked realizations staged by [`Layer::begin_batched`].
    pub stacked: &'a mut BatchedCodes,
}

/// An object-safe neural-network layer with explicit forward and backward
/// passes.
///
/// Implementations cache whatever activations they need during `forward` and
/// consume them in `backward`; calling `backward` without a preceding
/// `forward` returns [`crate::NnError::BackwardBeforeForward`].
pub trait Layer {
    /// Computes the layer output for `input`.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Propagates `grad_output` (gradient of the loss w.r.t. this layer's
    /// output) back to the input, accumulating parameter gradients
    /// internally.
    ///
    /// # Errors
    ///
    /// Returns an error when called before `forward` or when the gradient
    /// shape does not match the cached forward activation.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Visits every learnable parameter (used by optimizers and fault
    /// injectors).
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        let _ = visitor;
    }

    /// Visits every quantized weight's integer codes (used by code-domain
    /// fault injectors). Float layers have none; quantized layers and
    /// containers override this.
    fn visit_codes(&mut self, visitor: &mut dyn FnMut(CodeView<'_>)) {
        let _ = visitor;
    }

    /// Stages stacked weight buffers for `batch` fault realizations, seeding
    /// every slot with the clean value (see the batched Monte-Carlo engine in
    /// `invnorm-imc`). Containers recurse; weighted layers with batched-eval
    /// support override this.
    ///
    /// # Errors
    ///
    /// The default implementation returns an error when the layer carries
    /// fault-targetable state (rank ≥ 2 parameters or quantization codes) but
    /// does not support batched evaluation — a loud failure instead of
    /// silently evaluating clean weights.
    fn begin_batched(&mut self, batch: usize) -> Result<()> {
        let _ = batch;
        let mut needs_support = false;
        self.visit_params(&mut |p| needs_support |= p.value.rank() >= 2);
        self.visit_codes(&mut |_| needs_support = true);
        if needs_support {
            return Err(NnError::unsupported(self.name(), "batched evaluation"));
        }
        Ok(())
    }

    /// Releases the stacked buffers staged by [`Layer::begin_batched`].
    fn end_batched(&mut self) {}

    /// Visits every fault-targetable (rank ≥ 2) parameter's stacked buffer
    /// alongside its clean value. Only meaningful between
    /// [`Layer::begin_batched`] and [`Layer::end_batched`].
    fn visit_batched(&mut self, visitor: &mut dyn FnMut(BatchedParamView<'_>)) {
        let _ = visitor;
    }

    /// Visits every quantized parameter's stacked code buffer alongside its
    /// clean codes. Only meaningful between [`Layer::begin_batched`] and
    /// [`Layer::end_batched`].
    fn visit_batched_codes(&mut self, visitor: &mut dyn FnMut(BatchedCodeView<'_>)) {
        let _ = visitor;
    }

    /// Evaluates `batch` fault realizations in one forward pass.
    ///
    /// `shared == true` means `input` is one activation tensor broadcast
    /// across all realizations (the network input); `shared == false` means
    /// realization `b` owns rows `[b·N, (b+1)·N)` of the leading dimension.
    /// The returned flag reports which of the two the *output* is: weighted
    /// layers always produce per-realization output, while stateless layers
    /// (activations, pooling, reshapes, eval-mode norms) preserve their
    /// input's sharedness — the default implementation simply applies
    /// [`Layer::forward`], which is correct exactly for those layers (any
    /// layer with fault-targetable state was already rejected by
    /// [`Layer::begin_batched`]).
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible or the layer
    /// has no staged batched state.
    fn forward_batched(
        &mut self,
        input: &Tensor,
        shared: bool,
        batch: usize,
        mode: Mode,
    ) -> Result<(Tensor, bool)> {
        let _ = batch;
        Ok((self.forward(input, mode)?, shared))
    }

    /// Compiles this layer into an inference plan for a concrete input
    /// shape: records shapes, reserves arena buffers, and packs weights into
    /// cached panels. Returns the output edge (see [`crate::plan`]).
    ///
    /// The default implementation is the *fallback* protocol for layers
    /// without fault-targetable state: it discovers the output shape by
    /// forwarding zeros once and reserves an output slot;
    /// [`Layer::plan_forward`]'s default then routes through `forward`.
    /// Layers with rank ≥ 2 parameters or quantization codes must override
    /// the protocol — the default rejects them with
    /// [`NnError::Unsupported`].
    ///
    /// # Errors
    ///
    /// Returns an error when the layer cannot be planned or the input shape
    /// is incompatible.
    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        plan::fallback_compile(self, input, arenas)
    }

    /// Executes this layer's node of a compiled plan: reads the input slot,
    /// writes the output slot reserved by [`Layer::plan_compile`]. Planned
    /// layers run zero-alloc on arena buffers; the default fallback routes
    /// through `forward` (correct for weightless layers, at the cost of the
    /// allocations `forward` makes).
    ///
    /// # Errors
    ///
    /// Returns an error when called without a prior [`Layer::plan_compile`]
    /// or on a shape mismatch.
    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let _ = ctx;
        plan::fallback_forward(self, input, output, arenas)
    }

    /// Releases any state installed by [`Layer::plan_compile`]. Containers
    /// recurse.
    fn plan_end(&mut self) {}

    /// Visits every fault-targetable (rank ≥ 2) parameter's plan state
    /// (clean value, faulty buffer, dirty-row set). Only meaningful between
    /// [`Layer::plan_compile`] and [`Layer::plan_end`].
    fn visit_plan_params(&mut self, visitor: &mut dyn FnMut(PlanParamView<'_>)) {
        let _ = visitor;
    }

    /// Visits every quantized parameter's plan state — the code-domain
    /// analogue of [`Layer::visit_plan_params`].
    fn visit_plan_codes(&mut self, visitor: &mut dyn FnMut(PlanCodeView<'_>)) {
        let _ = visitor;
    }

    /// Human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;

    /// Total number of learnable scalars in the layer.
    fn param_count(&mut self) -> usize {
        let mut count = 0usize;
        self.visit_params(&mut |p| count += p.numel());
        count
    }

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

/// A boxed layer, the unit networks are assembled from.
pub type BoxedLayer = Box<dyn Layer + Send>;

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler {
        calls: usize,
    }

    impl Layer for Doubler {
        fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
            self.calls += 1;
            Ok(input.scale(2.0))
        }
        fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
            Ok(grad_output.scale(2.0))
        }
        fn name(&self) -> &'static str {
            "Doubler"
        }
    }

    #[test]
    fn mode_flags() {
        assert!(Mode::Train.is_train());
        assert!(!Mode::Eval.is_train());
    }

    #[test]
    fn param_lifecycle() {
        let mut p = Param::new(Tensor::ones(&[2, 3]));
        assert!(p.trainable);
        assert_eq!(p.numel(), 6);
        p.grad.fill(5.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        let f = Param::frozen(Tensor::ones(&[2]));
        assert!(!f.trainable);
    }

    #[test]
    fn default_trait_methods() {
        let mut d = Doubler { calls: 0 };
        assert_eq!(d.param_count(), 0);
        d.zero_grad(); // no-op, but must not panic
        let x = Tensor::ones(&[2]);
        let y = d.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.data(), &[2.0, 2.0]);
        assert_eq!(d.name(), "Doubler");
    }

    #[test]
    fn boxed_layer_is_usable() {
        let mut layers: Vec<BoxedLayer> = vec![Box::new(Doubler { calls: 0 })];
        let x = Tensor::ones(&[3]);
        let y = layers[0].forward(&x, Mode::Train).unwrap();
        assert_eq!(y.sum(), 6.0);
    }
}
