//! Fully connected (dense) layer.

use crate::error::NnError;
use crate::layer::{BatchedParam, BatchedParamView, Layer, Mode, Param};
use crate::plan::{PlanArenas, PlanCtx, PlanParamView, PlanShape, PlannedWeight};
use crate::Result;
use invnorm_tensor::gemm::{gemm_prepacked, gemm_prepacked_ab, gemm_prepacked_b, PackedA};
use invnorm_tensor::telemetry;
use invnorm_tensor::{ops, ArenaSlot, Rng, Scratch, Tensor};

/// A fully connected layer computing `y = x Wᵀ + b` for `x: [N, in]`,
/// `W: [out, in]`, `b: [out]`.
///
/// Weights are initialized with Kaiming-uniform scaling
/// (`U(-1/√in, 1/√in)`), the PyTorch default, so conventional baselines train
/// comparably to the paper's.
///
/// # Example
///
/// ```
/// use invnorm_nn::layer::{Layer, Mode};
/// use invnorm_nn::linear::Linear;
/// use invnorm_tensor::{Rng, Tensor};
///
/// # fn main() -> Result<(), invnorm_nn::NnError> {
/// let mut rng = Rng::seed_from(1);
/// let mut fc = Linear::new(8, 3, &mut rng);
/// let x = Tensor::randn(&[4, 8], 0.0, 1.0, &mut rng);
/// assert_eq!(fc.forward(&x, Mode::Eval)?.dims(), &[4, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Option<Param>,
    cached_input: Option<Tensor>,
    batched: Option<LinearBatched>,
    plan: Option<LinearPlan>,
}

/// Compiled-plan state: the cached packed weight operand with realization
/// bookkeeping (one panel per stacked realization for batched plans), and
/// the cached packed activation panel for frozen (run-invariant) inputs.
#[derive(Debug)]
struct LinearPlan {
    weight: PlannedWeight,
    packed_a: PackedA,
    a_gen: u64,
    scratch: Scratch,
    /// Stacked realizations per forward (1 for ordinary plans).
    batch: usize,
    /// Staging for the fused wide `[N, B·out]` product of frozen batched
    /// layers, re-strided into per-realization stacking afterwards. Whether
    /// a layer runs frozen is only known at forward time, so every batched
    /// Linear reserves this one output-edge-sized slot even though only a
    /// frozen first layer uses it.
    wide_stage: ArenaSlot,
}

/// Batched-eval state: stacked weight realizations plus the reusable GEMM
/// buffers of the batch-fused forward pass (the wide `[N, B·out]` staging
/// product for shared inputs, the packed activation panel for
/// per-realization inputs).
#[derive(Debug, Default)]
struct LinearBatched {
    weights: BatchedParam,
    packed: PackedA,
    packed_b: Vec<f32>,
    wide: Vec<f32>,
}

impl Linear {
    /// Creates a layer with bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        Self::with_bias(in_features, out_features, true, rng)
    }

    /// Creates a layer, optionally without a bias term.
    pub fn with_bias(in_features: usize, out_features: usize, bias: bool, rng: &mut Rng) -> Self {
        let bound = 1.0 / (in_features as f32).sqrt();
        let weight = Tensor::rand_uniform(&[out_features, in_features], -bound, bound, rng);
        let bias = if bias {
            Some(Param::new(Tensor::rand_uniform(
                &[out_features],
                -bound,
                bound,
                rng,
            )))
        } else {
            None
        };
        Self {
            in_features,
            out_features,
            weight: Param::new(weight),
            bias,
            cached_input: None,
            batched: None,
            plan: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the weight parameter (for inspection in tests and
    /// fault injection).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Immutable access to the bias parameter (used by the quantized-layer
    /// conversion path).
    pub fn bias(&self) -> Option<&Param> {
        self.bias.as_ref()
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::Config(format!(
                "Linear expects input [N, {}], got {:?}",
                self.in_features,
                input.dims()
            )));
        }
        // The input is only needed by backward; skip the clone on the
        // inference hot path (and drop any stale training cache).
        self.cached_input = if mode.is_train() {
            Some(input.clone())
        } else {
            None
        };
        let mut out = ops::matmul_a_bt(input, &self.weight.value)?;
        if let Some(bias) = &self.bias {
            let n = out.dims()[0];
            let c = self.out_features;
            let od = out.data_mut();
            let bd = bias.value.data();
            for i in 0..n {
                for j in 0..c {
                    od[i * c + j] += bd[j];
                }
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Linear"))?;
        // dW += gradᵀ @ x : [out, in] — fused into the gradient tensor with
        // β = 1, avoiding the former temporary + add pass.
        ops::gemm_into(
            true,
            false,
            1.0,
            grad_output,
            input,
            1.0,
            &mut self.weight.grad,
        )?;
        if let Some(bias) = &mut self.bias {
            let grad_b = ops::sum_axis(grad_output, 0)?;
            bias.grad.add_assign(&grad_b)?;
        }
        // dx = grad @ W : [N, in]
        Ok(ops::matmul(grad_output, &self.weight.value)?)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        if let Some(bias) = &mut self.bias {
            visitor(bias);
        }
    }

    fn begin_batched(&mut self, batch: usize) -> Result<()> {
        let state = self.batched.get_or_insert_with(LinearBatched::default);
        state.weights.reset(&self.weight.value, batch);
        Ok(())
    }

    fn end_batched(&mut self) {
        self.batched = None;
    }

    fn visit_batched(&mut self, visitor: &mut dyn FnMut(BatchedParamView<'_>)) {
        if let Some(state) = &mut self.batched {
            visitor(BatchedParamView {
                index: 0,
                clean: &self.weight.value,
                stacked: &mut state.weights,
            });
        }
    }

    fn forward_batched(
        &mut self,
        input: &Tensor,
        shared: bool,
        batch: usize,
        _mode: Mode,
    ) -> Result<(Tensor, bool)> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::Config(format!(
                "Linear expects input [N, {}], got {:?}",
                self.in_features,
                input.dims()
            )));
        }
        let state = self.batched.as_mut().ok_or_else(|| {
            NnError::Config("Linear::forward_batched called without begin_batched".into())
        })?;
        if state.weights.batch() != batch {
            return Err(NnError::Config(format!(
                "Linear has {} staged weight realizations, expected {batch}",
                state.weights.batch()
            )));
        }
        let rows = input.dims()[0];
        let n = if shared {
            rows
        } else {
            if !rows.is_multiple_of(batch) {
                return Err(NnError::Config(format!(
                    "per-realization input rows {rows} not divisible by batch {batch}"
                )));
            }
            rows / batch
        };
        let (fin, fout) = (self.in_features, self.out_features);
        let mut out = vec![0.0f32; batch * n * fout];
        let LinearBatched {
            weights,
            packed,
            packed_b,
            wide,
        } = state;
        if shared {
            // Fuse the B realizations into ONE wide product: the stacked
            // weights `[B·out, in]` are already contiguous, so
            // `x @ [B·out, in]ᵀ → [N, B·out]` evaluates every realization in
            // a single GEMM. Each output element keeps the per-element
            // k-accumulation order of `ops::matmul_a_bt`, so realization b's
            // columns are bit-identical to a sequential forward on its
            // weights — while the shared activation panel is packed and
            // streamed once instead of B times.
            if wide.len() < n * batch * fout {
                wide.resize(n * batch * fout, 0.0);
            }
            let wide = &mut wide[..n * batch * fout];
            invnorm_tensor::gemm::gemm(
                false,
                true,
                n,
                batch * fout,
                fin,
                1.0,
                input.data(),
                weights.data(),
                0.0,
                wide,
            );
            for b in 0..batch {
                let out_b = &mut out[b * n * fout..][..n * fout];
                for i in 0..n {
                    out_b[i * fout..(i + 1) * fout]
                        .copy_from_slice(&wide[i * batch * fout + b * fout..][..fout]);
                }
            }
        } else {
            for b in 0..batch {
                packed.pack(false, &input.data()[b * n * fin..][..n * fin], n, fin);
                // y_b = x_b W_bᵀ : same shape and accumulation order as the
                // sequential `ops::matmul_a_bt`, so each realization is
                // bit-identical to a sequential forward on its weights.
                gemm_prepacked(
                    packed,
                    true,
                    fout,
                    1.0,
                    weights.realization(b),
                    0.0,
                    &mut out[b * n * fout..][..n * fout],
                    packed_b,
                );
            }
        }
        if let Some(bias) = &self.bias {
            let bd = bias.value.data();
            for row in out.chunks_exact_mut(fout) {
                for (o, &bv) in row.iter_mut().zip(bd) {
                    *o += bv;
                }
            }
        }
        Ok((Tensor::from_vec(out, &[batch * n, fout])?, false))
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        let batch = arenas.batch();
        if input.dims.len() != 2
            || input.dims[1] != self.in_features
            || !input.dims[0].is_multiple_of(batch)
        {
            return Err(NnError::Config(format!(
                "Linear expects input [N, {}] (N divisible by the plan batch {batch}), got {:?}",
                self.in_features, input.dims
            )));
        }
        let n = input.dims[0];
        let (fin, fout) = (self.in_features, self.out_features);
        self.plan = Some(LinearPlan {
            weight: PlannedWeight::pack_batched(self.weight.value.data(), fin, fout, batch),
            packed_a: PackedA::new(),
            a_gen: 0,
            scratch: Scratch::new(),
            batch,
            wide_stage: arenas.f.reserve(if batch > 1 { n * fout } else { 0 }),
        });
        Ok(PlanShape {
            slot: arenas.f.reserve(n * fout),
            dims: vec![n, fout],
        })
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let state = self.plan.as_mut().ok_or_else(|| {
            NnError::Config("Linear::plan_forward called without plan_compile".into())
        })?;
        let (fin, fout) = (self.in_features, self.out_features);
        let batch = state.batch;
        // Realization b owns rows [b·n, (b+1)·n) of the stacked edges.
        let n = input.dims[0] / batch;
        if ctx.frozen && batch > 1 {
            // Fused wide product: the plan input is constant across runs —
            // and its stacked realizations are tiles of the same activation
            // — so ONE packed panel of the first tile meets the wide stacked
            // weight operand in a single `[N, B·out]` GEMM (full microkernel
            // width, the activation panel streamed once), then the columns
            // are re-strided into per-realization stacking.
            let wide_w = state.weight.refresh_wide();
            let [x, stage, out] = arenas
                .f
                .many_mut([input.slot, state.wide_stage, output.slot]);
            if state.a_gen != ctx.input_gen {
                telemetry::count(telemetry::Counter::FrozenInputMisses, 1);
                state.packed_a.pack(false, &x[..n * fin], n, fin);
                state.a_gen = ctx.input_gen;
            } else {
                telemetry::count(telemetry::Counter::FrozenInputHits, 1);
            }
            telemetry::count(telemetry::Counter::WideGemms, 1);
            gemm_prepacked_ab(&state.packed_a, wide_w, 1.0, 0.0, stage);
            let ld = batch * fout;
            for b in 0..batch {
                let out_b = &mut out[b * n * fout..][..n * fout];
                for i in 0..n {
                    out_b[i * fout..(i + 1) * fout]
                        .copy_from_slice(&stage[i * ld + b * fout..][..fout]);
                }
            }
            if let Some(bias) = &self.bias {
                let bd = bias.value.data();
                for row in out.chunks_exact_mut(fout) {
                    for (o, &bv) in row.iter_mut().zip(bd) {
                        *o += bv;
                    }
                }
            }
            return Ok(());
        }
        // Bring the cached packed operands up to date with this realization
        // batch (cell scatter / dirty-row re-packing / uniform-scale).
        state.weight.refresh_all();
        let [x, out] = arenas.f.many_mut([input.slot, output.slot]);
        if ctx.frozen {
            // Single-realization frozen plan: one cached activation panel,
            // one cached weight panel.
            if state.a_gen != ctx.input_gen {
                telemetry::count(telemetry::Counter::FrozenInputMisses, 1);
                state.packed_a.pack(false, &x[..n * fin], n, fin);
                state.a_gen = ctx.input_gen;
            } else {
                telemetry::count(telemetry::Counter::FrozenInputHits, 1);
            }
            for b in 0..batch {
                gemm_prepacked_ab(
                    &state.packed_a,
                    state.weight.panel(b),
                    1.0,
                    0.0,
                    &mut out[b * n * fout..][..n * fout],
                );
            }
        } else {
            for b in 0..batch {
                gemm_prepacked_b(
                    false,
                    n,
                    1.0,
                    &x[b * n * fin..][..n * fin],
                    state.weight.panel(b),
                    0.0,
                    &mut out[b * n * fout..][..n * fout],
                    &mut state.scratch,
                );
            }
        }
        if let Some(bias) = &self.bias {
            let bd = bias.value.data();
            for row in out.chunks_exact_mut(fout) {
                for (o, &bv) in row.iter_mut().zip(bd) {
                    *o += bv;
                }
            }
        }
        Ok(())
    }

    fn plan_end(&mut self) {
        self.plan = None;
    }

    fn visit_plan_params(&mut self, visitor: &mut dyn FnMut(PlanParamView<'_>)) {
        if let Some(state) = &mut self.plan {
            visitor(state.weight.view(0, &self.weight.value));
        }
    }

    fn name(&self) -> &'static str {
        "Linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numerical_check(bias: bool) {
        let mut rng = Rng::seed_from(10);
        let mut layer = Linear::with_bias(5, 3, bias, &mut rng);
        let x = Tensor::randn(&[2, 5], 0.0, 1.0, &mut rng);
        let y = layer.forward(&x, Mode::Train).unwrap();
        let grad_out = Tensor::ones(y.dims());
        let grad_in = layer.backward(&grad_out).unwrap();

        let eps = 1e-2f32;
        // Input gradient check.
        for idx in [0usize, 3, 7] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = layer.forward(&xp, Mode::Train).unwrap().sum();
            let lm = layer.forward(&xm, Mode::Train).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad_in.data()[idx]).abs() < 1e-2,
                "input grad mismatch at {idx}"
            );
        }
        // Weight gradient check.
        let analytic = layer.weight.grad.clone();
        for idx in [0usize, 6, 14] {
            let orig = layer.weight.value.data()[idx];
            layer.weight.value.data_mut()[idx] = orig + eps;
            let lp = layer.forward(&x, Mode::Train).unwrap().sum();
            layer.weight.value.data_mut()[idx] = orig - eps;
            let lm = layer.forward(&x, Mode::Train).unwrap().sum();
            layer.weight.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - analytic.data()[idx]).abs() < 1e-2,
                "weight grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn gradients_match_numerical_with_bias() {
        numerical_check(true);
    }

    #[test]
    fn gradients_match_numerical_without_bias() {
        numerical_check(false);
    }

    #[test]
    fn forward_shape_and_bias_effect() {
        let mut rng = Rng::seed_from(3);
        let mut with_bias = Linear::new(4, 2, &mut rng);
        let x = Tensor::zeros(&[1, 4]);
        let y = with_bias.forward(&x, Mode::Eval).unwrap();
        // Zero input → output equals bias.
        let b = with_bias.bias.as_ref().unwrap().value.clone();
        assert!(y.reshape(&[2]).unwrap().approx_eq(&b, 1e-6));
    }

    #[test]
    fn rejects_bad_input_shape() {
        let mut rng = Rng::seed_from(4);
        let mut layer = Linear::new(4, 2, &mut rng);
        assert!(layer.forward(&Tensor::zeros(&[2, 5]), Mode::Eval).is_err());
        assert!(layer.forward(&Tensor::zeros(&[4]), Mode::Eval).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = Rng::seed_from(5);
        let mut layer = Linear::new(4, 2, &mut rng);
        assert!(matches!(
            layer.backward(&Tensor::zeros(&[1, 2])),
            Err(NnError::BackwardBeforeForward("Linear"))
        ));
    }

    #[test]
    fn param_count_and_zero_grad() {
        let mut rng = Rng::seed_from(6);
        let mut layer = Linear::new(4, 3, &mut rng);
        assert_eq!(layer.param_count(), 4 * 3 + 3);
        let x = Tensor::randn(&[2, 4], 0.0, 1.0, &mut rng);
        let y = layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&Tensor::ones(y.dims())).unwrap();
        assert!(layer.weight.grad.sq_norm() > 0.0);
        layer.zero_grad();
        assert_eq!(layer.weight.grad.sq_norm(), 0.0);
    }

    #[test]
    fn forward_batched_matches_per_realization_forwards() {
        let mut rng = Rng::seed_from(20);
        let mut layer = Linear::new(6, 3, &mut rng);
        let batch = 4usize;
        let x = Tensor::randn(&[5, 6], 0.0, 1.0, &mut rng);
        layer.begin_batched(batch).unwrap();
        // Perturb each staged realization distinctly.
        layer.visit_batched(&mut |view| {
            assert_eq!(view.index, 0);
            for b in 0..batch {
                for (i, v) in view.stacked.realization_mut(b).iter_mut().enumerate() {
                    *v += (b as f32 + 1.0) * 0.01 * (i % 3) as f32;
                }
            }
        });
        // Shared input: one packed activation panel, B realizations.
        let (out, shared) = layer.forward_batched(&x, true, batch, Mode::Eval).unwrap();
        assert!(!shared);
        assert_eq!(out.dims(), &[batch * 5, 3]);
        // Reference: a fresh Linear whose weights are realization b.
        let stacked: Vec<Vec<f32>> = {
            let mut v = Vec::new();
            layer.visit_batched(&mut |view| {
                for b in 0..batch {
                    v.push(view.stacked.realization(b).to_vec());
                }
            });
            v
        };
        for (b, wb) in stacked.iter().enumerate() {
            let mut reference = Linear::new(6, 3, &mut Rng::seed_from(0));
            reference.weight.value = Tensor::from_vec(wb.clone(), &[3, 6]).unwrap();
            reference.bias = layer.bias.clone();
            let expected = reference.forward(&x, Mode::Eval).unwrap();
            let got = &out.data()[b * 15..(b + 1) * 15];
            let identical = got
                .iter()
                .zip(expected.data().iter())
                .all(|(g, e)| g.to_bits() == e.to_bits());
            assert!(identical, "realization {b} diverged from sequential");
        }
        // Per-realization input path.
        let xs = Tensor::randn(&[batch * 5, 6], 0.0, 1.0, &mut rng);
        let (out2, _) = layer
            .forward_batched(&xs, false, batch, Mode::Eval)
            .unwrap();
        for (b, wb) in stacked.iter().enumerate() {
            let mut reference = Linear::new(6, 3, &mut Rng::seed_from(0));
            reference.weight.value = Tensor::from_vec(wb.clone(), &[3, 6]).unwrap();
            reference.bias = layer.bias.clone();
            let xb = Tensor::from_vec(xs.data()[b * 30..(b + 1) * 30].to_vec(), &[5, 6]).unwrap();
            let expected = reference.forward(&xb, Mode::Eval).unwrap();
            let got = &out2.data()[b * 15..(b + 1) * 15];
            let identical = got
                .iter()
                .zip(expected.data().iter())
                .all(|(g, e)| g.to_bits() == e.to_bits());
            assert!(identical, "per-realization input {b} diverged");
        }
        layer.end_batched();
        assert!(layer.forward_batched(&x, true, batch, Mode::Eval).is_err());
    }

    #[test]
    fn forward_batched_guards() {
        let mut rng = Rng::seed_from(21);
        let mut layer = Linear::new(4, 2, &mut rng);
        // Without begin_batched: loud error.
        assert!(layer
            .forward_batched(&Tensor::zeros(&[2, 4]), true, 2, Mode::Eval)
            .is_err());
        layer.begin_batched(3).unwrap();
        // Batch mismatch.
        assert!(layer
            .forward_batched(&Tensor::zeros(&[2, 4]), true, 2, Mode::Eval)
            .is_err());
        // Per-realization rows not divisible by batch.
        assert!(layer
            .forward_batched(&Tensor::zeros(&[4, 4]), false, 3, Mode::Eval)
            .is_err());
        // Wrong feature count.
        assert!(layer
            .forward_batched(&Tensor::zeros(&[3, 5]), true, 3, Mode::Eval)
            .is_err());
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let mut rng = Rng::seed_from(7);
        let mut layer = Linear::new(3, 2, &mut rng);
        let x = Tensor::randn(&[2, 3], 0.0, 1.0, &mut rng);
        let y = layer.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(y.dims());
        layer.backward(&g).unwrap();
        let first = layer.weight.grad.clone();
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&g).unwrap();
        assert!(layer.weight.grad.approx_eq(&first.scale(2.0), 1e-5));
    }
}
