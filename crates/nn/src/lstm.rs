//! Long short-term memory (LSTM) layer with full backpropagation through
//! time, used by the paper's atmospheric-CO₂ autoregressive forecaster.

use crate::error::NnError;
use crate::layer::{Layer, Mode, Param};
use crate::Result;
use invnorm_tensor::scratch::uninit_slice;
use invnorm_tensor::{ops, vecmath, Rng, Scratch, Tensor};

/// Gate activations cached for one timestep.
#[derive(Debug, Clone)]
struct StepCache {
    x: Tensor,      // [N, F]
    h_prev: Tensor, // [N, H]
    c_prev: Tensor, // [N, H]
    i: Tensor,      // input gate
    f: Tensor,      // forget gate
    g: Tensor,      // cell candidate
    o: Tensor,      // output gate
    tanh_c: Tensor, // tanh(new cell state)
}

impl StepCache {
    /// A zeroed cache for one timestep, reused (overwritten in full) across
    /// training forwards with the same `[N, T, F]` geometry.
    fn zeros(n: usize, feat: usize, h: usize) -> Self {
        Self {
            x: Tensor::zeros(&[n, feat]),
            h_prev: Tensor::zeros(&[n, h]),
            c_prev: Tensor::zeros(&[n, h]),
            i: Tensor::zeros(&[n, h]),
            f: Tensor::zeros(&[n, h]),
            g: Tensor::zeros(&[n, h]),
            o: Tensor::zeros(&[n, h]),
            tanh_c: Tensor::zeros(&[n, h]),
        }
    }
}

/// A single-layer LSTM over `[N, T, F]` sequences.
///
/// With `return_sequences == true` the output is the full hidden sequence
/// `[N, T, H]`; otherwise only the final hidden state `[N, H]` is returned
/// (the usual choice before a regression head).
///
/// Gate order in the packed weight matrices is `input, forget, cell, output`.
///
/// Evaluation-mode forwards run a buffer-reusing fast path: the per-timestep
/// input slice and gate pre-activations live in a [`Scratch`] and the gate
/// math updates the recurrent state in place, so the Monte-Carlo hot loop
/// performs no per-timestep allocations. Training-mode forwards retain the
/// per-step caches needed by backpropagation through time.
#[derive(Debug)]
pub struct Lstm {
    input_size: usize,
    hidden_size: usize,
    return_sequences: bool,
    w_ih: Param, // [4H, F]
    w_hh: Param, // [4H, H]
    bias: Param, // [4H]
    cache: Option<Vec<StepCache>>,
    scratch: Scratch,
}

impl Lstm {
    /// Creates an LSTM layer.
    pub fn new(
        input_size: usize,
        hidden_size: usize,
        return_sequences: bool,
        rng: &mut Rng,
    ) -> Self {
        let bound = 1.0 / (hidden_size as f32).sqrt();
        Self {
            input_size,
            hidden_size,
            return_sequences,
            w_ih: Param::new(Tensor::rand_uniform(
                &[4 * hidden_size, input_size],
                -bound,
                bound,
                rng,
            )),
            w_hh: Param::new(Tensor::rand_uniform(
                &[4 * hidden_size, hidden_size],
                -bound,
                bound,
                rng,
            )),
            bias: Param::new(Tensor::rand_uniform(&[4 * hidden_size], -bound, bound, rng)),
            cache: None,
            scratch: Scratch::new(),
        }
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Whether the full hidden sequence is returned.
    pub fn returns_sequences(&self) -> bool {
        self.return_sequences
    }

    /// Applies the gate nonlinearities to one staged pre-activation row
    /// `[i | f | g | o]` in place through the tier-dispatched vectorized
    /// kernels: `i`, `f` (contiguous) and `o` are sigmoids, `g` is tanh.
    fn activate_gates(zrow: &mut [f32], h: usize) {
        vecmath::sigmoid_mut(&mut zrow[..2 * h]);
        vecmath::tanh_mut(&mut zrow[2 * h..3 * h]);
        vecmath::sigmoid_mut(&mut zrow[3 * h..]);
    }
}

impl Lstm {
    /// Inference fast path: gate pre-activations and the input slice live in
    /// the layer scratch, the recurrent state is updated in place, and no
    /// step caches are built. Identical math to the training path.
    fn forward_eval(&mut self, input: &Tensor) -> Result<Tensor> {
        let d = input.dims();
        let (n, t, feat) = (d[0], d[1], d[2]);
        let h = self.hidden_size;
        let mut h_prev = vec![0.0f32; n * h];
        let mut c_prev = vec![0.0f32; n * h];
        let mut hidden_seq = if self.return_sequences {
            vec![0.0f32; n * t * h]
        } else {
            Vec::new()
        };
        let id = input.data();
        let w_ih = self.w_ih.value.data();
        let w_hh = self.w_hh.value.data();
        let bd = self.bias.value.data();
        let x_t = uninit_slice(&mut self.scratch.step, n * feat);
        let z = uninit_slice(&mut self.scratch.out_mat, n * 4 * h);
        for ti in 0..t {
            for ni in 0..n {
                let src = (ni * t + ti) * feat;
                x_t[ni * feat..(ni + 1) * feat].copy_from_slice(&id[src..src + feat]);
            }
            // z = x W_ihᵀ + h_prev W_hhᵀ : [N, 4H], fused with β = 1.
            ops::gemm(false, true, n, 4 * h, feat, 1.0, x_t, w_ih, 0.0, z);
            ops::gemm(false, true, n, 4 * h, h, 1.0, &h_prev, w_hh, 1.0, z);
            for ni in 0..n {
                let zrow = &mut z[ni * 4 * h..(ni + 1) * 4 * h];
                for (zv, bv) in zrow.iter_mut().zip(bd.iter()) {
                    *zv += bv;
                }
                Self::activate_gates(zrow, h);
                for hi in 0..h {
                    let (i, f, g, o) = (zrow[hi], zrow[h + hi], zrow[2 * h + hi], zrow[3 * h + hi]);
                    let c = f * c_prev[ni * h + hi] + i * g;
                    c_prev[ni * h + hi] = c;
                    h_prev[ni * h + hi] = o * vecmath::tanh_scalar(c);
                }
                if self.return_sequences {
                    let dst = (ni * t + ti) * h;
                    hidden_seq[dst..dst + h].copy_from_slice(&h_prev[ni * h..(ni + 1) * h]);
                }
            }
        }
        if self.return_sequences {
            Ok(Tensor::from_vec(hidden_seq, &[n, t, h])?)
        } else {
            Ok(Tensor::from_vec(h_prev, &[n, h])?)
        }
    }
}

impl Layer for Lstm {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let d = input.dims();
        if d.len() != 3 || d[2] != self.input_size {
            return Err(NnError::Config(format!(
                "Lstm expects [N, T, {}], got {d:?}",
                self.input_size
            )));
        }
        if !mode.is_train() {
            // No backward pass will follow; drop any stale training cache and
            // take the allocation-free path.
            self.cache = None;
            return self.forward_eval(input);
        }
        let (n, t, feat) = (d[0], d[1], d[2]);
        let h = self.hidden_size;
        // Reuse the previous training step's caches when the geometry
        // matches: every tensor below is overwritten in full, so a
        // steady-state training loop performs no per-timestep allocations
        // beyond the returned output.
        let mut caches = match self.cache.take() {
            Some(caches)
                if caches.len() == t
                    && caches
                        .first()
                        .is_some_and(|c| c.x.dims() == [n, feat] && c.i.dims() == [n, h]) =>
            {
                caches
            }
            _ => (0..t).map(|_| StepCache::zeros(n, feat, h)).collect(),
        };
        let mut h_state = vec![0.0f32; n * h];
        let mut c_state = vec![0.0f32; n * h];
        let mut hidden_seq = if self.return_sequences {
            vec![0.0f32; n * t * h]
        } else {
            Vec::new()
        };
        let id = input.data();
        let w_ih = self.w_ih.value.data();
        let w_hh = self.w_hh.value.data();
        let bd = self.bias.value.data();
        let z = uninit_slice(&mut self.scratch.out_mat, n * 4 * h);
        for (ti, cache) in caches.iter_mut().enumerate() {
            let StepCache {
                x,
                h_prev,
                c_prev,
                i,
                f,
                g,
                o,
                tanh_c,
            } = cache;
            // Stage x_t = input[:, ti, :] and the incoming recurrent state
            // directly into the step cache.
            let xd = x.data_mut();
            for ni in 0..n {
                let src = (ni * t + ti) * feat;
                xd[ni * feat..(ni + 1) * feat].copy_from_slice(&id[src..src + feat]);
            }
            h_prev.data_mut().copy_from_slice(&h_state);
            c_prev.data_mut().copy_from_slice(&c_state);
            // z = x W_ihᵀ + h_prev W_hhᵀ : [N, 4H], recurrent term fused with
            // β = 1 — the same two GEMMs as the eval fast path.
            ops::gemm(false, true, n, 4 * h, feat, 1.0, xd, w_ih, 0.0, z);
            ops::gemm(false, true, n, 4 * h, h, 1.0, &h_state, w_hh, 1.0, z);
            let (idata, fdata, gdata, odata, tdata) = (
                i.data_mut(),
                f.data_mut(),
                g.data_mut(),
                o.data_mut(),
                tanh_c.data_mut(),
            );
            for ni in 0..n {
                let zrow = &mut z[ni * 4 * h..(ni + 1) * 4 * h];
                for (zv, bv) in zrow.iter_mut().zip(bd.iter()) {
                    *zv += bv;
                }
                Self::activate_gates(zrow, h);
                for hi in 0..h {
                    let (iv, fv, gv, ov) =
                        (zrow[hi], zrow[h + hi], zrow[2 * h + hi], zrow[3 * h + hi]);
                    let c = fv * c_state[ni * h + hi] + iv * gv;
                    let tc = vecmath::tanh_scalar(c);
                    idata[ni * h + hi] = iv;
                    fdata[ni * h + hi] = fv;
                    gdata[ni * h + hi] = gv;
                    odata[ni * h + hi] = ov;
                    tdata[ni * h + hi] = tc;
                    c_state[ni * h + hi] = c;
                    h_state[ni * h + hi] = ov * tc;
                }
                if self.return_sequences {
                    let dst = (ni * t + ti) * h;
                    hidden_seq[dst..dst + h].copy_from_slice(&h_state[ni * h..(ni + 1) * h]);
                }
            }
        }
        self.cache = Some(caches);

        if self.return_sequences {
            Ok(Tensor::from_vec(hidden_seq, &[n, t, h])?)
        } else {
            Ok(Tensor::from_vec(h_state, &[n, h])?)
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let caches = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Lstm"))?;
        let t = caches.len();
        if t == 0 {
            return Err(NnError::Config("Lstm backward on empty sequence".into()));
        }
        let n = caches[0].x.dims()[0];
        let feat = self.input_size;
        let h = self.hidden_size;

        let mut grad_input = Tensor::zeros(&[n, t, feat]);
        // Recurrent state gradients: small per-call buffers reused across
        // timesteps. The larger staging matrices (packed gate gradients, the
        // input gradient slice and the bias column sums) live in the layer
        // scratch, so a steady-state training loop allocates nothing per
        // step.
        let mut dh = vec![0.0f32; n * h];
        let mut dh_next = vec![0.0f32; n * h];
        let mut dc_next = vec![0.0f32; n * h];
        let dz = uninit_slice(&mut self.scratch.step, n * 4 * h);
        let dx = uninit_slice(&mut self.scratch.cols, n * feat);
        let bias_sums = uninit_slice(&mut self.scratch.packed_b, 4 * h);
        let god = grad_output.data();

        for ti in (0..t).rev() {
            let cache = &caches[ti];
            // dh = external gradient on h_t + recurrent gradient.
            for ni in 0..n {
                for hi in 0..h {
                    let ext = if self.return_sequences {
                        god[(ni * t + ti) * h + hi]
                    } else if ti == t - 1 {
                        god[ni * h + hi]
                    } else {
                        0.0
                    };
                    dh[ni * h + hi] = ext + dh_next[ni * h + hi];
                }
            }
            let (id, fd, gd, od, td, cpd) = (
                cache.i.data(),
                cache.f.data(),
                cache.g.data(),
                cache.o.data(),
                cache.tanh_c.data(),
                cache.c_prev.data(),
            );
            for e in 0..n * h {
                // dо = dh·tanh(c); dc = dh·o·(1 − tanh²(c)) + dc_next.
                let do_ = dh[e] * td[e];
                let dc = dh[e] * od[e] * (1.0 - td[e] * td[e]) + dc_next[e];
                let di = dc * gd[e];
                let dg = dc * id[e];
                let df = dc * cpd[e];
                dc_next[e] = dc * fd[e];
                // Gate pre-activation gradients, packed [N, 4H] in gate
                // order (input, forget, cell, output).
                let (ni, hi) = (e / h, e % h);
                let base = ni * 4 * h;
                dz[base + hi] = di * id[e] * (1.0 - id[e]);
                dz[base + h + hi] = df * fd[e] * (1.0 - fd[e]);
                dz[base + 2 * h + hi] = dg * (1.0 - gd[e] * gd[e]);
                dz[base + 3 * h + hi] = do_ * od[e] * (1.0 - od[e]);
            }

            // Parameter gradients, accumulated in place with β = 1.
            ops::gemm(
                true,
                false,
                4 * h,
                feat,
                n,
                1.0,
                dz,
                cache.x.data(),
                1.0,
                self.w_ih.grad.data_mut(),
            );
            ops::gemm(
                true,
                false,
                4 * h,
                h,
                n,
                1.0,
                dz,
                cache.h_prev.data(),
                1.0,
                self.w_hh.grad.data_mut(),
            );
            bias_sums.fill(0.0);
            for ni in 0..n {
                for (s, &g) in bias_sums.iter_mut().zip(&dz[ni * 4 * h..(ni + 1) * 4 * h]) {
                    *s += g;
                }
            }
            for (g, &s) in self.bias.grad.data_mut().iter_mut().zip(bias_sums.iter()) {
                *g += s;
            }

            // Input and recurrent gradients.
            ops::gemm(
                false,
                false,
                n,
                feat,
                4 * h,
                1.0,
                dz,
                self.w_ih.value.data(),
                0.0,
                dx,
            );
            ops::gemm(
                false,
                false,
                n,
                h,
                4 * h,
                1.0,
                dz,
                self.w_hh.value.data(),
                0.0,
                &mut dh_next,
            );

            // Scatter dx into grad_input[:, ti, :].
            let gid = grad_input.data_mut();
            for ni in 0..n {
                let dst = (ni * t + ti) * feat;
                for fi in 0..feat {
                    gid[dst + fi] += dx[ni * feat + fi];
                }
            }
        }
        Ok(grad_input)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.w_ih);
        visitor(&mut self.w_hh);
        visitor(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Lstm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut rng = Rng::seed_from(1);
        let mut lstm = Lstm::new(3, 5, false, &mut rng);
        let x = Tensor::randn(&[4, 7, 3], 0.0, 1.0, &mut rng);
        let y = lstm.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[4, 5]);

        let mut lstm_seq = Lstm::new(3, 5, true, &mut rng);
        let y = lstm_seq.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[4, 7, 5]);
        assert!(lstm_seq.returns_sequences());
        assert_eq!(lstm_seq.hidden_size(), 5);
    }

    #[test]
    fn rejects_bad_input() {
        let mut rng = Rng::seed_from(2);
        let mut lstm = Lstm::new(3, 4, false, &mut rng);
        assert!(lstm
            .forward(&Tensor::zeros(&[4, 7, 2]), Mode::Train)
            .is_err());
        assert!(lstm.forward(&Tensor::zeros(&[4, 7]), Mode::Train).is_err());
        assert!(lstm.backward(&Tensor::zeros(&[4, 4])).is_err());
    }

    #[test]
    fn hidden_values_are_bounded() {
        let mut rng = Rng::seed_from(3);
        let mut lstm = Lstm::new(2, 6, true, &mut rng);
        let x = Tensor::randn(&[2, 10, 2], 0.0, 5.0, &mut rng);
        let y = lstm.forward(&x, Mode::Train).unwrap();
        // h = o * tanh(c) with o in (0,1) so |h| < 1.
        assert!(y.max() <= 1.0 && y.min() >= -1.0);
        assert!(!y.has_non_finite());
    }

    #[test]
    fn input_gradient_matches_numerical_last_hidden() {
        let mut rng = Rng::seed_from(4);
        let mut lstm = Lstm::new(2, 3, false, &mut rng);
        let x = Tensor::randn(&[1, 4, 2], 0.0, 1.0, &mut rng);
        let y = lstm.forward(&x, Mode::Train).unwrap();
        let grad_in = lstm.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(grad_in.dims(), x.dims());

        let eps = 1e-2f32;
        for idx in [0usize, 3, 5, 7] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = lstm.forward(&xp, Mode::Train).unwrap().sum();
            let lm = lstm.forward(&xm, Mode::Train).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad_in.data()[idx]).abs() < 2e-2,
                "lstm input grad mismatch at {idx}: num {num} ana {}",
                grad_in.data()[idx]
            );
        }
    }

    #[test]
    fn input_gradient_matches_numerical_sequences() {
        let mut rng = Rng::seed_from(5);
        let mut lstm = Lstm::new(2, 3, true, &mut rng);
        let x = Tensor::randn(&[1, 3, 2], 0.0, 1.0, &mut rng);
        let y = lstm.forward(&x, Mode::Train).unwrap();
        let grad_in = lstm.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-2f32;
        for idx in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = lstm.forward(&xp, Mode::Train).unwrap().sum();
            let lm = lstm.forward(&xm, Mode::Train).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad_in.data()[idx]).abs() < 2e-2,
                "lstm seq input grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn weight_gradient_matches_numerical() {
        let mut rng = Rng::seed_from(6);
        let mut lstm = Lstm::new(2, 2, false, &mut rng);
        let x = Tensor::randn(&[2, 3, 2], 0.0, 1.0, &mut rng);
        let y = lstm.forward(&x, Mode::Train).unwrap();
        lstm.backward(&Tensor::ones(y.dims())).unwrap();
        let analytic = lstm.w_ih.grad.clone();
        let eps = 1e-2f32;
        for idx in [0usize, 5, 11] {
            let orig = lstm.w_ih.value.data()[idx];
            lstm.w_ih.value.data_mut()[idx] = orig + eps;
            let lp = lstm.forward(&x, Mode::Train).unwrap().sum();
            lstm.w_ih.value.data_mut()[idx] = orig - eps;
            let lm = lstm.forward(&x, Mode::Train).unwrap().sum();
            lstm.w_ih.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - analytic.data()[idx]).abs() < 2e-2,
                "lstm w_ih grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn param_count() {
        let mut rng = Rng::seed_from(7);
        let mut lstm = Lstm::new(3, 4, false, &mut rng);
        assert_eq!(lstm.param_count(), 4 * 4 * 3 + 4 * 4 * 4 + 4 * 4);
    }

    #[test]
    fn training_step_caches_reach_steady_state() {
        let mut rng = Rng::seed_from(9);
        let mut lstm = Lstm::new(3, 5, true, &mut rng);
        let x = Tensor::randn(&[4, 6, 3], 0.0, 1.0, &mut rng);
        // Warm up one train forward + backward so caches and scratch exist.
        let y = lstm.forward(&x, Mode::Train).unwrap();
        lstm.backward(&Tensor::ones(y.dims())).unwrap();
        let scratch_warm = lstm.scratch.capacity();
        let cache_ptrs: Vec<*const f32> = lstm
            .cache
            .as_ref()
            .unwrap()
            .iter()
            .map(|c| c.x.data().as_ptr())
            .collect();
        // Steady-state training loop: the same cache tensors are overwritten
        // in place and the scratch does not grow.
        for _ in 0..3 {
            let y = lstm.forward(&x, Mode::Train).unwrap();
            lstm.backward(&Tensor::ones(y.dims())).unwrap();
        }
        assert_eq!(lstm.scratch.capacity(), scratch_warm);
        let cache_ptrs_after: Vec<*const f32> = lstm
            .cache
            .as_ref()
            .unwrap()
            .iter()
            .map(|c| c.x.data().as_ptr())
            .collect();
        assert_eq!(
            cache_ptrs, cache_ptrs_after,
            "step caches must be reused, not reallocated"
        );
        // A geometry change rebuilds the caches (and still trains correctly).
        let x2 = Tensor::randn(&[2, 4, 3], 0.0, 1.0, &mut rng);
        let y2 = lstm.forward(&x2, Mode::Train).unwrap();
        assert_eq!(y2.dims(), &[2, 4, 5]);
        lstm.backward(&Tensor::ones(y2.dims())).unwrap();
    }

    #[test]
    fn eval_fast_path_matches_train_forward() {
        let mut rng = Rng::seed_from(8);
        for &return_sequences in &[false, true] {
            let mut lstm = Lstm::new(3, 5, return_sequences, &mut rng);
            let x = Tensor::randn(&[4, 6, 3], 0.0, 1.0, &mut rng);
            let train = lstm.forward(&x, Mode::Train).unwrap();
            let eval = lstm.forward(&x, Mode::Eval).unwrap();
            assert!(
                eval.approx_eq(&train, 1e-6),
                "eval path must match train math (seq={return_sequences})"
            );
            // Repeated eval forwards reuse the scratch buffers.
            let warm = lstm.scratch.capacity();
            for _ in 0..3 {
                lstm.forward(&x, Mode::Eval).unwrap();
            }
            assert_eq!(lstm.scratch.capacity(), warm);
            // The eval pass dropped the training cache: backward must refuse.
            assert!(lstm.backward(&Tensor::ones(train.dims())).is_err());
        }
    }
}
