//! Long short-term memory (LSTM) layer with full backpropagation through
//! time, used by the paper's atmospheric-CO₂ autoregressive forecaster.

use crate::error::NnError;
use crate::layer::{Layer, Mode, Param};
use crate::Result;
use invnorm_tensor::scratch::uninit_slice;
use invnorm_tensor::{ops, Rng, Scratch, Tensor};

/// Gate activations cached for one timestep.
#[derive(Debug, Clone)]
struct StepCache {
    x: Tensor,      // [N, F]
    h_prev: Tensor, // [N, H]
    c_prev: Tensor, // [N, H]
    i: Tensor,      // input gate
    f: Tensor,      // forget gate
    g: Tensor,      // cell candidate
    o: Tensor,      // output gate
    tanh_c: Tensor, // tanh(new cell state)
}

/// A single-layer LSTM over `[N, T, F]` sequences.
///
/// With `return_sequences == true` the output is the full hidden sequence
/// `[N, T, H]`; otherwise only the final hidden state `[N, H]` is returned
/// (the usual choice before a regression head).
///
/// Gate order in the packed weight matrices is `input, forget, cell, output`.
///
/// Evaluation-mode forwards run a buffer-reusing fast path: the per-timestep
/// input slice and gate pre-activations live in a [`Scratch`] and the gate
/// math updates the recurrent state in place, so the Monte-Carlo hot loop
/// performs no per-timestep allocations. Training-mode forwards retain the
/// per-step caches needed by backpropagation through time.
#[derive(Debug)]
pub struct Lstm {
    input_size: usize,
    hidden_size: usize,
    return_sequences: bool,
    w_ih: Param, // [4H, F]
    w_hh: Param, // [4H, H]
    bias: Param, // [4H]
    cache: Option<Vec<StepCache>>,
    scratch: Scratch,
}

impl Lstm {
    /// Creates an LSTM layer.
    pub fn new(
        input_size: usize,
        hidden_size: usize,
        return_sequences: bool,
        rng: &mut Rng,
    ) -> Self {
        let bound = 1.0 / (hidden_size as f32).sqrt();
        Self {
            input_size,
            hidden_size,
            return_sequences,
            w_ih: Param::new(Tensor::rand_uniform(
                &[4 * hidden_size, input_size],
                -bound,
                bound,
                rng,
            )),
            w_hh: Param::new(Tensor::rand_uniform(
                &[4 * hidden_size, hidden_size],
                -bound,
                bound,
                rng,
            )),
            bias: Param::new(Tensor::rand_uniform(&[4 * hidden_size], -bound, bound, rng)),
            cache: None,
            scratch: Scratch::new(),
        }
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Whether the full hidden sequence is returned.
    pub fn returns_sequences(&self) -> bool {
        self.return_sequences
    }

    fn sigmoid(x: f32) -> f32 {
        1.0 / (1.0 + (-x).exp())
    }

    /// Splits a packed `[N, 4H]` pre-activation into the four gate tensors.
    fn split_gates(&self, z: &Tensor, n: usize) -> (Tensor, Tensor, Tensor, Tensor) {
        let h = self.hidden_size;
        let zd = z.data();
        let mut i = vec![0.0f32; n * h];
        let mut f = vec![0.0f32; n * h];
        let mut g = vec![0.0f32; n * h];
        let mut o = vec![0.0f32; n * h];
        for ni in 0..n {
            for hi in 0..h {
                i[ni * h + hi] = Self::sigmoid(zd[ni * 4 * h + hi]);
                f[ni * h + hi] = Self::sigmoid(zd[ni * 4 * h + h + hi]);
                g[ni * h + hi] = zd[ni * 4 * h + 2 * h + hi].tanh();
                o[ni * h + hi] = Self::sigmoid(zd[ni * 4 * h + 3 * h + hi]);
            }
        }
        (
            Tensor::from_vec(i, &[n, h]).expect("gate shape"),
            Tensor::from_vec(f, &[n, h]).expect("gate shape"),
            Tensor::from_vec(g, &[n, h]).expect("gate shape"),
            Tensor::from_vec(o, &[n, h]).expect("gate shape"),
        )
    }
}

impl Lstm {
    /// Inference fast path: gate pre-activations and the input slice live in
    /// the layer scratch, the recurrent state is updated in place, and no
    /// step caches are built. Identical math to the training path.
    fn forward_eval(&mut self, input: &Tensor) -> Result<Tensor> {
        let d = input.dims();
        let (n, t, feat) = (d[0], d[1], d[2]);
        let h = self.hidden_size;
        let mut h_prev = vec![0.0f32; n * h];
        let mut c_prev = vec![0.0f32; n * h];
        let mut hidden_seq = if self.return_sequences {
            vec![0.0f32; n * t * h]
        } else {
            Vec::new()
        };
        let id = input.data();
        let w_ih = self.w_ih.value.data();
        let w_hh = self.w_hh.value.data();
        let bd = self.bias.value.data();
        let x_t = uninit_slice(&mut self.scratch.step, n * feat);
        let z = uninit_slice(&mut self.scratch.out_mat, n * 4 * h);
        for ti in 0..t {
            for ni in 0..n {
                let src = (ni * t + ti) * feat;
                x_t[ni * feat..(ni + 1) * feat].copy_from_slice(&id[src..src + feat]);
            }
            // z = x W_ihᵀ + h_prev W_hhᵀ : [N, 4H], fused with β = 1.
            ops::gemm(false, true, n, 4 * h, feat, 1.0, x_t, w_ih, 0.0, z);
            ops::gemm(false, true, n, 4 * h, h, 1.0, &h_prev, w_hh, 1.0, z);
            for ni in 0..n {
                let zrow = &mut z[ni * 4 * h..(ni + 1) * 4 * h];
                for (zv, bv) in zrow.iter_mut().zip(bd.iter()) {
                    *zv += bv;
                }
                for hi in 0..h {
                    let i = Self::sigmoid(zrow[hi]);
                    let f = Self::sigmoid(zrow[h + hi]);
                    let g = zrow[2 * h + hi].tanh();
                    let o = Self::sigmoid(zrow[3 * h + hi]);
                    let c = f * c_prev[ni * h + hi] + i * g;
                    c_prev[ni * h + hi] = c;
                    h_prev[ni * h + hi] = o * c.tanh();
                }
                if self.return_sequences {
                    let dst = (ni * t + ti) * h;
                    hidden_seq[dst..dst + h].copy_from_slice(&h_prev[ni * h..(ni + 1) * h]);
                }
            }
        }
        if self.return_sequences {
            Ok(Tensor::from_vec(hidden_seq, &[n, t, h])?)
        } else {
            Ok(Tensor::from_vec(h_prev, &[n, h])?)
        }
    }
}

impl Layer for Lstm {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let d = input.dims();
        if d.len() != 3 || d[2] != self.input_size {
            return Err(NnError::Config(format!(
                "Lstm expects [N, T, {}], got {d:?}",
                self.input_size
            )));
        }
        if !mode.is_train() {
            // No backward pass will follow; drop any stale training cache and
            // take the allocation-free path.
            self.cache = None;
            return self.forward_eval(input);
        }
        let (n, t, feat) = (d[0], d[1], d[2]);
        let h = self.hidden_size;
        let mut h_prev = Tensor::zeros(&[n, h]);
        let mut c_prev = Tensor::zeros(&[n, h]);
        let mut caches = Vec::with_capacity(t);
        let mut hidden_seq = Vec::with_capacity(t);

        let id = input.data();
        for ti in 0..t {
            // Slice x_t: [N, F]
            let mut x_t = vec![0.0f32; n * feat];
            for ni in 0..n {
                let src = (ni * t + ti) * feat;
                x_t[ni * feat..(ni + 1) * feat].copy_from_slice(&id[src..src + feat]);
            }
            let x_t = Tensor::from_vec(x_t, &[n, feat])?;
            // z = x W_ihᵀ + h_prev W_hhᵀ + b : [N, 4H], recurrent term fused
            // into the same buffer with β = 1.
            let mut z = ops::matmul_a_bt(&x_t, &self.w_ih.value)?;
            ops::gemm_into(false, true, 1.0, &h_prev, &self.w_hh.value, 1.0, &mut z)?;
            {
                let zd = z.data_mut();
                let bd = self.bias.value.data();
                for ni in 0..n {
                    for j in 0..4 * h {
                        zd[ni * 4 * h + j] += bd[j];
                    }
                }
            }
            let (i, f, g, o) = self.split_gates(&z, n);
            // c = f*c_prev + i*g ; h = o * tanh(c)
            let c = f.mul(&c_prev)?.add(&i.mul(&g)?)?;
            let tanh_c = c.map(f32::tanh);
            let h_t = o.mul(&tanh_c)?;
            caches.push(StepCache {
                x: x_t,
                h_prev: h_prev.clone(),
                c_prev: c_prev.clone(),
                i,
                f,
                g,
                o,
                tanh_c,
            });
            hidden_seq.push(h_t.clone());
            h_prev = h_t;
            c_prev = c;
        }
        self.cache = Some(caches);

        if self.return_sequences {
            // Assemble [N, T, H].
            let mut out = vec![0.0f32; n * t * h];
            for (ti, h_t) in hidden_seq.iter().enumerate() {
                let hd = h_t.data();
                for ni in 0..n {
                    let dst = (ni * t + ti) * h;
                    out[dst..dst + h].copy_from_slice(&hd[ni * h..(ni + 1) * h]);
                }
            }
            Ok(Tensor::from_vec(out, &[n, t, h])?)
        } else {
            Ok(h_prev)
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let caches = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Lstm"))?;
        let t = caches.len();
        if t == 0 {
            return Err(NnError::Config("Lstm backward on empty sequence".into()));
        }
        let n = caches[0].x.dims()[0];
        let feat = self.input_size;
        let h = self.hidden_size;

        // Per-timestep external gradient on h_t.
        let grad_h_ext = |ti: usize| -> Result<Tensor> {
            if self.return_sequences {
                let gd = grad_output.data();
                let mut g = vec![0.0f32; n * h];
                for ni in 0..n {
                    let src = (ni * t + ti) * h;
                    g[ni * h..(ni + 1) * h].copy_from_slice(&gd[src..src + h]);
                }
                Ok(Tensor::from_vec(g, &[n, h])?)
            } else if ti == t - 1 {
                Ok(grad_output.clone())
            } else {
                Ok(Tensor::zeros(&[n, h]))
            }
        };

        let mut grad_input = Tensor::zeros(&[n, t, feat]);
        let mut dh_next = Tensor::zeros(&[n, h]);
        let mut dc_next = Tensor::zeros(&[n, h]);

        for ti in (0..t).rev() {
            let cache = &caches[ti];
            let mut dh = grad_h_ext(ti)?;
            dh.add_assign(&dh_next)?;

            // dо = dh * tanh(c); dc = dc_next + dh * o * (1 - tanh²(c))
            let do_ = dh.mul(&cache.tanh_c)?;
            let one_minus_tanh2 = cache.tanh_c.map(|v| 1.0 - v * v);
            let mut dc = dh.mul(&cache.o)?.mul(&one_minus_tanh2)?;
            dc.add_assign(&dc_next)?;

            let di = dc.mul(&cache.g)?;
            let dg = dc.mul(&cache.i)?;
            let df = dc.mul(&cache.c_prev)?;
            dc_next = dc.mul(&cache.f)?;

            // Gate pre-activation gradients.
            let dzi = di.zip_map(&cache.i, |d, a| d * a * (1.0 - a))?;
            let dzf = df.zip_map(&cache.f, |d, a| d * a * (1.0 - a))?;
            let dzg = dg.zip_map(&cache.g, |d, a| d * (1.0 - a * a))?;
            let dzo = do_.zip_map(&cache.o, |d, a| d * a * (1.0 - a))?;

            // Pack dz: [N, 4H]
            let mut dz = vec![0.0f32; n * 4 * h];
            for ni in 0..n {
                for hi in 0..h {
                    dz[ni * 4 * h + hi] = dzi.data()[ni * h + hi];
                    dz[ni * 4 * h + h + hi] = dzf.data()[ni * h + hi];
                    dz[ni * 4 * h + 2 * h + hi] = dzg.data()[ni * h + hi];
                    dz[ni * 4 * h + 3 * h + hi] = dzo.data()[ni * h + hi];
                }
            }
            let dz = Tensor::from_vec(dz, &[n, 4 * h])?;

            // Parameter gradients, accumulated in place with β = 1.
            ops::gemm_into(true, false, 1.0, &dz, &cache.x, 1.0, &mut self.w_ih.grad)?;
            ops::gemm_into(
                true,
                false,
                1.0,
                &dz,
                &cache.h_prev,
                1.0,
                &mut self.w_hh.grad,
            )?;
            self.bias.grad.add_assign(&ops::sum_axis(&dz, 0)?)?;

            // Input and recurrent gradients.
            let dx = ops::matmul(&dz, &self.w_ih.value)?;
            dh_next = ops::matmul(&dz, &self.w_hh.value)?;

            // Scatter dx into grad_input[:, ti, :].
            let gid = grad_input.data_mut();
            let dxd = dx.data();
            for ni in 0..n {
                let dst = (ni * t + ti) * feat;
                for fi in 0..feat {
                    gid[dst + fi] += dxd[ni * feat + fi];
                }
            }
        }
        Ok(grad_input)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.w_ih);
        visitor(&mut self.w_hh);
        visitor(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Lstm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut rng = Rng::seed_from(1);
        let mut lstm = Lstm::new(3, 5, false, &mut rng);
        let x = Tensor::randn(&[4, 7, 3], 0.0, 1.0, &mut rng);
        let y = lstm.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[4, 5]);

        let mut lstm_seq = Lstm::new(3, 5, true, &mut rng);
        let y = lstm_seq.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[4, 7, 5]);
        assert!(lstm_seq.returns_sequences());
        assert_eq!(lstm_seq.hidden_size(), 5);
    }

    #[test]
    fn rejects_bad_input() {
        let mut rng = Rng::seed_from(2);
        let mut lstm = Lstm::new(3, 4, false, &mut rng);
        assert!(lstm
            .forward(&Tensor::zeros(&[4, 7, 2]), Mode::Train)
            .is_err());
        assert!(lstm.forward(&Tensor::zeros(&[4, 7]), Mode::Train).is_err());
        assert!(lstm.backward(&Tensor::zeros(&[4, 4])).is_err());
    }

    #[test]
    fn hidden_values_are_bounded() {
        let mut rng = Rng::seed_from(3);
        let mut lstm = Lstm::new(2, 6, true, &mut rng);
        let x = Tensor::randn(&[2, 10, 2], 0.0, 5.0, &mut rng);
        let y = lstm.forward(&x, Mode::Train).unwrap();
        // h = o * tanh(c) with o in (0,1) so |h| < 1.
        assert!(y.max() <= 1.0 && y.min() >= -1.0);
        assert!(!y.has_non_finite());
    }

    #[test]
    fn input_gradient_matches_numerical_last_hidden() {
        let mut rng = Rng::seed_from(4);
        let mut lstm = Lstm::new(2, 3, false, &mut rng);
        let x = Tensor::randn(&[1, 4, 2], 0.0, 1.0, &mut rng);
        let y = lstm.forward(&x, Mode::Train).unwrap();
        let grad_in = lstm.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(grad_in.dims(), x.dims());

        let eps = 1e-2f32;
        for idx in [0usize, 3, 5, 7] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = lstm.forward(&xp, Mode::Train).unwrap().sum();
            let lm = lstm.forward(&xm, Mode::Train).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad_in.data()[idx]).abs() < 2e-2,
                "lstm input grad mismatch at {idx}: num {num} ana {}",
                grad_in.data()[idx]
            );
        }
    }

    #[test]
    fn input_gradient_matches_numerical_sequences() {
        let mut rng = Rng::seed_from(5);
        let mut lstm = Lstm::new(2, 3, true, &mut rng);
        let x = Tensor::randn(&[1, 3, 2], 0.0, 1.0, &mut rng);
        let y = lstm.forward(&x, Mode::Train).unwrap();
        let grad_in = lstm.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-2f32;
        for idx in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = lstm.forward(&xp, Mode::Train).unwrap().sum();
            let lm = lstm.forward(&xm, Mode::Train).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad_in.data()[idx]).abs() < 2e-2,
                "lstm seq input grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn weight_gradient_matches_numerical() {
        let mut rng = Rng::seed_from(6);
        let mut lstm = Lstm::new(2, 2, false, &mut rng);
        let x = Tensor::randn(&[2, 3, 2], 0.0, 1.0, &mut rng);
        let y = lstm.forward(&x, Mode::Train).unwrap();
        lstm.backward(&Tensor::ones(y.dims())).unwrap();
        let analytic = lstm.w_ih.grad.clone();
        let eps = 1e-2f32;
        for idx in [0usize, 5, 11] {
            let orig = lstm.w_ih.value.data()[idx];
            lstm.w_ih.value.data_mut()[idx] = orig + eps;
            let lp = lstm.forward(&x, Mode::Train).unwrap().sum();
            lstm.w_ih.value.data_mut()[idx] = orig - eps;
            let lm = lstm.forward(&x, Mode::Train).unwrap().sum();
            lstm.w_ih.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - analytic.data()[idx]).abs() < 2e-2,
                "lstm w_ih grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn param_count() {
        let mut rng = Rng::seed_from(7);
        let mut lstm = Lstm::new(3, 4, false, &mut rng);
        assert_eq!(lstm.param_count(), 4 * 4 * 3 + 4 * 4 * 4 + 4 * 4);
    }

    #[test]
    fn eval_fast_path_matches_train_forward() {
        let mut rng = Rng::seed_from(8);
        for &return_sequences in &[false, true] {
            let mut lstm = Lstm::new(3, 5, return_sequences, &mut rng);
            let x = Tensor::randn(&[4, 6, 3], 0.0, 1.0, &mut rng);
            let train = lstm.forward(&x, Mode::Train).unwrap();
            let eval = lstm.forward(&x, Mode::Eval).unwrap();
            assert!(
                eval.approx_eq(&train, 1e-6),
                "eval path must match train math (seq={return_sequences})"
            );
            // Repeated eval forwards reuse the scratch buffers.
            let warm = lstm.scratch.capacity();
            for _ in 0..3 {
                lstm.forward(&x, Mode::Eval).unwrap();
            }
            assert_eq!(lstm.scratch.capacity(), warm);
            // The eval pass dropped the training cache: backward must refuse.
            assert!(lstm.backward(&Tensor::ones(train.dims())).is_err());
        }
    }
}
