//! Loss functions.
//!
//! Each loss returns a [`LossOutput`] containing the scalar loss value and
//! the gradient w.r.t. the predictions, ready to feed into a network's
//! `backward`. All losses average over the batch so learning rates are
//! batch-size independent.

use crate::error::NnError;
use crate::Result;
use invnorm_tensor::{ops, Tensor};

/// Loss value together with the gradient of the loss w.r.t. the predictions.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient w.r.t. the predictions (same shape as the predictions).
    pub grad: Tensor,
}

/// Softmax cross-entropy for classification.
///
/// `logits` is `[N, C]`, `targets` contains `N` class indices.
///
/// # Errors
///
/// Returns an error when the logits are not rank-2, the target count does not
/// match the batch, or a target index is out of range.
///
/// # Example
///
/// ```
/// use invnorm_nn::loss::cross_entropy;
/// use invnorm_tensor::Tensor;
///
/// # fn main() -> Result<(), invnorm_nn::NnError> {
/// let logits = Tensor::from_vec(vec![5.0, -5.0, -5.0, 5.0], &[2, 2])?;
/// let out = cross_entropy(&logits, &[0, 1])?;
/// assert!(out.loss < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> Result<LossOutput> {
    let (n, c) = ops::as_matrix_dims(logits)?;
    if targets.len() != n {
        return Err(NnError::TargetMismatch {
            predictions: n,
            targets: targets.len(),
        });
    }
    if let Some(&bad) = targets.iter().find(|&&t| t >= c) {
        return Err(NnError::Config(format!(
            "target class {bad} out of range for {c} classes"
        )));
    }
    let log_probs = ops::log_softmax_rows(logits)?;
    let probs = log_probs.map(f32::exp);
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let gd = grad.data_mut();
    for (i, &t) in targets.iter().enumerate() {
        loss -= log_probs.data()[i * c + t];
        gd[i * c + t] -= 1.0;
    }
    let scale = 1.0 / n as f32;
    Ok(LossOutput {
        loss: loss * scale,
        grad: grad.scale(scale),
    })
}

/// Mean squared error for regression.
///
/// `predictions` and `targets` must have identical shapes.
///
/// # Errors
///
/// Returns an error when the shapes differ.
pub fn mse(predictions: &Tensor, targets: &Tensor) -> Result<LossOutput> {
    if predictions.dims() != targets.dims() {
        return Err(NnError::TargetMismatch {
            predictions: predictions.numel(),
            targets: targets.numel(),
        });
    }
    let n = predictions.numel().max(1) as f32;
    let diff = predictions.sub(targets)?;
    let loss = diff.sq_norm() / n;
    let grad = diff.scale(2.0 / n);
    Ok(LossOutput { loss, grad })
}

/// Binary cross-entropy on logits, used for per-pixel segmentation.
///
/// `logits` and `targets` (0/1 masks) must have identical shapes.
///
/// # Errors
///
/// Returns an error when the shapes differ.
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor) -> Result<LossOutput> {
    if logits.dims() != targets.dims() {
        return Err(NnError::TargetMismatch {
            predictions: logits.numel(),
            targets: targets.numel(),
        });
    }
    let n = logits.numel().max(1) as f32;
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(logits.dims());
    let gd = grad.data_mut();
    for (i, (&z, &t)) in logits.data().iter().zip(targets.data().iter()).enumerate() {
        // Numerically stable: max(z,0) - z*t + log(1 + exp(-|z|))
        loss += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        let p = 1.0 / (1.0 + (-z).exp());
        gd[i] = (p - t) / n;
    }
    Ok(LossOutput {
        loss: loss / n,
        grad,
    })
}

/// Negative log-likelihood of already-averaged class probabilities
/// (`[N, C]`, rows summing to one) against integer targets. This is the
/// uncertainty metric the paper reports for Bayesian inference (lower is
/// better in-distribution, higher signals out-of-distribution inputs).
///
/// # Errors
///
/// Returns an error when shapes/targets are inconsistent.
pub fn nll_from_probs(probs: &Tensor, targets: &[usize]) -> Result<f32> {
    let (n, c) = ops::as_matrix_dims(probs)?;
    if targets.len() != n {
        return Err(NnError::TargetMismatch {
            predictions: n,
            targets: targets.len(),
        });
    }
    let mut nll = 0.0f32;
    for (i, &t) in targets.iter().enumerate() {
        if t >= c {
            return Err(NnError::Config(format!(
                "target class {t} out of range for {c} classes"
            )));
        }
        nll -= probs.data()[i * c + t].max(1e-12).ln();
    }
    Ok(nll / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_tensor::Rng;

    #[test]
    fn cross_entropy_perfect_and_uniform() {
        let confident = Tensor::from_vec(vec![20.0, -20.0, -20.0, 20.0], &[2, 2]).unwrap();
        let out = cross_entropy(&confident, &[0, 1]).unwrap();
        assert!(out.loss < 1e-6);

        let uniform = Tensor::zeros(&[3, 4]);
        let out = cross_entropy(&uniform, &[0, 1, 2]).unwrap();
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_matches_numerical() {
        let mut rng = Rng::seed_from(1);
        let logits = Tensor::randn(&[3, 5], 0.0, 1.0, &mut rng);
        let targets = [1usize, 4, 0];
        let out = cross_entropy(&logits, &targets).unwrap();
        let eps = 1e-3f32;
        for idx in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let num = (cross_entropy(&lp, &targets).unwrap().loss
                - cross_entropy(&lm, &targets).unwrap().loss)
                / (2.0 * eps);
            assert!(
                (num - out.grad.data()[idx]).abs() < 1e-3,
                "cross-entropy grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn cross_entropy_validation() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 3]).is_err());
        assert!(cross_entropy(&Tensor::zeros(&[6]), &[0]).is_err());
    }

    #[test]
    fn mse_value_and_gradient() {
        let pred = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let target = Tensor::from_vec(vec![1.0, 0.0, 6.0], &[3]).unwrap();
        let out = mse(&pred, &target).unwrap();
        assert!((out.loss - (0.0 + 4.0 + 9.0) / 3.0).abs() < 1e-6);
        assert!(out.grad.approx_eq(
            &Tensor::from_vec(vec![0.0, 4.0 / 3.0, -2.0], &[3]).unwrap(),
            1e-6
        ));
        assert!(mse(&pred, &Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn bce_with_logits_matches_reference() {
        let logits = Tensor::from_vec(vec![0.0, 10.0, -10.0, 2.0], &[4]).unwrap();
        let targets = Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0], &[4]).unwrap();
        let out = bce_with_logits(&logits, &targets).unwrap();
        // Reference values: ln2, ~0, ~0, softplus(-2)
        let expected = ((2.0f32).ln() + 0.0000454 + 0.0000454 + 0.126928) / 4.0;
        assert!((out.loss - expected).abs() < 1e-3);
        // Gradient sign: positive where prediction > target.
        assert!(out.grad.data()[0] > 0.0);
        assert!(out.grad.data()[1].abs() < 1e-4);
    }

    #[test]
    fn bce_gradient_matches_numerical() {
        let mut rng = Rng::seed_from(2);
        let logits = Tensor::randn(&[8], 0.0, 2.0, &mut rng);
        let targets = Tensor::from_vec((0..8).map(|i| (i % 2) as f32).collect(), &[8]).unwrap();
        let out = bce_with_logits(&logits, &targets).unwrap();
        let eps = 1e-3f32;
        for idx in 0..8 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let num = (bce_with_logits(&lp, &targets).unwrap().loss
                - bce_with_logits(&lm, &targets).unwrap().loss)
                / (2.0 * eps);
            assert!((num - out.grad.data()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn nll_from_probs_behaviour() {
        let confident = Tensor::from_vec(vec![0.99, 0.01, 0.01, 0.99], &[2, 2]).unwrap();
        let nll_good = nll_from_probs(&confident, &[0, 1]).unwrap();
        let nll_bad = nll_from_probs(&confident, &[1, 0]).unwrap();
        assert!(nll_good < 0.05);
        assert!(nll_bad > 2.0);
        assert!(nll_from_probs(&confident, &[0]).is_err());
        assert!(nll_from_probs(&confident, &[0, 2]).is_err());
        // Zero probability does not produce infinity.
        let zero = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]).unwrap();
        assert!(nll_from_probs(&zero, &[0]).unwrap().is_finite());
    }
}
