//! Compiled inference plans: one-shot shape inference, arena-backed buffers
//! and cached packed-weight panels.
//!
//! The Monte-Carlo evaluation protocol re-executes the same network
//! thousands of times with only sparse weight perturbations between runs,
//! yet the direct execution path re-derives shapes, re-allocates scratch and
//! re-packs every weight panel on every forward pass. A [`Plan`] removes all
//! of that per-run work, in the style of graph-compiled runtimes:
//!
//! 1. **Compile once** ([`Plan::compile`]): the model is walked once for a
//!    concrete input shape. Every layer records its input/output shapes,
//!    reserves its activation and scratch buffers from a shared bump
//!    [`Arena`] (one allocation per element type), and packs its weight
//!    matrix into a cached panel ([`invnorm_tensor::gemm::PackedB`] /
//!    [`invnorm_tensor::qgemm::QPackedB`]).
//! 2. **Run many** ([`Plan::forward`]): steady-state forwards perform zero
//!    heap allocations and zero weight packing. Fault injectors perturb each
//!    layer's plan-owned *faulty* weight buffer (the clean parameters are
//!    never touched — no snapshot/restore) and report which weight rows they
//!    dirtied; only the packed panels covering dirty rows are re-packed
//!    before the next forward.
//!
//! The planned forward is **bit-identical** to the direct eval path: the
//! same kernels run in the same blocking order over the same packed values,
//! so `MonteCarloEngine::run_planned` reproduces `run`/`run_parallel`
//! metrics exactly (tested for all eight fault models).
//!
//! Layers participate through the plan protocol on [`Layer`]
//! ([`Layer::plan_compile`], [`Layer::plan_forward`],
//! [`Layer::visit_plan_params`], [`Layer::visit_plan_codes`],
//! [`Layer::plan_end`]). Layers without fault-targetable state get a default
//! *fallback* implementation that routes through their ordinary `forward`
//! (correct, but allocating); layers with rank ≥ 2 weights or quantization
//! codes must implement the protocol or are rejected with
//! [`NnError::Unsupported`] at compile time — a loud failure instead of
//! silently evaluating clean weights.

use crate::error::NnError;
use crate::layer::{Layer, Mode};
use crate::Result;
use invnorm_tensor::gemm::PackedB;
use invnorm_tensor::qgemm::QPackedB;
use invnorm_tensor::telemetry;
use invnorm_tensor::{Arena, ArenaSlot, DirtyRows, Tensor};
use serde::{Deserialize, Serialize};

/// When a fault realization is drawn relative to the inference stream — the
/// **lifetime** axis of a fault specification.
///
/// `Static` faults are programming-time defects: one realization per chip
/// instance, persisting across every forward pass of that instance. To honor
/// `PerInference` faults — transient read noise, re-drawn before every
/// forward pass — the caller re-realizes before each [`Plan::forward`], and
/// the plan must not reuse realization-coupled state between passes. A
/// [`Plan`] models the lifetime explicitly ([`Plan::set_fault_lifetime`]):
/// under `PerInference` it stops asserting the frozen-input property, so
/// first-layer caches keyed on a run-invariant input edge (packed activation
/// panels, the fused wide-GEMM path) are bypassed and every pass re-derives
/// its input-side operands. The frozen and non-frozen execution paths are
/// bit-identical for the same realization (the caching is a pure
/// optimization), so the lifetime controls *when noise is drawn*, never the
/// arithmetic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultLifetime {
    /// Drawn once per chip instance; the realization persists across every
    /// forward pass of that instance's run.
    #[default]
    Static,
    /// Re-drawn before every forward pass (transient read noise).
    PerInference,
}

/// The per-plan buffer arenas, one per element type so f32 activations, i8
/// quantization codes and i32 accumulators each live in a single allocation.
#[derive(Debug)]
pub struct PlanArenas {
    /// f32 activations, im2col patch matrices and GEMM staging.
    pub f: Arena<f32>,
    /// i8 activation codes and code-domain patch matrices.
    pub q: Arena<i8>,
    /// i32 integer-GEMM accumulators.
    pub acc: Arena<i32>,
    /// Fault realizations fused per forward pass (see [`Plan::compile_batched`]).
    /// Weighted layers consult this during `plan_compile` to size their
    /// stacked faulty buffers and per-realization packed panels; `1` for
    /// ordinary plans.
    batch: usize,
}

impl Default for PlanArenas {
    fn default() -> Self {
        Self {
            f: Arena::new(),
            q: Arena::new(),
            acc: Arena::new(),
            batch: 1,
        }
    }
}

impl PlanArenas {
    /// Creates empty arenas in the build phase.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fault realizations fused per forward pass (1 for ordinary plans).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Seals all three arenas (performs the backing allocations).
    pub fn seal(&mut self) {
        self.f.seal();
        self.q.seal();
        self.acc.seal();
    }

    /// Reserves a fresh f32 edge with the same dims as `shape` (the common
    /// case for shape-preserving layers).
    pub fn reserve_like(&mut self, shape: &PlanShape) -> PlanShape {
        PlanShape {
            slot: self.f.reserve(shape.numel()),
            dims: shape.dims.clone(),
        }
    }
}

/// The location and logical shape of one activation edge of a compiled plan:
/// an f32 arena slot plus its tensor dims.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanShape {
    /// The f32 arena slot holding the activation.
    pub slot: ArenaSlot,
    /// Logical tensor dims of the activation.
    pub dims: Vec<usize>,
}

impl PlanShape {
    /// Total element count.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }
}

/// Per-forward execution context threaded through [`Layer::plan_forward`].
#[derive(Debug, Clone, Copy)]
pub struct PlanCtx {
    /// Generation counter of the plan's input buffer; bumped by
    /// [`Plan::load_input`]. Layers seeing a frozen input cache packed
    /// activation panels keyed by this generation.
    pub input_gen: u64,
    /// Whether this layer's input is the plan input itself (constant across
    /// Monte-Carlo runs), making input-derived caches (packed activation
    /// panels, unfolded patches, quantized codes) valid until the next
    /// [`Plan::load_input`].
    pub frozen: bool,
}

impl PlanCtx {
    /// Context for a child layer; only the first child of a chain keeps the
    /// frozen-input property.
    pub fn child(self, first: bool) -> PlanCtx {
        PlanCtx {
            frozen: self.frozen && first,
            ..self
        }
    }
}

/// One fault-targetable (rank ≥ 2) parameter's plan-owned state, handed to
/// [`Layer::visit_plan_params`] visitors: the clean value, the faulty buffer
/// the next forward will consume, and the dirty-row set driving panel
/// re-packing.
///
/// For a **batched** plan ([`Plan::compile_batched`]) the faulty buffer
/// stacks `batch` realizations (`faulty[b·numel..(b+1)·numel]` is
/// realization `b`) and `dirty` tracks `batch · rows` rows, realization `b`
/// owning rows `[b·rows, (b+1)·rows)`.
#[derive(Debug)]
pub struct PlanParamView<'a> {
    /// Index of this parameter in [`Layer::visit_params`] order — the fault
    /// injector's RNG fork index, exactly as in the sequential engine.
    pub index: usize,
    /// The clean parameter value (never touched by planned injection).
    pub clean: &'a Tensor,
    /// The faulty weight buffer the plan's packed panels are refreshed from
    /// (stacked per realization for batched plans).
    pub faulty: &'a mut [f32],
    /// Rows (leading-dimension indices) the injector perturbed; the plan
    /// re-packs only the panels covering these rows.
    pub dirty: &'a mut DirtyRows,
    /// Uniform-scale fast path: an injector whose realization is exactly
    /// `clean · factor` for one constant factor (retention drift) sets this
    /// instead of writing `faulty` — the layer then scales its cached packed
    /// panels directly (bit-identical to re-packing scaled weights) and
    /// skips the realization entirely once the factor is already applied.
    /// Batched plans apply the factor to every realization's panel (drift
    /// draws no randomness, so all realizations share the factor).
    pub scale: &'a mut Option<f32>,
    /// Sparse packed-domain realization bookkeeping: injectors whose
    /// realization touches few cells (stuck-at) record the exact touched
    /// cells here, and the refresh writes those cells straight into the
    /// packed panels instead of re-packing every dirty row.
    pub cells: &'a mut SparseCells,
}

/// The code-domain analogue of [`PlanParamView`], handed to
/// [`Layer::visit_plan_codes`] visitors.
#[derive(Debug)]
pub struct PlanCodeView<'a> {
    /// Index of this parameter in [`Layer::visit_codes`] order (the fork
    /// index of the sequential code injector).
    pub index: usize,
    /// The clean codes (never touched by planned injection).
    pub clean: &'a [i8],
    /// Bit width of the quantized representation (≤ 8).
    pub bits: u8,
    /// Leading (output) dimension of one realization's code matrix — the
    /// row count structured tile topologies map crossbar lines onto.
    pub rows: usize,
    /// The faulty code buffer the packed panels are refreshed from.
    pub faulty: &'a mut [i8],
    /// Rows the injector perturbed.
    pub dirty: &'a mut DirtyRows,
    /// Sparse packed-domain realization bookkeeping (see
    /// [`PlanParamView::cells`]): injectors recording exact fired cells let
    /// the refresh scatter them through [`QPackedB::write_cell`] instead of
    /// re-packing whole dirty rows.
    pub cells: &'a mut SparseCells,
}

/// Exact-cell realization bookkeeping for sparse packed-domain injection.
///
/// Per realization, two cell lists are tracked against the clean weight:
/// the cells where the **faulty buffer** differs (written by the sparse
/// injector) and the cells where the **live packed panel** differs
/// (maintained by [`PlannedWeight`]'s refresh). While both lists are exact,
/// a refresh reverts the panel's previous cells and scatters the new ones
/// through `PackedB::write_cell` — O(cells) instead of re-packing every
/// dirty row's full k extent. A list overflowing its capacity (a dense
/// realization) degrades to "unknown", and the refresh falls back to the
/// row-granular re-pack; exactness is re-established by the next sparse
/// realization.
#[derive(Debug)]
pub struct SparseCells {
    faulty: Vec<CellList>,
    panel: Vec<CellList>,
    pending: Vec<bool>,
    cap: usize,
}

#[derive(Debug, Clone)]
struct CellList {
    idx: Vec<u32>,
    exact: bool,
}

impl CellList {
    fn set_unknown(&mut self) {
        self.idx.clear();
        self.exact = false;
    }

    fn set_empty_exact(&mut self) {
        self.idx.clear();
        self.exact = true;
    }
}

impl SparseCells {
    fn new(batch: usize, numel: usize) -> Self {
        // Cap the exact lists at numel/8 cells: beyond that the row-granular
        // re-pack is competitive anyway, and capacity is reserved up front so
        // steady-state realizations never allocate.
        let cap = (numel / 8).max(64).min(numel.max(1));
        let list = || CellList {
            idx: Vec::with_capacity(cap),
            exact: false,
        };
        Self {
            faulty: (0..batch).map(|_| list()).collect(),
            panel: (0..batch).map(|_| list()).collect(),
            pending: vec![false; batch],
            cap,
        }
    }

    /// Number of realizations tracked.
    pub fn batch(&self) -> usize {
        self.pending.len()
    }

    /// Exact-cell capacity per realization.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The exact faulty-vs-clean cell list of realization `b`, when known.
    pub fn faulty_cells(&self, b: usize) -> Option<&[u32]> {
        self.faulty[b].exact.then(|| self.faulty[b].idx.as_slice())
    }

    /// Begins a fresh exact recording of realization `b`'s faulty cells
    /// (the caller has just reverted the faulty buffer to clean).
    pub fn reset_faulty(&mut self, b: usize) {
        self.faulty[b].set_empty_exact();
    }

    /// Records that the sparse injector wrote cell `idx` of realization `b`;
    /// on overflow the list degrades to unknown (dense fallback).
    pub fn push_faulty(&mut self, b: usize, idx: usize) {
        let list = &mut self.faulty[b];
        if !list.exact {
            return;
        }
        if list.idx.len() == self.cap {
            list.set_unknown();
        } else {
            list.idx.push(idx as u32);
        }
    }

    /// Declares realization `b`'s faulty buffer densely rewritten (the exact
    /// cell list no longer describes it).
    pub fn invalidate_faulty(&mut self, b: usize) {
        self.faulty[b].set_unknown();
    }

    /// Marks realization `b` as written by the sparse injector since the
    /// last refresh, which is what entitles the refresh to trust the lists.
    pub fn mark_pending(&mut self, b: usize) {
        self.pending[b] = true;
    }
}

/// Cached packed f32 weight operand with per-realization bookkeeping — the
/// shared plan state of the dense layers (`Linear`, `Conv2d`).
///
/// An ordinary plan tracks one realization; a **batched** plan
/// ([`Plan::compile_batched`]) stacks `batch` of them: the faulty buffer
/// holds `batch` copies of the weight, the dirty/stale sets track
/// `batch · rows` rows, and each realization owns its own cached packed
/// panel, so B fused forward passes share one clean reference pack.
///
/// Four realization regimes are tracked per panel:
///
/// * **Sparse rows** ([`PlanParamView::dirty`]): the injector rewrote the
///   realization's faulty slice and marked the touched rows; only panels
///   covering the union of those rows and the previous realization's rows
///   are re-packed.
/// * **Sparse cells** ([`PlanParamView::cells`]): the injector recorded the
///   exact touched cells; they are written straight into the packed panel
///   (packed-domain injection, O(cells)).
/// * **Uniform scale** ([`PlanParamView::scale`]): the realization is
///   `clean · factor` (retention drift); every packed panel is scaled from
///   the clean operand directly — and skipped entirely when the factor is
///   already applied.
/// * **Clean**: nothing marked; the packed operands are already exact.
#[derive(Debug)]
pub struct PlannedWeight {
    packed_clean: PackedB,
    panels: Vec<PackedB>,
    clean: Vec<f32>,
    /// The stacked faulty weight buffer sparse realizations write
    /// (`batch × numel`).
    pub faulty: Vec<f32>,
    /// Rows the current realization batch touched (`batch · rows` rows).
    pub dirty: DirtyRows,
    /// Rows where the panels still differ from the clean operand (from the
    /// previous realization batch).
    stale: DirtyRows,
    /// Pending uniform-scale request for the next refresh.
    pub scale_req: Option<f32>,
    applied_scale: Option<f32>,
    cells: SparseCells,
    batch: usize,
    rows: usize,
    cols: usize,
    /// Wide representation: ONE packed operand over the whole stacked
    /// `[batch · rows, cols]` faulty matrix, used by frozen layers to drive
    /// a single `[N, batch · rows]` wide GEMM per forward (full microkernel
    /// width, the cached activation panel streamed once). Materialized
    /// lazily on first use — a layer consistently uses either the wide or
    /// the per-realization representation, never both.
    wide: PackedB,
    wide_clean: PackedB,
    wide_stale: DirtyRows,
    wide_applied: Option<f32>,
}

impl PlannedWeight {
    /// Packs the clean `[n, k]` (row-major, `trans_b`) weight matrix for a
    /// single-realization plan.
    pub fn pack(weight: &[f32], k: usize, n: usize) -> Self {
        Self::pack_batched(weight, k, n, 1)
    }

    /// Packs the clean `[n, k]` weight matrix once as the immutable clean
    /// reference and stages the stacked faulty buffer with `batch` clean
    /// copies. The live packed operands (per-realization panels or the wide
    /// stacked operand) are materialized lazily on first refresh.
    pub fn pack_batched(weight: &[f32], k: usize, n: usize, batch: usize) -> Self {
        let batch = batch.max(1);
        let mut packed_clean = PackedB::new();
        packed_clean.pack(true, weight, k, n);
        let mut faulty = Vec::with_capacity(batch * weight.len());
        for _ in 0..batch {
            faulty.extend_from_slice(weight);
        }
        Self {
            packed_clean,
            panels: Vec::new(),
            clean: weight.to_vec(),
            faulty,
            dirty: DirtyRows::new(batch * n),
            stale: DirtyRows::new(batch * n),
            scale_req: None,
            applied_scale: None,
            cells: SparseCells::new(batch, weight.len()),
            batch,
            rows: n,
            cols: k,
            wide: PackedB::new(),
            wide_clean: PackedB::new(),
            wide_stale: DirtyRows::new(batch * n),
            wide_applied: None,
        }
    }

    /// Number of stacked realizations.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Realization `b`'s live packed operand (call
    /// [`PlannedWeight::refresh_all`] first).
    pub fn panel(&self, b: usize) -> &PackedB {
        &self.panels[b]
    }

    /// Single-realization convenience: refreshes and returns panel 0.
    pub fn refresh(&mut self) -> &PackedB {
        self.refresh_all();
        &self.panels[0]
    }

    /// Brings the **wide stacked operand** (`[batch · rows, cols]`, one
    /// panel over every realization) up to date with the realization the
    /// injector recorded and returns it ready for the fused `[N, B·out]`
    /// GEMM. The stacked faulty buffer *is* the wide source matrix, so the
    /// dirty-row, uniform-scale and sparse-cell bookkeeping apply
    /// unchanged, with realization `b` owning rows `[b·rows, (b+1)·rows)`.
    /// Allocation-free once materialized.
    pub fn refresh_wide(&mut self) -> &PackedB {
        let nw = self.batch * self.rows;
        let numel = self.rows * self.cols;
        if self.wide_clean.n() != nw {
            // Lazy materialization (first forward of a frozen layer): pack
            // the tiled clean stack once.
            let mut tiled = Vec::with_capacity(self.batch * numel);
            for _ in 0..self.batch {
                tiled.extend_from_slice(&self.clean);
            }
            self.wide_clean.pack(true, &tiled, self.cols, nw);
            self.wide = self.wide_clean.clone();
        }
        if let Some(factor) = self.scale_req.take() {
            if self.wide_applied != Some(factor) || self.dirty.any() {
                self.wide.scale_from(&self.wide_clean, factor);
                self.wide_applied = Some(factor);
                self.dirty.clear();
                self.wide_stale.clear();
                for b in 0..self.batch {
                    self.cells.panel[b].set_unknown();
                }
            }
            self.cells.pending.fill(false);
            return &self.wide;
        }
        if self.wide_applied.take().is_some() {
            self.wide.copy_from(&self.wide_clean);
            self.wide_stale.clear();
            for b in 0..self.batch {
                self.cells.panel[b].set_empty_exact();
            }
        }
        let all_sparse = (0..self.batch).all(|b| {
            self.cells.pending[b] && self.cells.panel[b].exact && self.cells.faulty[b].exact
        });
        if all_sparse {
            // Packed-domain cell update over the stacked operand: revert
            // every realization's previous cells, scatter the new ones.
            for b in 0..self.batch {
                let row0 = b * self.rows;
                let fb = &self.faulty[b * numel..][..numel];
                for &i in &self.cells.panel[b].idx {
                    let i = i as usize;
                    self.wide
                        .write_cell(row0 + i / self.cols, i % self.cols, self.clean[i]);
                }
                for &i in &self.cells.faulty[b].idx {
                    let i = i as usize;
                    self.wide
                        .write_cell(row0 + i / self.cols, i % self.cols, fb[i]);
                }
                let SparseCells { faulty, panel, .. } = &mut self.cells;
                panel[b].idx.clone_from(&faulty[b].idx);
                panel[b].exact = true;
            }
            std::mem::swap(&mut self.wide_stale, &mut self.dirty);
            self.dirty.clear();
        } else if self.dirty.any() || self.wide_stale.any() {
            self.wide_stale.merge(&self.dirty);
            self.wide.repack_rows(&self.faulty, &self.wide_stale, 0);
            std::mem::swap(&mut self.wide_stale, &mut self.dirty);
            self.dirty.clear();
            for b in 0..self.batch {
                if self.cells.pending[b] {
                    let SparseCells { faulty, panel, .. } = &mut self.cells;
                    panel[b].idx.clone_from(&faulty[b].idx);
                    panel[b].exact = faulty[b].exact;
                } else {
                    self.cells.panel[b].set_unknown();
                    self.cells.faulty[b].set_unknown();
                }
            }
        }
        self.cells.pending.fill(false);
        &self.wide
    }

    /// Brings every per-realization packed panel up to date with the
    /// realization the injector recorded (sparse cells, dirty rows, uniform
    /// scale, or nothing), ready for the per-realization GEMMs.
    /// Allocation-free once materialized.
    pub fn refresh_all(&mut self) {
        let numel = self.rows * self.cols;
        if self.panels.is_empty() {
            // Lazy materialization (first forward): every panel starts as
            // the clean operand; the bookkeeping below applies the pending
            // realization on top.
            self.panels = vec![self.packed_clean.clone(); self.batch];
        }
        if let Some(factor) = self.scale_req.take() {
            // Uniform-scale regime: `panel = packed_clean · factor`,
            // bit-identical to packing scaled weights. Skip when the exact
            // factor is already applied and nothing else touched the panels.
            if self.applied_scale != Some(factor) || self.dirty.any() {
                for (b, panel) in self.panels.iter_mut().enumerate() {
                    panel.scale_from(&self.packed_clean, factor);
                    self.cells.panel[b].set_unknown();
                }
                self.applied_scale = Some(factor);
                self.dirty.clear();
                self.stale.clear();
            }
            self.cells.pending.fill(false);
            return;
        }
        if self.applied_scale.take().is_some() {
            // Leaving the scaled regime: restore the clean panels, then
            // apply this realization's dirty rows/cells below.
            for (b, panel) in self.panels.iter_mut().enumerate() {
                panel.copy_from(&self.packed_clean);
                self.cells.panel[b].set_empty_exact();
            }
            self.stale.clear();
        }
        for b in 0..self.batch {
            let (lo, hi) = (b * self.rows, (b + 1) * self.rows);
            let faulty_b = &self.faulty[b * numel..][..numel];
            let panel = &mut self.panels[b];
            let pending = std::mem::replace(&mut self.cells.pending[b], false);
            if pending && self.cells.panel[b].exact && self.cells.faulty[b].exact {
                // Packed-domain cell update: revert the previous
                // realization's cells to clean, scatter this realization's
                // cells — O(cells), no row re-pack. Bit-identical to a
                // re-pack of the same faulty matrix.
                for &i in &self.cells.panel[b].idx {
                    let i = i as usize;
                    panel.write_cell(i / self.cols, i % self.cols, self.clean[i]);
                }
                for &i in &self.cells.faulty[b].idx {
                    let i = i as usize;
                    panel.write_cell(i / self.cols, i % self.cols, faulty_b[i]);
                }
                // The panel now equals the faulty buffer exactly.
                let (panel_list, faulty_list) = (&mut self.cells.panel[b], &self.cells.faulty[b]);
                panel_list.idx.clone_from(&faulty_list.idx);
                panel_list.exact = true;
                self.stale.copy_range(&self.dirty, lo, hi);
                self.dirty.clear_range(lo, hi);
            } else if self.dirty.any_in(lo, hi) || self.stale.any_in(lo, hi) {
                // Row-granular re-pack of the union of this realization's
                // dirty rows and the panel's stale rows.
                self.stale.merge_range(&self.dirty, lo, hi);
                panel.repack_rows(faulty_b, &self.stale, lo);
                self.stale.copy_range(&self.dirty, lo, hi);
                self.dirty.clear_range(lo, hi);
                if pending {
                    // Sparse injector wrote the buffer (panel list was
                    // merely unknown): panel == faulty now, adopt its list.
                    // `clone_from` reuses the reserved capacity, so even
                    // this recovery transition allocates nothing.
                    let SparseCells { faulty, panel, .. } = &mut self.cells;
                    panel[b].idx.clone_from(&faulty[b].idx);
                    panel[b].exact = faulty[b].exact;
                } else {
                    // A dense realization (or a caller writing `faulty`
                    // directly) — the exact lists no longer describe it.
                    self.cells.panel[b].set_unknown();
                    self.cells.faulty[b].set_unknown();
                }
            }
        }
    }

    /// The injector-facing view of this weight's plan state.
    pub fn view<'a>(&'a mut self, index: usize, clean: &'a Tensor) -> PlanParamView<'a> {
        PlanParamView {
            index,
            clean,
            faulty: &mut self.faulty,
            dirty: &mut self.dirty,
            scale: &mut self.scale_req,
            cells: &mut self.cells,
        }
    }
}

/// Cached packed i8 code operand with per-realization bookkeeping — the
/// quantized layers' counterpart of [`PlannedWeight`], likewise stacking
/// `batch` realizations for batched plans. There is no uniform-scale regime
/// in the code domain (drift rounds per code), so three regimes are tracked:
/// sparse dirty rows, exact sparse cells and clean, with the same
/// merge → repack → swap contract per realization range. The cell regime
/// scatters through [`QPackedB::write_cell`] — per-cell writes into the
/// quad-interleaved packing are unprofitable for i.i.d. scatter, but
/// structured line defects fire whole tile lines whose exact cell lists stay
/// far below the row-granular re-pack cost.
#[derive(Debug)]
pub struct PlannedCodes {
    packed_clean: QPackedB,
    panels: Vec<QPackedB>,
    clean: Vec<i8>,
    /// The stacked faulty code buffer realizations write (`batch × numel`).
    pub faulty: Vec<i8>,
    /// Rows the current realization batch touched (`batch · rows` rows).
    pub dirty: DirtyRows,
    /// Rows where the panels still differ from the clean operand.
    stale: DirtyRows,
    cells: SparseCells,
    batch: usize,
    rows: usize,
    /// Wide representation over the whole stacked `[batch · rows, k]` code
    /// matrix (see [`PlannedWeight`]); lazily materialized for frozen
    /// layers.
    wide: QPackedB,
    wide_stale: DirtyRows,
}

impl PlannedCodes {
    /// Packs the clean `[n, k]` (row-major, `trans_b`) code matrix for a
    /// single-realization plan.
    pub fn pack(codes: &[i8], k: usize, n: usize) -> Self {
        Self::pack_batched(codes, k, n, 1)
    }

    /// Packs the clean `[n, k]` code matrix once as the clean reference and
    /// stages the stacked faulty buffer; live panels are materialized
    /// lazily.
    pub fn pack_batched(codes: &[i8], k: usize, n: usize, batch: usize) -> Self {
        let batch = batch.max(1);
        let mut packed = QPackedB::new();
        packed.pack(true, codes, k, n);
        let mut faulty = Vec::with_capacity(batch * codes.len());
        for _ in 0..batch {
            faulty.extend_from_slice(codes);
        }
        Self {
            packed_clean: packed,
            panels: Vec::new(),
            clean: codes.to_vec(),
            faulty,
            dirty: DirtyRows::new(batch * n),
            stale: DirtyRows::new(batch * n),
            cells: SparseCells::new(batch, codes.len()),
            batch,
            rows: n,
            wide: QPackedB::new(),
            wide_stale: DirtyRows::new(batch * n),
        }
    }

    /// Number of stacked realizations.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Realization `b`'s live packed operand (call
    /// [`PlannedCodes::refresh_all`] first).
    pub fn panel(&self, b: usize) -> &QPackedB {
        &self.panels[b]
    }

    /// Single-realization convenience: refreshes and returns panel 0.
    pub fn refresh(&mut self) -> &QPackedB {
        self.refresh_all();
        &self.panels[0]
    }

    /// Brings the wide stacked operand up to date and returns it ready for
    /// the fused `[N, B·out]` integer GEMM (see
    /// [`PlannedWeight::refresh_wide`]; the code domain has no
    /// uniform-scale regime).
    pub fn refresh_wide(&mut self) -> &QPackedB {
        let nw = self.batch * self.rows;
        let k = self.clean.len().checked_div(self.rows).unwrap_or(0);
        let numel = self.clean.len();
        if self.wide.n() != nw {
            let mut tiled = Vec::with_capacity(self.batch * self.clean.len());
            for _ in 0..self.batch {
                tiled.extend_from_slice(&self.clean);
            }
            self.wide.pack(true, &tiled, k, nw);
        }
        let all_sparse = (0..self.batch).all(|b| {
            self.cells.pending[b] && self.cells.panel[b].exact && self.cells.faulty[b].exact
        });
        if all_sparse {
            // Packed-domain cell update over the stacked operand (see
            // [`PlannedWeight::refresh_wide`]): revert every realization's
            // previous cells, scatter the new ones.
            for b in 0..self.batch {
                let row0 = b * self.rows;
                let fb = &self.faulty[b * numel..][..numel];
                for &i in &self.cells.panel[b].idx {
                    let i = i as usize;
                    self.wide.write_cell(row0 + i / k, i % k, self.clean[i]);
                }
                for &i in &self.cells.faulty[b].idx {
                    let i = i as usize;
                    self.wide.write_cell(row0 + i / k, i % k, fb[i]);
                }
                let SparseCells { faulty, panel, .. } = &mut self.cells;
                panel[b].idx.clone_from(&faulty[b].idx);
                panel[b].exact = true;
            }
            std::mem::swap(&mut self.wide_stale, &mut self.dirty);
            self.dirty.clear();
        } else if self.dirty.any() || self.wide_stale.any() {
            self.wide_stale.merge(&self.dirty);
            self.wide.repack_rows(&self.faulty, &self.wide_stale, 0);
            std::mem::swap(&mut self.wide_stale, &mut self.dirty);
            self.dirty.clear();
            for b in 0..self.batch {
                if self.cells.pending[b] {
                    let SparseCells { faulty, panel, .. } = &mut self.cells;
                    panel[b].idx.clone_from(&faulty[b].idx);
                    panel[b].exact = faulty[b].exact;
                } else {
                    self.cells.panel[b].set_unknown();
                    self.cells.faulty[b].set_unknown();
                }
            }
        }
        self.cells.pending.fill(false);
        &self.wide
    }

    /// Brings every live packed panel up to date with the realization the
    /// injector recorded (see [`PlannedWeight::refresh_all`]).
    pub fn refresh_all(&mut self) {
        if self.panels.is_empty() {
            self.panels = vec![self.packed_clean.clone(); self.batch];
        }
        let numel = self.faulty.len() / self.batch;
        let k = numel.checked_div(self.rows).unwrap_or(0);
        for b in 0..self.batch {
            let (lo, hi) = (b * self.rows, (b + 1) * self.rows);
            let faulty_b = &self.faulty[b * numel..][..numel];
            let panel = &mut self.panels[b];
            let pending = std::mem::replace(&mut self.cells.pending[b], false);
            if pending && self.cells.panel[b].exact && self.cells.faulty[b].exact {
                // Packed-domain cell update (see
                // [`PlannedWeight::refresh_all`]): revert the previous
                // realization's cells to clean, scatter this realization's.
                for &i in &self.cells.panel[b].idx {
                    let i = i as usize;
                    panel.write_cell(i / k, i % k, self.clean[i]);
                }
                for &i in &self.cells.faulty[b].idx {
                    let i = i as usize;
                    panel.write_cell(i / k, i % k, faulty_b[i]);
                }
                let (panel_list, faulty_list) = (&mut self.cells.panel[b], &self.cells.faulty[b]);
                panel_list.idx.clone_from(&faulty_list.idx);
                panel_list.exact = true;
                self.stale.copy_range(&self.dirty, lo, hi);
                self.dirty.clear_range(lo, hi);
            } else if self.dirty.any_in(lo, hi) || self.stale.any_in(lo, hi) {
                self.stale.merge_range(&self.dirty, lo, hi);
                panel.repack_rows(faulty_b, &self.stale, lo);
                self.stale.copy_range(&self.dirty, lo, hi);
                self.dirty.clear_range(lo, hi);
                if pending {
                    let SparseCells { faulty, panel, .. } = &mut self.cells;
                    panel[b].idx.clone_from(&faulty[b].idx);
                    panel[b].exact = faulty[b].exact;
                } else {
                    self.cells.panel[b].set_unknown();
                    self.cells.faulty[b].set_unknown();
                }
            }
        }
    }

    /// The injector-facing view of this code operand's plan state.
    pub fn view<'a>(&'a mut self, index: usize, clean: &'a [i8], bits: u8) -> PlanCodeView<'a> {
        PlanCodeView {
            index,
            clean,
            bits,
            rows: self.rows,
            faulty: &mut self.faulty,
            dirty: &mut self.dirty,
            cells: &mut self.cells,
        }
    }
}

/// A compiled inference plan for one model and one input shape.
///
/// The plan owns the arenas and the input/output edges; per-layer state
/// (cached packed panels, faulty buffers, scratch slots) lives inside the
/// layers themselves, installed by [`Layer::plan_compile`] and released by
/// [`Layer::plan_end`].
#[derive(Debug)]
pub struct Plan {
    arenas: PlanArenas,
    input: PlanShape,
    output: PlanShape,
    out_tensor: Tensor,
    gen: u64,
    batch: usize,
    /// Per-realization input dims (`input.dims` with the leading dimension
    /// divided by `batch`) — the shape [`Plan::load_input`] accepts.
    per_dims: Vec<usize>,
    lifetime: FaultLifetime,
}

impl Plan {
    /// Compiles `model` for the shape of `example` and loads `example` as
    /// the plan input.
    ///
    /// # Errors
    ///
    /// Returns an error when a layer with fault-targetable state does not
    /// implement the plan protocol ([`NnError::Unsupported`]) or a shape is
    /// inconsistent.
    pub fn compile<M: Layer + ?Sized>(model: &mut M, example: &Tensor) -> Result<Self> {
        Self::compile_batched(model, example, 1)
    }

    /// Compiles `model` for **`batch` fused fault realizations** of the
    /// shape of `example`, and loads `example` as the (shared) plan input.
    ///
    /// The plan's activation edges carry all realizations stacked along the
    /// leading dimension: the input edge holds `batch` tiled copies of the
    /// example (written once per [`Plan::load_input`], so frozen-input
    /// caches — packed activation panels, unfolded patches, quantized codes
    /// — are still computed once per input), and every weighted layer owns
    /// `batch` stacked faulty buffers plus per-realization cached packed
    /// panels. One [`Plan::forward`] then evaluates every realization, with
    /// realization `b` owning rows `[b·N, (b+1)·N)` of the output's leading
    /// dimension — each bit-identical to a single-realization planned (and
    /// therefore direct) forward on its faulty weights.
    ///
    /// # Errors
    ///
    /// Returns an error when a layer with fault-targetable state does not
    /// implement the plan protocol, the example has no leading batch
    /// dimension, or a shape is inconsistent.
    pub fn compile_batched<M: Layer + ?Sized>(
        model: &mut M,
        example: &Tensor,
        batch: usize,
    ) -> Result<Self> {
        let _span = telemetry::span(telemetry::Phase::Compile);
        let batch = batch.max(1);
        if example.rank() == 0 {
            return Err(NnError::Config(
                "plan input must have a leading batch dimension".into(),
            ));
        }
        let mut arenas = PlanArenas::new();
        arenas.batch = batch;
        let per_dims = example.dims().to_vec();
        let mut dims = per_dims.clone();
        dims[0] *= batch;
        let input = PlanShape {
            slot: arenas.f.reserve(example.numel() * batch),
            dims,
        };
        let output = model.plan_compile(&input, &mut arenas)?;
        arenas.seal();
        let out_tensor = Tensor::zeros(&output.dims);
        let mut plan = Self {
            arenas,
            input,
            output,
            out_tensor,
            gen: 0,
            batch,
            per_dims,
            lifetime: FaultLifetime::Static,
        };
        plan.load_input(example)?;
        Ok(plan)
    }

    /// Loads a new input activation (same per-realization shape as the
    /// compile-time example), invalidating input-derived caches. Batched
    /// plans tile the input across every stacked realization.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the dims differ from the
    /// compiled per-realization input shape.
    pub fn load_input(&mut self, input: &Tensor) -> Result<()> {
        if input.dims() != self.per_dims.as_slice() {
            return Err(NnError::shape_mismatch(
                "Plan::load_input",
                &self.per_dims,
                input.dims(),
            ));
        }
        let slot = self.arenas.f.slot_mut(self.input.slot);
        let per = input.numel();
        for b in 0..self.batch {
            slot[b * per..(b + 1) * per].copy_from_slice(input.data());
        }
        self.gen += 1;
        Ok(())
    }

    /// Fault realizations fused per forward pass (1 for ordinary plans).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Declares the fault lifetime subsequent forwards run under (see
    /// [`FaultLifetime`]). Under [`FaultLifetime::PerInference`] the plan
    /// stops asserting the frozen-input property, so input-derived caches
    /// (packed activation panels, the fused wide-GEMM path) are bypassed and
    /// every pass consumes the freshly realized operands; setting
    /// [`FaultLifetime::Static`] back restores the caching.
    pub fn set_fault_lifetime(&mut self, lifetime: FaultLifetime) {
        self.lifetime = lifetime;
    }

    /// The fault lifetime this plan currently models.
    pub fn fault_lifetime(&self) -> FaultLifetime {
        self.lifetime
    }

    /// Runs one planned forward pass over the loaded input, consuming each
    /// layer's faulty weight buffers (re-packing dirty panels on the way),
    /// and returns the output. Steady-state calls perform zero heap
    /// allocations.
    ///
    /// # Errors
    ///
    /// Returns an error when a layer rejects its input or the plan state was
    /// released.
    // lint: no_alloc
    pub fn forward<M: Layer + ?Sized>(&mut self, model: &mut M) -> Result<&Tensor> {
        let ctx = PlanCtx {
            input_gen: self.gen,
            // A per-inference fault lifetime voids the frozen-input
            // property: caches keyed on a run-invariant input edge must not
            // serve this pass.
            frozen: self.lifetime == FaultLifetime::Static,
        };
        model.plan_forward(&self.input, &self.output, ctx, &mut self.arenas)?;
        self.out_tensor
            .data_mut()
            .copy_from_slice(self.arenas.f.slot(self.output.slot));
        Ok(&self.out_tensor)
    }

    /// Dims of the compiled input.
    pub fn input_dims(&self) -> &[usize] {
        &self.input.dims
    }

    /// Dims of the compiled output.
    pub fn output_dims(&self) -> &[usize] {
        &self.output.dims
    }

    /// Total f32/i8/i32 elements reserved across the arenas (diagnostics).
    pub fn arena_elements(&self) -> (usize, usize, usize) {
        (
            self.arenas.f.reserved(),
            self.arenas.q.reserved(),
            self.arenas.acc.reserved(),
        )
    }
}

/// Shared implementation of the default (fallback) [`Layer::plan_compile`]:
/// rejects layers carrying fault-targetable state, otherwise discovers the
/// output shape by forwarding zeros of the input shape once.
pub(crate) fn fallback_compile<L: Layer + ?Sized>(
    layer: &mut L,
    input: &PlanShape,
    arenas: &mut PlanArenas,
) -> Result<PlanShape> {
    let mut targetable = false;
    layer.visit_params(&mut |p| targetable |= p.value.rank() >= 2);
    layer.visit_codes(&mut |_| targetable = true);
    if targetable {
        return Err(NnError::unsupported(layer.name(), "compiled plans"));
    }
    let probe = Tensor::zeros(&input.dims);
    let out = layer.forward(&probe, Mode::Eval)?;
    Ok(PlanShape {
        slot: arenas.f.reserve(out.numel()),
        dims: out.dims().to_vec(),
    })
}

/// Shared implementation of the default (fallback) [`Layer::plan_forward`]:
/// routes through the layer's ordinary `forward` (correct for every
/// weightless layer, at the cost of the allocations `forward` makes).
pub(crate) fn fallback_forward<L: Layer + ?Sized>(
    layer: &mut L,
    input: &PlanShape,
    output: &PlanShape,
    arenas: &mut PlanArenas,
) -> Result<()> {
    let x = Tensor::from_vec(arenas.f.slot(input.slot).to_vec(), &input.dims)?;
    let y = layer.forward(&x, Mode::Eval)?;
    if y.dims() != output.dims.as_slice() {
        return Err(NnError::Config(format!(
            "plan for {} compiled output {:?}, forward produced {:?}",
            layer.name(),
            output.dims,
            y.dims()
        )));
    }
    arenas.f.slot_mut(output.slot).copy_from_slice(y.data());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::linear::Linear;
    use crate::lstm::Lstm;
    use crate::Sequential;
    use invnorm_tensor::Rng;

    #[test]
    fn plan_reproduces_direct_eval_forward() {
        let mut rng = Rng::seed_from(1);
        let mut net = Sequential::new()
            .with(Box::new(Linear::new(6, 8, &mut rng)))
            .with(Box::new(Relu::new()))
            .with(Box::new(Linear::new(8, 3, &mut rng)));
        let x = Tensor::randn(&[4, 6], 0.0, 1.0, &mut rng);
        let direct = net.forward(&x, Mode::Eval).unwrap();
        let mut plan = Plan::compile(&mut net, &x).unwrap();
        assert_eq!(plan.input_dims(), x.dims());
        assert_eq!(plan.output_dims(), direct.dims());
        for _ in 0..3 {
            let out = plan.forward(&mut net).unwrap();
            let identical = out
                .data()
                .iter()
                .zip(direct.data().iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "planned forward diverged from direct eval");
        }
        net.plan_end();
    }

    #[test]
    fn plan_tracks_faulty_weights_and_restores_clean_rows() {
        let mut rng = Rng::seed_from(2);
        let mut net = Sequential::new().with(Box::new(Linear::new(5, 4, &mut rng)));
        let x = Tensor::randn(&[3, 5], 0.0, 1.0, &mut rng);
        let clean = net.forward(&x, Mode::Eval).unwrap();
        let mut plan = Plan::compile(&mut net, &x).unwrap();
        // Perturb row 2 of the weight through the plan view.
        net.visit_plan_params(&mut |view| {
            assert_eq!(view.index, 0);
            for v in &mut view.faulty[2 * 5..3 * 5] {
                *v += 1.0;
            }
            view.dirty.mark(2);
        });
        let faulty_out = plan.forward(&mut net).unwrap().clone();
        assert!(!faulty_out.approx_eq(&clean, 1e-6));
        // Next realization: nothing perturbed → the faulty buffer must be
        // reset by the caller (the injector's contract); simulate it.
        net.visit_plan_params(&mut |view| {
            view.faulty.copy_from_slice(view.clean.data());
            view.dirty.mark(2); // row reverted → caller marks it again
        });
        let restored = plan.forward(&mut net).unwrap();
        let identical = restored
            .data()
            .iter()
            .zip(clean.data().iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "reverted rows must restore the clean output");
        net.plan_end();
    }

    #[test]
    fn weighted_layers_without_plan_support_are_rejected_loudly() {
        let mut rng = Rng::seed_from(3);
        let mut net = Sequential::new().with(Box::new(Lstm::new(4, 6, false, &mut rng)));
        let x = Tensor::randn(&[2, 5, 4], 0.0, 1.0, &mut rng);
        let err = Plan::compile(&mut net, &x).unwrap_err();
        assert!(
            matches!(
                err,
                NnError::Unsupported {
                    op: "compiled plans",
                    ..
                }
            ),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("compiled plans"));
    }

    #[test]
    fn plan_rejects_wrong_input_shape_on_load() {
        let mut rng = Rng::seed_from(4);
        let mut net = Sequential::new().with(Box::new(Linear::new(4, 2, &mut rng)));
        let x = Tensor::randn(&[2, 4], 0.0, 1.0, &mut rng);
        let mut plan = Plan::compile(&mut net, &x).unwrap();
        // Shape mismatches at forward time are the typed `ShapeMismatch`
        // error, carrying both shapes, not a panic or a formatted string.
        let err = plan.load_input(&Tensor::zeros(&[3, 4])).unwrap_err();
        assert!(
            matches!(
                &err,
                NnError::ShapeMismatch { context, expected, got }
                    if *context == "Plan::load_input"
                        && expected == &vec![2, 4]
                        && got == &vec![3, 4]
            ),
            "unexpected error: {err}"
        );
        let err = plan.load_input(&Tensor::zeros(&[2, 5])).unwrap_err();
        assert!(matches!(err, NnError::ShapeMismatch { .. }));
        let err = plan.load_input(&Tensor::zeros(&[2, 4, 1])).unwrap_err();
        assert!(matches!(err, NnError::ShapeMismatch { .. }));
        assert!(plan.load_input(&x).is_ok());
        net.plan_end();
        // Wrong-rank compile inputs are rejected, not misread.
        let mut conv_net =
            Sequential::new().with(Box::new(crate::conv::Conv2d::new(2, 3, 3, 1, 1, &mut rng)));
        assert!(Plan::compile(&mut conv_net, &Tensor::zeros(&[2, 4])).is_err());
        assert!(Plan::compile(&mut net, &Tensor::from_vec(vec![0.0], &[]).unwrap()).is_err());
    }

    #[test]
    fn batched_plan_stacks_realizations_and_loads_tiled_input() {
        let mut rng = Rng::seed_from(10);
        let mut net = Sequential::new()
            .with(Box::new(Linear::new(5, 7, &mut rng)))
            .with(Box::new(Relu::new()))
            .with(Box::new(Linear::new(7, 3, &mut rng)));
        let x = Tensor::randn(&[4, 5], 0.0, 1.0, &mut rng);
        let direct = net.forward(&x, Mode::Eval).unwrap();
        let batch = 3usize;
        let mut plan = Plan::compile_batched(&mut net, &x, batch).unwrap();
        assert_eq!(plan.batch(), batch);
        assert_eq!(plan.input_dims(), &[batch * 4, 5]);
        assert_eq!(plan.output_dims(), &[batch * 4, 3]);
        // Clean stacked forward: every realization's rows equal the direct
        // output bit-for-bit.
        let out = plan.forward(&mut net).unwrap();
        for b in 0..batch {
            let rows = &out.data()[b * direct.numel()..][..direct.numel()];
            let identical = rows
                .iter()
                .zip(direct.data().iter())
                .all(|(a, c)| a.to_bits() == c.to_bits());
            assert!(identical, "clean realization {b} diverged");
        }
        // Perturb realization 1's first weight only; realizations 0 and 2
        // must stay clean.
        net.visit_plan_params(&mut |view| {
            if view.index == 0 {
                let numel = view.clean.numel();
                for v in &mut view.faulty[numel..][..5] {
                    *v += 1.0;
                }
                view.dirty.mark(7); // realization 1, row 0 (7 rows each)
            }
        });
        let out = plan.forward(&mut net).unwrap().clone();
        for b in [0usize, 2] {
            let rows = &out.data()[b * direct.numel()..][..direct.numel()];
            let identical = rows
                .iter()
                .zip(direct.data().iter())
                .all(|(a, c)| a.to_bits() == c.to_bits());
            assert!(identical, "untouched realization {b} was perturbed");
        }
        let mid = &out.data()[direct.numel()..][..direct.numel()];
        assert!(mid.iter().zip(direct.data().iter()).any(|(a, c)| a != c));
        net.plan_end();
    }

    #[test]
    fn batched_plan_rejects_non_divisible_leading_dim() {
        // A layer seeing a stacked edge whose leading dimension is not a
        // multiple of the plan batch must fail at compile time.
        let mut rng = Rng::seed_from(11);
        let mut net = Sequential::new()
            .with(Box::new(Shrinker))
            .with(Box::new(Linear::new(4, 2, &mut rng)));
        let x = Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng);
        // Tiled input [6, 4] shrinks to [3, 4]: not divisible by batch 2.
        assert!(Plan::compile_batched(&mut net, &x, 2).is_err());
    }

    /// A pathological layer that halves the leading dimension, breaking the
    /// per-realization stacking invariant.
    struct Shrinker;

    impl Layer for Shrinker {
        fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
            let d = input.dims();
            let rows = d[0] / 2;
            Ok(Tensor::from_vec(
                input.data()[..rows * d[1]].to_vec(),
                &[rows, d[1]],
            )?)
        }
        fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
            Ok(grad_output.clone())
        }
        fn name(&self) -> &'static str {
            "Shrinker"
        }
    }
}
