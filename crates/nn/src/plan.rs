//! Compiled inference plans: one-shot shape inference, arena-backed buffers
//! and cached packed-weight panels.
//!
//! The Monte-Carlo evaluation protocol re-executes the same network
//! thousands of times with only sparse weight perturbations between runs,
//! yet the direct execution path re-derives shapes, re-allocates scratch and
//! re-packs every weight panel on every forward pass. A [`Plan`] removes all
//! of that per-run work, in the style of graph-compiled runtimes:
//!
//! 1. **Compile once** ([`Plan::compile`]): the model is walked once for a
//!    concrete input shape. Every layer records its input/output shapes,
//!    reserves its activation and scratch buffers from a shared bump
//!    [`Arena`] (one allocation per element type), and packs its weight
//!    matrix into a cached panel ([`invnorm_tensor::gemm::PackedB`] /
//!    [`invnorm_tensor::qgemm::QPackedB`]).
//! 2. **Run many** ([`Plan::forward`]): steady-state forwards perform zero
//!    heap allocations and zero weight packing. Fault injectors perturb each
//!    layer's plan-owned *faulty* weight buffer (the clean parameters are
//!    never touched — no snapshot/restore) and report which weight rows they
//!    dirtied; only the packed panels covering dirty rows are re-packed
//!    before the next forward.
//!
//! The planned forward is **bit-identical** to the direct eval path: the
//! same kernels run in the same blocking order over the same packed values,
//! so `MonteCarloEngine::run_planned` reproduces `run`/`run_parallel`
//! metrics exactly (tested for all eight fault models).
//!
//! Layers participate through the plan protocol on [`Layer`]
//! ([`Layer::plan_compile`], [`Layer::plan_forward`],
//! [`Layer::visit_plan_params`], [`Layer::visit_plan_codes`],
//! [`Layer::plan_end`]). Layers without fault-targetable state get a default
//! *fallback* implementation that routes through their ordinary `forward`
//! (correct, but allocating); layers with rank ≥ 2 weights or quantization
//! codes must implement the protocol or are rejected with
//! [`NnError::Unsupported`] at compile time — a loud failure instead of
//! silently evaluating clean weights.

use crate::error::NnError;
use crate::layer::{Layer, Mode};
use crate::Result;
use invnorm_tensor::gemm::PackedB;
use invnorm_tensor::qgemm::QPackedB;
use invnorm_tensor::{Arena, ArenaSlot, DirtyRows, Tensor};

/// The per-plan buffer arenas, one per element type so f32 activations, i8
/// quantization codes and i32 accumulators each live in a single allocation.
#[derive(Debug, Default)]
pub struct PlanArenas {
    /// f32 activations, im2col patch matrices and GEMM staging.
    pub f: Arena<f32>,
    /// i8 activation codes and code-domain patch matrices.
    pub q: Arena<i8>,
    /// i32 integer-GEMM accumulators.
    pub acc: Arena<i32>,
}

impl PlanArenas {
    /// Creates empty arenas in the build phase.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seals all three arenas (performs the backing allocations).
    pub fn seal(&mut self) {
        self.f.seal();
        self.q.seal();
        self.acc.seal();
    }

    /// Reserves a fresh f32 edge with the same dims as `shape` (the common
    /// case for shape-preserving layers).
    pub fn reserve_like(&mut self, shape: &PlanShape) -> PlanShape {
        PlanShape {
            slot: self.f.reserve(shape.numel()),
            dims: shape.dims.clone(),
        }
    }
}

/// The location and logical shape of one activation edge of a compiled plan:
/// an f32 arena slot plus its tensor dims.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanShape {
    /// The f32 arena slot holding the activation.
    pub slot: ArenaSlot,
    /// Logical tensor dims of the activation.
    pub dims: Vec<usize>,
}

impl PlanShape {
    /// Total element count.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }
}

/// Per-forward execution context threaded through [`Layer::plan_forward`].
#[derive(Debug, Clone, Copy)]
pub struct PlanCtx {
    /// Generation counter of the plan's input buffer; bumped by
    /// [`Plan::load_input`]. Layers seeing a frozen input cache packed
    /// activation panels keyed by this generation.
    pub input_gen: u64,
    /// Whether this layer's input is the plan input itself (constant across
    /// Monte-Carlo runs), making input-derived caches (packed activation
    /// panels, unfolded patches, quantized codes) valid until the next
    /// [`Plan::load_input`].
    pub frozen: bool,
}

impl PlanCtx {
    /// Context for a child layer; only the first child of a chain keeps the
    /// frozen-input property.
    pub fn child(self, first: bool) -> PlanCtx {
        PlanCtx {
            frozen: self.frozen && first,
            ..self
        }
    }
}

/// One fault-targetable (rank ≥ 2) parameter's plan-owned state, handed to
/// [`Layer::visit_plan_params`] visitors: the clean value, the faulty buffer
/// the next forward will consume, and the dirty-row set driving panel
/// re-packing.
#[derive(Debug)]
pub struct PlanParamView<'a> {
    /// Index of this parameter in [`Layer::visit_params`] order — the fault
    /// injector's RNG fork index, exactly as in the sequential engine.
    pub index: usize,
    /// The clean parameter value (never touched by planned injection).
    pub clean: &'a Tensor,
    /// The faulty weight buffer the plan's packed panels are refreshed from.
    pub faulty: &'a mut [f32],
    /// Rows (leading-dimension indices) the injector perturbed; the plan
    /// re-packs only the panels covering these rows.
    pub dirty: &'a mut DirtyRows,
    /// Uniform-scale fast path: an injector whose realization is exactly
    /// `clean · factor` for one constant factor (retention drift) sets this
    /// instead of writing `faulty` — the layer then scales its cached packed
    /// panels directly (bit-identical to re-packing scaled weights) and
    /// skips the realization entirely once the factor is already applied.
    pub scale: &'a mut Option<f32>,
}

/// The code-domain analogue of [`PlanParamView`], handed to
/// [`Layer::visit_plan_codes`] visitors.
#[derive(Debug)]
pub struct PlanCodeView<'a> {
    /// Index of this parameter in [`Layer::visit_codes`] order (the fork
    /// index of the sequential code injector).
    pub index: usize,
    /// The clean codes (never touched by planned injection).
    pub clean: &'a [i8],
    /// Bit width of the quantized representation (≤ 8).
    pub bits: u8,
    /// The faulty code buffer the packed panels are refreshed from.
    pub faulty: &'a mut [i8],
    /// Rows the injector perturbed.
    pub dirty: &'a mut DirtyRows,
}

/// Cached packed f32 weight operand with per-realization bookkeeping — the
/// shared plan state of the dense layers (`Linear`, `Conv2d`).
///
/// Three realization regimes are tracked:
///
/// * **Sparse** ([`PlanParamView::dirty`]): the injector rewrote `faulty`
///   and marked the touched rows; only panels covering the union of those
///   rows and the previous realization's rows are re-packed.
/// * **Uniform scale** ([`PlanParamView::scale`]): the realization is
///   `clean · factor` (retention drift); the packed clean operand is scaled
///   directly — and skipped entirely when the factor is already applied.
/// * **Clean**: nothing marked; the packed operand is already exact.
#[derive(Debug)]
pub struct PlannedWeight {
    packed_clean: PackedB,
    packed: PackedB,
    /// The faulty weight buffer sparse realizations write.
    pub faulty: Vec<f32>,
    /// Rows the current realization touched.
    pub dirty: DirtyRows,
    /// Rows where `packed` still differs from the clean operand (from the
    /// previous realization).
    stale: DirtyRows,
    /// Pending uniform-scale request for the next refresh.
    pub scale_req: Option<f32>,
    applied_scale: Option<f32>,
}

impl PlannedWeight {
    /// Packs the clean `[n, k]` (row-major, `trans_b`) weight matrix twice:
    /// once as the immutable clean reference, once as the live operand.
    pub fn pack(weight: &[f32], k: usize, n: usize) -> Self {
        let mut packed_clean = PackedB::new();
        packed_clean.pack(true, weight, k, n);
        let packed = packed_clean.clone();
        Self {
            packed_clean,
            packed,
            faulty: weight.to_vec(),
            dirty: DirtyRows::new(n),
            stale: DirtyRows::new(n),
            scale_req: None,
            applied_scale: None,
        }
    }

    /// Brings the live packed operand up to date with the realization the
    /// injector recorded (dirty rows, uniform scale, or nothing), returning
    /// it ready for the GEMM.
    pub fn refresh(&mut self) -> &PackedB {
        if let Some(factor) = self.scale_req.take() {
            // Uniform-scale regime: `packed = packed_clean · factor`,
            // bit-identical to packing scaled weights. Skip when the exact
            // factor is already applied and nothing else touched the panels.
            if self.applied_scale != Some(factor) || self.dirty.any() {
                self.packed.scale_from(&self.packed_clean, factor);
                self.applied_scale = Some(factor);
                self.dirty.clear();
                self.stale.clear();
            }
        } else {
            if self.applied_scale.take().is_some() {
                // Leaving the scaled regime: restore the clean panels, then
                // apply this realization's dirty rows below.
                self.packed.copy_from(&self.packed_clean);
                self.stale.clear();
            }
            if self.dirty.any() || self.stale.any() {
                self.stale.merge(&self.dirty);
                self.packed.repack_rows(&self.faulty, &self.stale);
                std::mem::swap(&mut self.stale, &mut self.dirty);
                self.dirty.clear();
            }
        }
        &self.packed
    }

    /// The injector-facing view of this weight's plan state.
    pub fn view<'a>(&'a mut self, index: usize, clean: &'a Tensor) -> PlanParamView<'a> {
        PlanParamView {
            index,
            clean,
            faulty: &mut self.faulty,
            dirty: &mut self.dirty,
            scale: &mut self.scale_req,
        }
    }
}

/// Cached packed i8 code operand with per-realization bookkeeping — the
/// quantized layers' counterpart of [`PlannedWeight`]. There is no
/// uniform-scale regime in the code domain (drift rounds per code), so only
/// the sparse dirty-row and clean regimes are tracked, with the same
/// merge → repack → swap contract.
#[derive(Debug)]
pub struct PlannedCodes {
    packed: QPackedB,
    /// The faulty code buffer realizations write.
    pub faulty: Vec<i8>,
    /// Rows the current realization touched.
    pub dirty: DirtyRows,
    /// Rows where `packed` still differs from the clean operand.
    stale: DirtyRows,
}

impl PlannedCodes {
    /// Packs the clean `[n, k]` (row-major, `trans_b`) code matrix.
    pub fn pack(codes: &[i8], k: usize, n: usize) -> Self {
        let mut packed = QPackedB::new();
        packed.pack(true, codes, k, n);
        Self {
            packed,
            faulty: codes.to_vec(),
            dirty: DirtyRows::new(n),
            stale: DirtyRows::new(n),
        }
    }

    /// Brings the live packed operand up to date with the realization the
    /// injector recorded (see [`PlannedWeight::refresh`]).
    pub fn refresh(&mut self) -> &QPackedB {
        if self.dirty.any() || self.stale.any() {
            self.stale.merge(&self.dirty);
            self.packed.repack_rows(&self.faulty, &self.stale);
            std::mem::swap(&mut self.stale, &mut self.dirty);
            self.dirty.clear();
        }
        &self.packed
    }

    /// The injector-facing view of this code operand's plan state.
    pub fn view<'a>(&'a mut self, index: usize, clean: &'a [i8], bits: u8) -> PlanCodeView<'a> {
        PlanCodeView {
            index,
            clean,
            bits,
            faulty: &mut self.faulty,
            dirty: &mut self.dirty,
        }
    }
}

/// A compiled inference plan for one model and one input shape.
///
/// The plan owns the arenas and the input/output edges; per-layer state
/// (cached packed panels, faulty buffers, scratch slots) lives inside the
/// layers themselves, installed by [`Layer::plan_compile`] and released by
/// [`Layer::plan_end`].
#[derive(Debug)]
pub struct Plan {
    arenas: PlanArenas,
    input: PlanShape,
    output: PlanShape,
    out_tensor: Tensor,
    gen: u64,
}

impl Plan {
    /// Compiles `model` for the shape of `example` and loads `example` as
    /// the plan input.
    ///
    /// # Errors
    ///
    /// Returns an error when a layer with fault-targetable state does not
    /// implement the plan protocol ([`NnError::Unsupported`]) or a shape is
    /// inconsistent.
    pub fn compile<M: Layer + ?Sized>(model: &mut M, example: &Tensor) -> Result<Self> {
        let mut arenas = PlanArenas::new();
        let input = PlanShape {
            slot: arenas.f.reserve(example.numel()),
            dims: example.dims().to_vec(),
        };
        let output = model.plan_compile(&input, &mut arenas)?;
        arenas.seal();
        let out_tensor = Tensor::zeros(&output.dims);
        let mut plan = Self {
            arenas,
            input,
            output,
            out_tensor,
            gen: 0,
        };
        plan.load_input(example)?;
        Ok(plan)
    }

    /// Loads a new input activation (same shape as the compile-time
    /// example), invalidating input-derived caches.
    ///
    /// # Errors
    ///
    /// Returns an error when the dims differ from the compiled input shape.
    pub fn load_input(&mut self, input: &Tensor) -> Result<()> {
        if input.dims() != self.input.dims.as_slice() {
            return Err(NnError::Config(format!(
                "plan compiled for input {:?}, got {:?}",
                self.input.dims,
                input.dims()
            )));
        }
        self.arenas
            .f
            .slot_mut(self.input.slot)
            .copy_from_slice(input.data());
        self.gen += 1;
        Ok(())
    }

    /// Runs one planned forward pass over the loaded input, consuming each
    /// layer's faulty weight buffers (re-packing dirty panels on the way),
    /// and returns the output. Steady-state calls perform zero heap
    /// allocations.
    ///
    /// # Errors
    ///
    /// Returns an error when a layer rejects its input or the plan state was
    /// released.
    pub fn forward<M: Layer + ?Sized>(&mut self, model: &mut M) -> Result<&Tensor> {
        let ctx = PlanCtx {
            input_gen: self.gen,
            frozen: true,
        };
        model.plan_forward(&self.input, &self.output, ctx, &mut self.arenas)?;
        self.out_tensor
            .data_mut()
            .copy_from_slice(self.arenas.f.slot(self.output.slot));
        Ok(&self.out_tensor)
    }

    /// Dims of the compiled input.
    pub fn input_dims(&self) -> &[usize] {
        &self.input.dims
    }

    /// Dims of the compiled output.
    pub fn output_dims(&self) -> &[usize] {
        &self.output.dims
    }

    /// Total f32/i8/i32 elements reserved across the arenas (diagnostics).
    pub fn arena_elements(&self) -> (usize, usize, usize) {
        (
            self.arenas.f.reserved(),
            self.arenas.q.reserved(),
            self.arenas.acc.reserved(),
        )
    }
}

/// Shared implementation of the default (fallback) [`Layer::plan_compile`]:
/// rejects layers carrying fault-targetable state, otherwise discovers the
/// output shape by forwarding zeros of the input shape once.
pub(crate) fn fallback_compile<L: Layer + ?Sized>(
    layer: &mut L,
    input: &PlanShape,
    arenas: &mut PlanArenas,
) -> Result<PlanShape> {
    let mut targetable = false;
    layer.visit_params(&mut |p| targetable |= p.value.rank() >= 2);
    layer.visit_codes(&mut |_| targetable = true);
    if targetable {
        return Err(NnError::unsupported(layer.name(), "compiled plans"));
    }
    let probe = Tensor::zeros(&input.dims);
    let out = layer.forward(&probe, Mode::Eval)?;
    Ok(PlanShape {
        slot: arenas.f.reserve(out.numel()),
        dims: out.dims().to_vec(),
    })
}

/// Shared implementation of the default (fallback) [`Layer::plan_forward`]:
/// routes through the layer's ordinary `forward` (correct for every
/// weightless layer, at the cost of the allocations `forward` makes).
pub(crate) fn fallback_forward<L: Layer + ?Sized>(
    layer: &mut L,
    input: &PlanShape,
    output: &PlanShape,
    arenas: &mut PlanArenas,
) -> Result<()> {
    let x = Tensor::from_vec(arenas.f.slot(input.slot).to_vec(), &input.dims)?;
    let y = layer.forward(&x, Mode::Eval)?;
    if y.dims() != output.dims.as_slice() {
        return Err(NnError::Config(format!(
            "plan for {} compiled output {:?}, forward produced {:?}",
            layer.name(),
            output.dims,
            y.dims()
        )));
    }
    arenas.f.slot_mut(output.slot).copy_from_slice(y.data());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::linear::Linear;
    use crate::lstm::Lstm;
    use crate::Sequential;
    use invnorm_tensor::Rng;

    #[test]
    fn plan_reproduces_direct_eval_forward() {
        let mut rng = Rng::seed_from(1);
        let mut net = Sequential::new()
            .with(Box::new(Linear::new(6, 8, &mut rng)))
            .with(Box::new(Relu::new()))
            .with(Box::new(Linear::new(8, 3, &mut rng)));
        let x = Tensor::randn(&[4, 6], 0.0, 1.0, &mut rng);
        let direct = net.forward(&x, Mode::Eval).unwrap();
        let mut plan = Plan::compile(&mut net, &x).unwrap();
        assert_eq!(plan.input_dims(), x.dims());
        assert_eq!(plan.output_dims(), direct.dims());
        for _ in 0..3 {
            let out = plan.forward(&mut net).unwrap();
            let identical = out
                .data()
                .iter()
                .zip(direct.data().iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "planned forward diverged from direct eval");
        }
        net.plan_end();
    }

    #[test]
    fn plan_tracks_faulty_weights_and_restores_clean_rows() {
        let mut rng = Rng::seed_from(2);
        let mut net = Sequential::new().with(Box::new(Linear::new(5, 4, &mut rng)));
        let x = Tensor::randn(&[3, 5], 0.0, 1.0, &mut rng);
        let clean = net.forward(&x, Mode::Eval).unwrap();
        let mut plan = Plan::compile(&mut net, &x).unwrap();
        // Perturb row 2 of the weight through the plan view.
        net.visit_plan_params(&mut |view| {
            assert_eq!(view.index, 0);
            for v in &mut view.faulty[2 * 5..3 * 5] {
                *v += 1.0;
            }
            view.dirty.mark(2);
        });
        let faulty_out = plan.forward(&mut net).unwrap().clone();
        assert!(!faulty_out.approx_eq(&clean, 1e-6));
        // Next realization: nothing perturbed → the faulty buffer must be
        // reset by the caller (the injector's contract); simulate it.
        net.visit_plan_params(&mut |view| {
            view.faulty.copy_from_slice(view.clean.data());
            view.dirty.mark(2); // row reverted → caller marks it again
        });
        let restored = plan.forward(&mut net).unwrap();
        let identical = restored
            .data()
            .iter()
            .zip(clean.data().iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "reverted rows must restore the clean output");
        net.plan_end();
    }

    #[test]
    fn weighted_layers_without_plan_support_are_rejected_loudly() {
        let mut rng = Rng::seed_from(3);
        let mut net = Sequential::new().with(Box::new(Lstm::new(4, 6, false, &mut rng)));
        let x = Tensor::randn(&[2, 5, 4], 0.0, 1.0, &mut rng);
        let err = Plan::compile(&mut net, &x).unwrap_err();
        assert!(
            matches!(
                err,
                NnError::Unsupported {
                    op: "compiled plans",
                    ..
                }
            ),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("compiled plans"));
    }

    #[test]
    fn plan_rejects_wrong_input_shape_on_load() {
        let mut rng = Rng::seed_from(4);
        let mut net = Sequential::new().with(Box::new(Linear::new(4, 2, &mut rng)));
        let x = Tensor::randn(&[2, 4], 0.0, 1.0, &mut rng);
        let mut plan = Plan::compile(&mut net, &x).unwrap();
        assert!(plan.load_input(&Tensor::zeros(&[3, 4])).is_err());
        assert!(plan.load_input(&x).is_ok());
        net.plan_end();
    }
}
