//! Minimal training loops shared by the examples, tests and the experiment
//! harness.

use crate::layer::{Layer, Mode};
use crate::loss::{bce_with_logits, cross_entropy, mse};
use crate::metrics;
use crate::optim::Optimizer;
use crate::Result;
use invnorm_tensor::{Rng, Tensor};

/// Configuration of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Whether the data order is reshuffled every epoch.
    pub shuffle: bool,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 16,
            shuffle: true,
            seed: 0,
        }
    }
}

/// Loss history of a training run (one entry per epoch).
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Loss of the final epoch, or `None` for an empty run.
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_losses.last().copied()
    }
}

fn batch_indices(n: usize, batch_size: usize, shuffle: bool, rng: &mut Rng) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..n).collect();
    if shuffle {
        rng.shuffle(&mut order);
    }
    order
        .chunks(batch_size.max(1))
        .map(|c| c.to_vec())
        .collect()
}

fn gather_rows(data: &Tensor, indices: &[usize]) -> Result<Tensor> {
    let items: Vec<Tensor> = indices
        .iter()
        .map(|&i| data.index_axis0(i))
        .collect::<std::result::Result<_, _>>()?;
    Ok(Tensor::stack(&items)?)
}

/// Trains a classifier with softmax cross-entropy.
///
/// `inputs` is a batched tensor whose first dimension indexes samples,
/// `targets` the class index of each sample.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent or a layer fails.
pub fn fit_classifier(
    network: &mut dyn Layer,
    optimizer: &mut dyn Optimizer,
    inputs: &Tensor,
    targets: &[usize],
    config: &TrainConfig,
) -> Result<TrainReport> {
    let n = inputs.dims()[0];
    let mut rng = Rng::seed_from(config.seed);
    let mut report = TrainReport::default();
    for _ in 0..config.epochs {
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for batch in batch_indices(n, config.batch_size, config.shuffle, &mut rng) {
            let x = gather_rows(inputs, &batch)?;
            let y: Vec<usize> = batch.iter().map(|&i| targets[i]).collect();
            let logits = network.forward(&x, Mode::Train)?;
            let out = cross_entropy(&logits, &y)?;
            network.backward(&out.grad)?;
            optimizer.step(network)?;
            epoch_loss += out.loss;
            batches += 1;
        }
        report.epoch_losses.push(epoch_loss / batches.max(1) as f32);
    }
    Ok(report)
}

/// Trains a regressor with mean-squared error. `targets` must have the same
/// leading dimension as `inputs`.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent or a layer fails.
pub fn fit_regressor(
    network: &mut dyn Layer,
    optimizer: &mut dyn Optimizer,
    inputs: &Tensor,
    targets: &Tensor,
    config: &TrainConfig,
) -> Result<TrainReport> {
    let n = inputs.dims()[0];
    let mut rng = Rng::seed_from(config.seed);
    let mut report = TrainReport::default();
    for _ in 0..config.epochs {
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for batch in batch_indices(n, config.batch_size, config.shuffle, &mut rng) {
            let x = gather_rows(inputs, &batch)?;
            let y = gather_rows(targets, &batch)?;
            let pred = network.forward(&x, Mode::Train)?;
            let out = mse(&pred, &y)?;
            network.backward(&out.grad)?;
            optimizer.step(network)?;
            epoch_loss += out.loss;
            batches += 1;
        }
        report.epoch_losses.push(epoch_loss / batches.max(1) as f32);
    }
    Ok(report)
}

/// Trains a binary segmentation network with BCE-with-logits. `masks` must
/// have the same shape as the network output.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent or a layer fails.
pub fn fit_segmenter(
    network: &mut dyn Layer,
    optimizer: &mut dyn Optimizer,
    inputs: &Tensor,
    masks: &Tensor,
    config: &TrainConfig,
) -> Result<TrainReport> {
    let n = inputs.dims()[0];
    let mut rng = Rng::seed_from(config.seed);
    let mut report = TrainReport::default();
    for _ in 0..config.epochs {
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for batch in batch_indices(n, config.batch_size, config.shuffle, &mut rng) {
            let x = gather_rows(inputs, &batch)?;
            let y = gather_rows(masks, &batch)?;
            let logits = network.forward(&x, Mode::Train)?;
            let out = bce_with_logits(&logits, &y)?;
            network.backward(&out.grad)?;
            optimizer.step(network)?;
            epoch_loss += out.loss;
            batches += 1;
        }
        report.epoch_losses.push(epoch_loss / batches.max(1) as f32);
    }
    Ok(report)
}

/// Evaluates classification accuracy of a deterministic forward pass.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent or a layer fails.
pub fn evaluate_accuracy(
    network: &mut dyn Layer,
    inputs: &Tensor,
    targets: &[usize],
    batch_size: usize,
) -> Result<f32> {
    let n = inputs.dims()[0];
    let mut correct_weighted = 0.0f32;
    for batch in (0..n).collect::<Vec<_>>().chunks(batch_size.max(1)) {
        let x = gather_rows(inputs, batch)?;
        let y: Vec<usize> = batch.iter().map(|&i| targets[i]).collect();
        let logits = network.forward(&x, Mode::Eval)?;
        correct_weighted += metrics::accuracy(&logits, &y)? * batch.len() as f32;
    }
    Ok(correct_weighted / n.max(1) as f32)
}

/// Evaluates RMSE of a deterministic forward pass.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent or a layer fails.
pub fn evaluate_rmse(
    network: &mut dyn Layer,
    inputs: &Tensor,
    targets: &Tensor,
    batch_size: usize,
) -> Result<f32> {
    let n = inputs.dims()[0];
    let mut sq_sum = 0.0f32;
    let mut count = 0usize;
    for batch in (0..n).collect::<Vec<_>>().chunks(batch_size.max(1)) {
        let x = gather_rows(inputs, batch)?;
        let y = gather_rows(targets, batch)?;
        let pred = network.forward(&x, Mode::Eval)?;
        let r = metrics::rmse(&pred, &y)?;
        sq_sum += r * r * pred.numel() as f32;
        count += pred.numel();
    }
    Ok((sq_sum / count.max(1) as f32).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::linear::Linear;
    use crate::optim::{Adam, Sgd};
    use crate::Sequential;

    fn two_blob_dataset(n_per_class: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = Rng::seed_from(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..2usize {
            let center = if class == 0 { -1.5 } else { 1.5 };
            for _ in 0..n_per_class {
                rows.push(Tensor::from_slice(&[
                    rng.normal(center, 0.5),
                    rng.normal(center, 0.5),
                ]));
                labels.push(class);
            }
        }
        (Tensor::stack(&rows).unwrap(), labels)
    }

    #[test]
    fn classifier_learns_separable_blobs() {
        let (x, y) = two_blob_dataset(40, 1);
        let mut rng = Rng::seed_from(2);
        let mut net = Sequential::new()
            .with(Box::new(Linear::new(2, 16, &mut rng)))
            .with(Box::new(Relu::new()))
            .with(Box::new(Linear::new(16, 2, &mut rng)));
        let mut opt = Adam::new(0.01);
        let config = TrainConfig {
            epochs: 30,
            batch_size: 16,
            ..Default::default()
        };
        let report = fit_classifier(&mut net, &mut opt, &x, &y, &config).unwrap();
        assert!(report.final_loss().unwrap() < 0.2);
        let acc = evaluate_accuracy(&mut net, &x, &y, 16).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
        // Loss decreased over training.
        assert!(report.epoch_losses[0] > report.epoch_losses.last().copied().unwrap());
    }

    #[test]
    fn regressor_learns_linear_map() {
        let mut rng = Rng::seed_from(3);
        let x = Tensor::randn(&[64, 3], 0.0, 1.0, &mut rng);
        // y = x @ [1, -2, 0.5]
        let mut y_rows = Vec::new();
        for i in 0..64 {
            let r = x.index_axis0(i).unwrap();
            y_rows.push(Tensor::from_slice(&[
                r.data()[0] - 2.0 * r.data()[1] + 0.5 * r.data()[2]
            ]));
        }
        let y = Tensor::stack(&y_rows).unwrap();
        let mut net = Sequential::new().with(Box::new(Linear::new(3, 1, &mut rng)));
        let mut opt = Sgd::new(0.1);
        let config = TrainConfig {
            epochs: 100,
            batch_size: 16,
            ..Default::default()
        };
        let report = fit_regressor(&mut net, &mut opt, &x, &y, &config).unwrap();
        assert!(report.final_loss().unwrap() < 1e-3);
        assert!(evaluate_rmse(&mut net, &x, &y, 16).unwrap() < 0.05);
    }

    #[test]
    fn segmenter_learns_identity_mask() {
        // Input *is* the target mask with some noise: the network only has to
        // learn a positive scaling.
        let mut rng = Rng::seed_from(4);
        let mask_rows: Vec<Tensor> = (0..32)
            .map(|_| {
                Tensor::from_vec(
                    (0..16)
                        .map(|_| if rng.bernoulli(0.4) { 1.0 } else { 0.0 })
                        .collect(),
                    &[16],
                )
                .unwrap()
            })
            .collect();
        let masks = Tensor::stack(&mask_rows).unwrap();
        let inputs = masks.map(|v| v * 2.0 - 1.0);
        let mut net = Sequential::new().with(Box::new(Linear::new(16, 16, &mut rng)));
        let mut opt = Adam::new(0.02);
        let config = TrainConfig {
            epochs: 40,
            batch_size: 8,
            ..Default::default()
        };
        let report = fit_segmenter(&mut net, &mut opt, &inputs, &masks, &config).unwrap();
        assert!(report.final_loss().unwrap() < 0.3);
    }

    #[test]
    fn train_config_default_is_sane() {
        let c = TrainConfig::default();
        assert!(c.epochs > 0 && c.batch_size > 0);
        assert!(TrainReport::default().final_loss().is_none());
    }
}
