//! Pooling layers wrapping the kernels in [`invnorm_tensor::pool`].

use crate::error::NnError;
use crate::layer::{Layer, Mode};
use crate::plan::{PlanArenas, PlanCtx, PlanShape};
use crate::Result;
use invnorm_tensor::pool::{self, Pool2dSpec};
use invnorm_tensor::Tensor;

/// 2-D max pooling (square, non-overlapping by default).
#[derive(Debug)]
pub struct MaxPool2d {
    spec: Pool2dSpec,
    argmax: Option<Vec<usize>>,
    input_dims: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with `stride == kernel`.
    pub fn new(kernel: usize) -> Self {
        Self {
            spec: Pool2dSpec::new(kernel),
            argmax: None,
            input_dims: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let fwd = pool::maxpool2d_forward(input, &self.spec)?;
        self.argmax = Some(fwd.argmax);
        self.input_dims = Some(input.dims().to_vec());
        Ok(fwd.output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let argmax = self
            .argmax
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("MaxPool2d"))?;
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("MaxPool2d"))?;
        Ok(pool::maxpool2d_backward(grad_output, argmax, dims)?)
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        if input.dims.len() != 4 {
            return Err(NnError::Config(format!(
                "MaxPool2d expects [N, C, H, W], got {:?}",
                input.dims
            )));
        }
        let (n, c) = (input.dims[0], input.dims[1]);
        let (oh, ow) = self.spec.output_hw(input.dims[2], input.dims[3])?;
        Ok(PlanShape {
            slot: arenas.f.reserve(n * c * oh * ow),
            dims: vec![n, c, oh, ow],
        })
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        _ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let [x, y] = arenas.f.many_mut([input.slot, output.slot]);
        Ok(pool::maxpool2d_eval_into(x, &input.dims, &self.spec, y)?)
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

/// 1-D max pooling over `[N, C, L]`, implemented via the 2-D kernel.
#[derive(Debug)]
pub struct MaxPool1d {
    kernel: usize,
    argmax: Option<Vec<usize>>,
    input_dims: Option<Vec<usize>>,
}

impl MaxPool1d {
    /// Creates a 1-D max-pool layer with `stride == kernel`.
    pub fn new(kernel: usize) -> Self {
        Self {
            kernel,
            argmax: None,
            input_dims: None,
        }
    }
}

impl Layer for MaxPool1d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.rank() != 3 {
            return Err(NnError::Config(format!(
                "MaxPool1d expects [N, C, L], got {:?}",
                input.dims()
            )));
        }
        // Pool2dSpec only supports square windows, so pool directly along the
        // length axis: each output element takes the max of `kernel`
        // consecutive positions.
        let d = input.dims();
        let (n, c, l) = (d[0], d[1], d[2]);
        if l % self.kernel != 0 {
            return Err(NnError::Config(format!(
                "MaxPool1d kernel {} must divide length {l}",
                self.kernel
            )));
        }
        let out_l = l / self.kernel;
        let data = input.data();
        let mut out = vec![0.0f32; n * c * out_l];
        let mut argmax = vec![0usize; n * c * out_l];
        for nc in 0..n * c {
            for o in 0..out_l {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for k in 0..self.kernel {
                    let idx = nc * l + o * self.kernel + k;
                    if data[idx] > best {
                        best = data[idx];
                        best_idx = idx;
                    }
                }
                out[nc * out_l + o] = best;
                argmax[nc * out_l + o] = best_idx;
            }
        }
        self.argmax = Some(argmax);
        self.input_dims = Some(d.to_vec());
        Ok(Tensor::from_vec(out, &[n, c, out_l])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let argmax = self
            .argmax
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("MaxPool1d"))?;
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("MaxPool1d"))?;
        if grad_output.numel() != argmax.len() {
            return Err(NnError::Config(
                "MaxPool1d backward gradient size mismatch".into(),
            ));
        }
        let mut grad_input = Tensor::zeros(dims);
        let gi = grad_input.data_mut();
        for (g, &idx) in grad_output.data().iter().zip(argmax.iter()) {
            gi[idx] += g;
        }
        Ok(grad_input)
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        if input.dims.len() != 3 {
            return Err(NnError::Config(format!(
                "MaxPool1d expects [N, C, L], got {:?}",
                input.dims
            )));
        }
        let (n, c, l) = (input.dims[0], input.dims[1], input.dims[2]);
        if l % self.kernel != 0 {
            return Err(NnError::Config(format!(
                "MaxPool1d kernel {} must divide length {l}",
                self.kernel
            )));
        }
        Ok(PlanShape {
            slot: arenas.f.reserve(n * c * (l / self.kernel)),
            dims: vec![n, c, l / self.kernel],
        })
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        _ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let (n, c, l) = (input.dims[0], input.dims[1], input.dims[2]);
        let out_l = l / self.kernel;
        let [x, y] = arenas.f.many_mut([input.slot, output.slot]);
        // Same max-selection order as `forward`, so results are
        // bit-identical; no argmax is recorded (plans are inference-only).
        for nc in 0..n * c {
            for o in 0..out_l {
                let mut best = f32::NEG_INFINITY;
                for k in 0..self.kernel {
                    let v = x[nc * l + o * self.kernel + k];
                    if v > best {
                        best = v;
                    }
                }
                y[nc * out_l + o] = best;
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "MaxPool1d"
    }
}

/// 2-D average pooling.
#[derive(Debug)]
pub struct AvgPool2d {
    spec: Pool2dSpec,
    input_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with `stride == kernel`.
    pub fn new(kernel: usize) -> Self {
        Self {
            spec: Pool2dSpec::new(kernel),
            input_dims: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let out = pool::avgpool2d_forward(input, &self.spec)?;
        self.input_dims = Some(input.dims().to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("AvgPool2d"))?;
        Ok(pool::avgpool2d_backward(grad_output, dims, &self.spec)?)
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        if input.dims.len() != 4 {
            return Err(NnError::Config(format!(
                "AvgPool2d expects [N, C, H, W], got {:?}",
                input.dims
            )));
        }
        let (n, c) = (input.dims[0], input.dims[1]);
        let (oh, ow) = self.spec.output_hw(input.dims[2], input.dims[3])?;
        Ok(PlanShape {
            slot: arenas.f.reserve(n * c * oh * ow),
            dims: vec![n, c, oh, ow],
        })
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        _ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let [x, y] = arenas.f.many_mut([input.slot, output.slot]);
        Ok(pool::avgpool2d_into(x, &input.dims, &self.spec, y)?)
    }

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }
}

/// Global average pooling: `[N, C, H, W]` → `[N, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool2d {
    input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool2d {
    /// Creates a global average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let out = pool::global_avgpool2d(input)?;
        self.input_dims = Some(input.dims().to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("GlobalAvgPool2d"))?;
        Ok(pool::global_avgpool2d_backward(grad_output, dims)?)
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        if input.dims.len() != 4 {
            return Err(NnError::Config(format!(
                "GlobalAvgPool2d expects [N, C, H, W], got {:?}",
                input.dims
            )));
        }
        Ok(PlanShape {
            slot: arenas.f.reserve(input.dims[0] * input.dims[1]),
            dims: vec![input.dims[0], input.dims[1]],
        })
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        _ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let [x, y] = arenas.f.many_mut([input.slot, output.slot]);
        Ok(pool::global_avgpool2d_into(x, &input.dims, y)?)
    }

    fn name(&self) -> &'static str {
        "GlobalAvgPool2d"
    }
}

/// Global average pooling over the length axis: `[N, C, L]` → `[N, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool1d {
    input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool1d {
    /// Creates a 1-D global average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool1d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.rank() != 3 {
            return Err(NnError::Config(format!(
                "GlobalAvgPool1d expects [N, C, L], got {:?}",
                input.dims()
            )));
        }
        let lifted = invnorm_tensor::conv::lift_1d(input)?;
        let out = pool::global_avgpool2d(&lifted)?;
        self.input_dims = Some(input.dims().to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("GlobalAvgPool1d"))?;
        let lifted_dims = [dims[0], dims[1], 1, dims[2]];
        let grad = pool::global_avgpool2d_backward(grad_output, &lifted_dims)?;
        Ok(invnorm_tensor::conv::squeeze_1d(&grad)?)
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        if input.dims.len() != 3 {
            return Err(NnError::Config(format!(
                "GlobalAvgPool1d expects [N, C, L], got {:?}",
                input.dims
            )));
        }
        Ok(PlanShape {
            slot: arenas.f.reserve(input.dims[0] * input.dims[1]),
            dims: vec![input.dims[0], input.dims[1]],
        })
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        _ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let lifted = [input.dims[0], input.dims[1], 1, input.dims[2]];
        let [x, y] = arenas.f.many_mut([input.slot, output.slot]);
        Ok(pool::global_avgpool2d_into(x, &lifted, y)?)
    }

    fn name(&self) -> &'static str {
        "GlobalAvgPool1d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_tensor::Rng;

    #[test]
    fn maxpool2d_layer_roundtrip() {
        let mut rng = Rng::seed_from(1);
        let mut layer = MaxPool2d::new(2);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = layer.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 3, 4, 4]);
        let g = layer.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert_eq!(g.sum(), y.numel() as f32);
    }

    #[test]
    fn maxpool1d_known_values() {
        let mut layer = MaxPool1d::new(2);
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0, -1.0, 0.0], &[1, 1, 6]).unwrap();
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 1, 3]);
        assert_eq!(y.data(), &[5.0, 3.0, 0.0]);
        let g = layer
            .backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 1, 3]).unwrap())
            .unwrap();
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 2.0, 0.0, 3.0]);
    }

    #[test]
    fn maxpool1d_rejects_nondividing_kernel() {
        let mut layer = MaxPool1d::new(4);
        assert!(layer
            .forward(&Tensor::ones(&[1, 1, 6]), Mode::Eval)
            .is_err());
        assert!(layer.forward(&Tensor::ones(&[1, 6]), Mode::Eval).is_err());
    }

    #[test]
    fn avgpool_layer_roundtrip() {
        let mut rng = Rng::seed_from(2);
        let mut layer = AvgPool2d::new(2);
        let x = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let y = layer.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2, 2]);
        let g = layer.backward(&Tensor::ones(y.dims())).unwrap();
        assert!((g.sum() - y.numel() as f32).abs() < 1e-4);
    }

    #[test]
    fn global_pools() {
        let mut rng = Rng::seed_from(3);
        let x4 = Tensor::randn(&[2, 3, 4, 4], 0.0, 1.0, &mut rng);
        let mut gap = GlobalAvgPool2d::new();
        let y = gap.forward(&x4, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        let g = gap.backward(&Tensor::ones(&[2, 3])).unwrap();
        assert_eq!(g.dims(), x4.dims());

        let x3 = Tensor::randn(&[2, 3, 10], 0.0, 1.0, &mut rng);
        let mut gap1 = GlobalAvgPool1d::new();
        let y = gap1.forward(&x3, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        let g = gap1.backward(&Tensor::ones(&[2, 3])).unwrap();
        assert_eq!(g.dims(), x3.dims());
    }

    #[test]
    fn backward_before_forward_errors() {
        assert!(MaxPool2d::new(2).backward(&Tensor::ones(&[1])).is_err());
        assert!(AvgPool2d::new(2).backward(&Tensor::ones(&[1])).is_err());
        assert!(GlobalAvgPool2d::new()
            .backward(&Tensor::ones(&[1]))
            .is_err());
    }
}
