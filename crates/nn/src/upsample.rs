//! Nearest-neighbour spatial upsampling (used by the U-Net decoder).

use crate::error::NnError;
use crate::layer::{Layer, Mode};
use crate::plan::{PlanArenas, PlanCtx, PlanShape};
use crate::Result;
use invnorm_tensor::Tensor;

/// Nearest-neighbour upsampling of `[N, C, H, W]` activations by an integer
/// factor. The backward pass sums the gradients of all output positions that
/// copied a given input position.
#[derive(Debug)]
pub struct Upsample2d {
    factor: usize,
    input_dims: Option<Vec<usize>>,
}

impl Upsample2d {
    /// Creates an upsampling layer with the given integer scale factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn new(factor: usize) -> Self {
        assert!(factor > 0, "upsampling factor must be positive");
        Self {
            factor,
            input_dims: None,
        }
    }

    /// The scale factor.
    pub fn factor(&self) -> usize {
        self.factor
    }
}

impl Layer for Upsample2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let d = input.dims();
        if d.len() != 4 {
            return Err(NnError::Config(format!(
                "Upsample2d expects [N, C, H, W], got {d:?}"
            )));
        }
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let f = self.factor;
        let (oh, ow) = (h * f, w * f);
        let src = input.data();
        let mut out = vec![0.0f32; n * c * oh * ow];
        for nc in 0..n * c {
            for y in 0..oh {
                for x in 0..ow {
                    out[(nc * oh + y) * ow + x] = src[(nc * h + y / f) * w + x / f];
                }
            }
        }
        self.input_dims = Some(d.to_vec());
        Ok(Tensor::from_vec(out, &[n, c, oh, ow])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Upsample2d"))?;
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let f = self.factor;
        let (oh, ow) = (h * f, w * f);
        if grad_output.dims() != [n, c, oh, ow] {
            return Err(NnError::Config(
                "Upsample2d backward gradient shape mismatch".into(),
            ));
        }
        let gd = grad_output.data();
        let mut grad_input = Tensor::zeros(dims);
        let gi = grad_input.data_mut();
        for nc in 0..n * c {
            for y in 0..oh {
                for x in 0..ow {
                    gi[(nc * h + y / f) * w + x / f] += gd[(nc * oh + y) * ow + x];
                }
            }
        }
        Ok(grad_input)
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        if input.dims.len() != 4 {
            return Err(NnError::Config(format!(
                "Upsample2d expects [N, C, H, W], got {:?}",
                input.dims
            )));
        }
        let (n, c, h, w) = (input.dims[0], input.dims[1], input.dims[2], input.dims[3]);
        let f = self.factor;
        Ok(PlanShape {
            slot: arenas.f.reserve(n * c * h * f * w * f),
            dims: vec![n, c, h * f, w * f],
        })
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        _ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let (n, c, h, w) = (input.dims[0], input.dims[1], input.dims[2], input.dims[3]);
        let f = self.factor;
        let (oh, ow) = (h * f, w * f);
        let [src, out] = arenas.f.many_mut([input.slot, output.slot]);
        for nc in 0..n * c {
            for y in 0..oh {
                for x in 0..ow {
                    out[(nc * oh + y) * ow + x] = src[(nc * h + y / f) * w + x / f];
                }
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "Upsample2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_tensor::Rng;

    #[test]
    fn upsamples_by_replication() {
        let mut up = Upsample2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = up.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
        assert_eq!(y.get(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert_eq!(y.get(&[0, 0, 0, 1]).unwrap(), 1.0);
        assert_eq!(y.get(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(y.get(&[0, 0, 3, 3]).unwrap(), 4.0);
        assert_eq!(up.factor(), 2);
    }

    #[test]
    fn backward_sums_replicated_gradients() {
        let mut up = Upsample2d::new(2);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = up.forward(&x, Mode::Train).unwrap();
        let g = up.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert!(g.data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn factor_one_is_identity() {
        let mut rng = Rng::seed_from(1);
        let mut up = Upsample2d::new(1);
        let x = Tensor::randn(&[2, 3, 4, 4], 0.0, 1.0, &mut rng);
        let y = up.forward(&x, Mode::Eval).unwrap();
        assert!(y.approx_eq(&x, 0.0));
    }

    #[test]
    fn error_handling() {
        let mut up = Upsample2d::new(2);
        assert!(up.forward(&Tensor::ones(&[2, 3]), Mode::Eval).is_err());
        assert!(Upsample2d::new(2)
            .backward(&Tensor::ones(&[1, 1, 4, 4]))
            .is_err());
        up.forward(&Tensor::ones(&[1, 1, 2, 2]), Mode::Eval)
            .unwrap();
        assert!(up.backward(&Tensor::ones(&[1, 1, 3, 3])).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_panics() {
        let _ = Upsample2d::new(0);
    }
}
