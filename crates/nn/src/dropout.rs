//! Dropout-family layers.
//!
//! These provide the Dropout-based Bayesian baselines the paper compares
//! against (SpinDrop uses conventional Dropout, SpatialSpinDrop uses
//! channel-wise / spatial Dropout). For Monte-Carlo Bayesian inference the
//! masks must also be resampled at *evaluation* time, so every layer takes an
//! `active_in_eval` flag: `false` gives ordinary regularization Dropout,
//! `true` gives MC-Dropout behaviour.

use crate::error::NnError;
use crate::layer::{Layer, Mode};
use crate::Result;
use invnorm_tensor::Tensor;
use seed_stream::SeedCell;

/// Per-layer RNG stream holder, so each dropout layer owns an independent,
/// reproducible random stream identified by a single `u64` seed.
mod seed_stream {
    use invnorm_tensor::Rng;

    /// Owns the per-layer RNG stream.
    #[derive(Debug, Clone)]
    pub struct SeedCell {
        rng: Rng,
    }

    impl SeedCell {
        pub fn new(seed: u64) -> Self {
            Self {
                rng: Rng::seed_from(seed),
            }
        }

        pub fn rng_mut(&mut self) -> &mut Rng {
            &mut self.rng
        }
    }
}

/// Standard (inverted) Dropout: each activation is zeroed with probability
/// `p` and survivors are scaled by `1 / (1 - p)`.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    active_in_eval: bool,
    seed: SeedCell,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a Dropout layer with drop probability `p`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 <= p < 1`.
    pub fn new(p: f32, active_in_eval: bool, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::Config(format!(
                "dropout probability must be in [0, 1), got {p}"
            )));
        }
        Ok(Self {
            p,
            active_in_eval,
            seed: SeedCell::new(seed),
            mask: None,
        })
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    fn active(&self, mode: Mode) -> bool {
        mode.is_train() || self.active_in_eval
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if !self.active(mode) || self.p == 0.0 {
            self.mask = None;
            return Ok(input.clone());
        }
        let keep_scale = 1.0 / (1.0 - self.p);
        let raw = self.seed.rng_mut().bernoulli_mask(input.numel(), self.p);
        let mask = Tensor::from_vec(raw, input.dims())?.scale(keep_scale);
        let out = input.mul(&mask)?;
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        match &self.mask {
            Some(mask) => Ok(grad_output.mul(mask)?),
            None => Ok(grad_output.clone()),
        }
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

/// Spatial (channel-wise) Dropout: entire feature maps are zeroed with
/// probability `p`. Works on `[N, C]`, `[N, C, L]` and `[N, C, H, W]`
/// activations; the mask is per `(sample, channel)`.
///
/// This is the Dropout granularity used by the SpatialSpinDrop baseline.
#[derive(Debug)]
pub struct SpatialDropout {
    p: f32,
    active_in_eval: bool,
    seed: SeedCell,
    mask: Option<Tensor>,
}

impl SpatialDropout {
    /// Creates a spatial-dropout layer with drop probability `p`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 <= p < 1`.
    pub fn new(p: f32, active_in_eval: bool, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::Config(format!(
                "dropout probability must be in [0, 1), got {p}"
            )));
        }
        Ok(Self {
            p,
            active_in_eval,
            seed: SeedCell::new(seed),
            mask: None,
        })
    }

    fn active(&self, mode: Mode) -> bool {
        mode.is_train() || self.active_in_eval
    }
}

impl Layer for SpatialDropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let d = input.dims();
        if d.len() < 2 {
            return Err(NnError::Config(format!(
                "SpatialDropout expects rank >= 2 input, got {d:?}"
            )));
        }
        if !self.active(mode) || self.p == 0.0 {
            self.mask = None;
            return Ok(input.clone());
        }
        let (n, c) = (d[0], d[1]);
        let spatial: usize = d[2..].iter().product::<usize>().max(1);
        let keep_scale = 1.0 / (1.0 - self.p);
        let channel_mask = self.seed.rng_mut().bernoulli_mask(n * c, self.p);
        let mut mask = Tensor::zeros(d);
        let md = mask.data_mut();
        for nc in 0..n * c {
            let value = channel_mask[nc] * keep_scale;
            for i in 0..spatial {
                md[nc * spatial + i] = value;
            }
        }
        let out = input.mul(&mask)?;
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        match &self.mask {
            Some(mask) => Ok(grad_output.mul(mask)?),
            None => Ok(grad_output.clone()),
        }
    }

    fn name(&self) -> &'static str {
        "SpatialDropout"
    }
}

/// Gaussian Dropout: multiplies activations by `N(1, σ²)` noise with
/// `σ² = p / (1 - p)`, the multiplicative-noise interpretation of Dropout.
#[derive(Debug)]
pub struct GaussianDropout {
    p: f32,
    active_in_eval: bool,
    seed: SeedCell,
    noise: Option<Tensor>,
}

impl GaussianDropout {
    /// Creates a Gaussian-dropout layer with rate `p`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 <= p < 1`.
    pub fn new(p: f32, active_in_eval: bool, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::Config(format!(
                "dropout probability must be in [0, 1), got {p}"
            )));
        }
        Ok(Self {
            p,
            active_in_eval,
            seed: SeedCell::new(seed),
            noise: None,
        })
    }

    fn active(&self, mode: Mode) -> bool {
        mode.is_train() || self.active_in_eval
    }
}

impl Layer for GaussianDropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if !self.active(mode) || self.p == 0.0 {
            self.noise = None;
            return Ok(input.clone());
        }
        let sigma = (self.p / (1.0 - self.p)).sqrt();
        let noise = Tensor::randn(input.dims(), 1.0, sigma, self.seed.rng_mut());
        let out = input.mul(&noise)?;
        self.noise = Some(noise);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        match &self.noise {
            Some(noise) => Ok(grad_output.mul(noise)?),
            None => Ok(grad_output.clone()),
        }
    }

    fn name(&self) -> &'static str {
        "GaussianDropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_probability() {
        assert!(Dropout::new(1.0, false, 0).is_err());
        assert!(Dropout::new(-0.1, false, 0).is_err());
        assert!(SpatialDropout::new(1.5, false, 0).is_err());
        assert!(GaussianDropout::new(1.0, false, 0).is_err());
    }

    #[test]
    fn dropout_inactive_in_eval_by_default() {
        let mut d = Dropout::new(0.5, false, 1).unwrap();
        let x = Tensor::ones(&[4, 4]);
        let y = d.forward(&x, Mode::Eval).unwrap();
        assert!(y.approx_eq(&x, 0.0));
        // Backward with no mask passes gradient through unchanged.
        let g = d.backward(&Tensor::ones(&[4, 4])).unwrap();
        assert!(g.approx_eq(&x, 0.0));
    }

    #[test]
    fn dropout_active_in_eval_when_requested() {
        let mut d = Dropout::new(0.5, true, 2).unwrap();
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, Mode::Eval).unwrap();
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 20, "expected some dropped activations, got {zeros}");
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut d = Dropout::new(0.3, false, 3).unwrap();
        let x = Tensor::ones(&[20_000]);
        let y = d.forward(&x, Mode::Train).unwrap();
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, false, 4).unwrap();
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let g = d.backward(&Tensor::ones(&[64])).unwrap();
        // Gradient must be zero exactly where the output was zeroed.
        for (yo, go) in y.data().iter().zip(g.data().iter()) {
            assert_eq!(*yo == 0.0, *go == 0.0);
        }
    }

    #[test]
    fn spatial_dropout_drops_whole_channels() {
        let mut d = SpatialDropout::new(0.5, false, 5).unwrap();
        let x = Tensor::ones(&[2, 8, 4, 4]);
        let y = d.forward(&x, Mode::Train).unwrap();
        for ni in 0..2 {
            for ci in 0..8 {
                let channel: Vec<f32> = (0..16).map(|i| y.data()[(ni * 8 + ci) * 16 + i]).collect();
                let all_zero = channel.iter().all(|&v| v == 0.0);
                let all_kept = channel.iter().all(|&v| v == 2.0); // 1/(1-0.5)
                assert!(
                    all_zero || all_kept,
                    "channel ({ni},{ci}) mixes dropped and kept values"
                );
            }
        }
    }

    #[test]
    fn spatial_dropout_handles_rank2_and_rejects_rank1() {
        let mut d = SpatialDropout::new(0.3, false, 6).unwrap();
        let x = Tensor::ones(&[10, 5]);
        assert!(d.forward(&x, Mode::Train).is_ok());
        assert!(d.forward(&Tensor::ones(&[10]), Mode::Train).is_err());
    }

    #[test]
    fn gaussian_dropout_is_multiplicative_noise() {
        let mut d = GaussianDropout::new(0.3, false, 7).unwrap();
        let x = Tensor::full(&[50_000], 2.0);
        let y = d.forward(&x, Mode::Train).unwrap();
        assert!((y.mean() - 2.0).abs() < 0.05);
        let expected_sigma = 2.0 * (0.3f32 / 0.7).sqrt();
        assert!((y.std() - expected_sigma).abs() < 0.05);
    }

    #[test]
    fn different_forward_passes_resample_masks() {
        let mut d = Dropout::new(0.5, true, 8).unwrap();
        let x = Tensor::ones(&[256]);
        let y1 = d.forward(&x, Mode::Eval).unwrap();
        let y2 = d.forward(&x, Mode::Eval).unwrap();
        assert!(!y1.approx_eq(&y2, 0.0), "masks should differ across passes");
    }

    #[test]
    fn zero_probability_is_identity() {
        let mut d = Dropout::new(0.0, true, 9).unwrap();
        let x = Tensor::ones(&[32]);
        assert!(d.forward(&x, Mode::Train).unwrap().approx_eq(&x, 0.0));
        let mut sd = SpatialDropout::new(0.0, true, 9).unwrap();
        assert!(
            sd.forward(&Tensor::ones(&[2, 3, 4]), Mode::Train)
                .unwrap()
                .numel()
                == 24
        );
    }
}
