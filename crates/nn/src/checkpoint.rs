//! Saving and restoring network parameters ("checkpoints").
//!
//! Networks in this workspace are trees of trait objects, so checkpoints are
//! stored positionally: [`save`] walks the parameters in `visit_params`
//! order and records each tensor's shape and data; [`load`] walks the same
//! order and copies the values back. A checkpoint is therefore valid for any
//! network with an architecturally identical parameter sequence — the same
//! property the experiment harness relies on when it rebuilds a model from a
//! factory on another thread.

use crate::error::{CheckpointFault, NnError};
use crate::layer::Layer;
use crate::Result;
use invnorm_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Format magic prefixed to every serialized [`Checkpoint`].
const MAGIC: [u8; 4] = *b"INCK";
/// Current serialization format version. Bump on any layout change; readers
/// reject other versions with [`CheckpointFault::VersionSkew`].
const VERSION: u32 = 1;

/// FNV-1a 64-bit hash, used as the content checksum of serialized
/// checkpoints (both the model checkpoints here and the Monte-Carlo sweep
/// checkpoints in `invnorm-imc`). Not cryptographic — it detects storage and
/// transit corruption, not tampering.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Splits `bytes` into the integrity header and payload, verifying magic,
/// version and checksum. Shared by [`Checkpoint::from_bytes`] and the sweep
/// checkpoints in `invnorm-imc`.
///
/// # Errors
///
/// Returns a typed [`NnError::Checkpoint`] on truncation, wrong magic,
/// version skew or checksum mismatch.
pub fn verify_frame(bytes: &[u8], magic: [u8; 4], version: u32) -> Result<&[u8]> {
    const HEADER: usize = 4 + 4 + 8;
    if bytes.len() < HEADER {
        return Err(NnError::Checkpoint(CheckpointFault::Truncated {
            needed: HEADER - bytes.len(),
            available: 0,
        }));
    }
    if bytes[..4] != magic {
        return Err(NnError::Checkpoint(CheckpointFault::BadMagic));
    }
    let got_version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if got_version != version {
        return Err(NnError::Checkpoint(CheckpointFault::VersionSkew {
            expected: version,
            got: got_version,
        }));
    }
    let expected = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let payload = &bytes[HEADER..];
    let got = fnv1a64(payload);
    if got != expected {
        return Err(NnError::Checkpoint(CheckpointFault::ChecksumMismatch {
            expected,
            got,
        }));
    }
    Ok(payload)
}

/// Prepends the integrity header (magic, version, FNV-1a checksum) to a
/// serialized payload. The inverse of [`verify_frame`].
pub fn frame(payload: Vec<u8>, magic: [u8; 4], version: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// A serializable snapshot of every learnable parameter of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    entries: Vec<CheckpointEntry>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CheckpointEntry {
    dims: Vec<usize>,
    data: Vec<f32>,
}

impl Checkpoint {
    /// Number of parameter tensors in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot contains no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar values stored.
    pub fn scalar_count(&self) -> usize {
        self.entries.iter().map(|e| e.data.len()).sum()
    }

    /// Serializes the checkpoint to a compact little-endian byte buffer:
    /// an integrity header (`INCK` magic, format version, FNV-1a payload
    /// checksum) followed by the payload (entry count, then per entry the
    /// rank, dims and f32 data).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for entry in &self.entries {
            out.extend_from_slice(&(entry.dims.len() as u64).to_le_bytes());
            for &d in &entry.dims {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            out.extend_from_slice(&(entry.data.len() as u64).to_le_bytes());
            for &v in &entry.data {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        frame(out, MAGIC, VERSION)
    }

    /// Parses a checkpoint previously produced by [`Checkpoint::to_bytes`],
    /// verifying the integrity header before trusting any of the payload.
    ///
    /// # Errors
    ///
    /// Returns a typed [`NnError::Checkpoint`] when the buffer is truncated,
    /// carries the wrong magic or format version, fails its checksum, or is
    /// internally inconsistent.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let payload = verify_frame(bytes, MAGIC, VERSION)?;
        let mut cursor = 0usize;
        let truncated = |cursor: usize, needed: usize| {
            NnError::Checkpoint(CheckpointFault::Truncated {
                needed,
                available: payload.len().saturating_sub(cursor),
            })
        };
        let read_u64 = |cursor: &mut usize| -> Result<u64> {
            let end = *cursor + 8;
            let slice = payload.get(*cursor..end).ok_or(truncated(*cursor, 8))?;
            *cursor = end;
            Ok(u64::from_le_bytes(slice.try_into().expect("8-byte slice")))
        };
        let entry_count = read_u64(&mut cursor)? as usize;
        let mut entries = Vec::with_capacity(entry_count.min(1024));
        for _ in 0..entry_count {
            let rank = read_u64(&mut cursor)? as usize;
            let mut dims = Vec::with_capacity(rank.min(16));
            for _ in 0..rank {
                dims.push(read_u64(&mut cursor)? as usize);
            }
            let len = read_u64(&mut cursor)? as usize;
            let expected: usize = dims.iter().product();
            if expected != len {
                return Err(NnError::Checkpoint(CheckpointFault::Mismatch {
                    field: "entry length",
                    expected: format!("{expected} (shape {dims:?})"),
                    got: len.to_string(),
                }));
            }
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                let end = cursor + 4;
                let slice = payload.get(cursor..end).ok_or(truncated(cursor, 4))?;
                cursor = end;
                data.push(f32::from_le_bytes(slice.try_into().expect("4-byte slice")));
            }
            entries.push(CheckpointEntry { dims, data });
        }
        if cursor != payload.len() {
            return Err(NnError::Checkpoint(CheckpointFault::Mismatch {
                field: "payload length",
                expected: cursor.to_string(),
                got: payload.len().to_string(),
            }));
        }
        Ok(Self { entries })
    }

    /// Writes the checkpoint to a file.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be written.
    pub fn save_file(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| NnError::Config(format!("failed to write checkpoint: {e}")))
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be read or parsed.
    pub fn load_file(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path)
            .map_err(|e| NnError::Config(format!("failed to read checkpoint: {e}")))?;
        Self::from_bytes(&bytes)
    }
}

/// Captures the current parameter values of a network.
pub fn save(network: &mut dyn Layer) -> Checkpoint {
    let mut entries = Vec::new();
    network.visit_params(&mut |p| {
        entries.push(CheckpointEntry {
            dims: p.value.dims().to_vec(),
            data: p.value.data().to_vec(),
        });
    });
    Checkpoint { entries }
}

/// Restores parameter values from a checkpoint into a network with an
/// identical parameter sequence.
///
/// # Errors
///
/// Returns an error when the parameter count or any tensor shape differs.
pub fn load(network: &mut dyn Layer, checkpoint: &Checkpoint) -> Result<()> {
    let mut index = 0usize;
    let mut failure: Option<NnError> = None;
    network.visit_params(&mut |p| {
        if failure.is_some() {
            return;
        }
        match checkpoint.entries.get(index) {
            Some(entry) if entry.dims == p.value.dims() => {
                match Tensor::from_vec(entry.data.clone(), &entry.dims) {
                    Ok(value) => p.value = value,
                    Err(e) => failure = Some(e.into()),
                }
            }
            Some(entry) => {
                failure = Some(NnError::Config(format!(
                    "checkpoint entry {index} has shape {:?} but the network expects {:?}",
                    entry.dims,
                    p.value.dims()
                )));
            }
            None => {
                failure = Some(NnError::Config(format!(
                    "checkpoint has {} entries but the network has more parameters",
                    checkpoint.entries.len()
                )));
            }
        }
        index += 1;
    });
    if let Some(e) = failure {
        return Err(e);
    }
    if index != checkpoint.entries.len() {
        return Err(NnError::Config(format!(
            "checkpoint has {} entries but the network consumed only {index}",
            checkpoint.entries.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::layer::Mode;
    use crate::linear::Linear;
    use crate::norm::BatchNorm;
    use crate::Sequential;
    use invnorm_tensor::Rng;

    fn network(seed: u64) -> Sequential {
        let mut rng = Rng::seed_from(seed);
        Sequential::new()
            .with(Box::new(Linear::new(6, 12, &mut rng)))
            .with(Box::new(BatchNorm::new(12)))
            .with(Box::new(Relu::new()))
            .with(Box::new(Linear::new(12, 3, &mut rng)))
    }

    #[test]
    fn save_load_round_trip_restores_outputs() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[4, 6], 0.0, 1.0, &mut rng);
        let mut original = network(10);
        let reference = original.forward(&x, Mode::Eval).unwrap();
        let checkpoint = save(&mut original);
        assert!(!checkpoint.is_empty());
        assert_eq!(checkpoint.scalar_count(), original.param_count());

        // A differently initialized network produces different outputs ...
        let mut other = network(99);
        assert!(!other
            .forward(&x, Mode::Eval)
            .unwrap()
            .approx_eq(&reference, 1e-6));
        // ... until the checkpoint is loaded.
        load(&mut other, &checkpoint).unwrap();
        assert!(other
            .forward(&x, Mode::Eval)
            .unwrap()
            .approx_eq(&reference, 1e-6));
    }

    #[test]
    fn byte_round_trip_preserves_checkpoint() {
        let mut net = network(3);
        let checkpoint = save(&mut net);
        let bytes = checkpoint.to_bytes();
        let parsed = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, checkpoint);
        assert_eq!(parsed.len(), checkpoint.len());
    }

    #[test]
    fn corrupted_buffers_are_rejected() {
        let mut net = network(4);
        let bytes = save(&mut net).to_bytes();
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0, 1, 2, 3]);
        assert!(Checkpoint::from_bytes(&extended).is_err());
        assert!(Checkpoint::from_bytes(&[1, 2]).is_err());
    }

    #[test]
    fn bit_flips_anywhere_in_the_payload_are_detected() {
        use crate::error::CheckpointFault;
        let mut net = network(8);
        let bytes = save(&mut net).to_bytes();
        // Flip one bit in several payload positions (past the 16-byte
        // header); every one must be caught by the content checksum.
        for pos in [16, 24, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            match Checkpoint::from_bytes(&corrupt) {
                Err(NnError::Checkpoint(CheckpointFault::ChecksumMismatch { .. })) => {}
                other => panic!("bit flip at {pos} not caught by checksum: {other:?}"),
            }
        }
        // A flipped checksum byte itself is also a mismatch.
        let mut corrupt = bytes.clone();
        corrupt[8] ^= 0x01;
        assert!(matches!(
            Checkpoint::from_bytes(&corrupt),
            Err(NnError::Checkpoint(
                CheckpointFault::ChecksumMismatch { .. }
            ))
        ));
    }

    #[test]
    fn truncation_magic_and_version_skew_are_typed() {
        use crate::error::CheckpointFault;
        let mut net = network(9);
        let bytes = save(&mut net).to_bytes();
        // Header-level truncation.
        assert!(matches!(
            Checkpoint::from_bytes(&bytes[..10]),
            Err(NnError::Checkpoint(CheckpointFault::Truncated { .. }))
        ));
        // Payload-level truncation: checksum recomputed over the shorter
        // payload cannot match the header.
        assert!(matches!(
            Checkpoint::from_bytes(&bytes[..bytes.len() - 5]),
            Err(NnError::Checkpoint(
                CheckpointFault::ChecksumMismatch { .. }
            ))
        ));
        // Wrong magic.
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&wrong_magic),
            Err(NnError::Checkpoint(CheckpointFault::BadMagic))
        ));
        // Future format version.
        let mut future = bytes.clone();
        future[4..8].copy_from_slice(&7u32.to_le_bytes());
        match Checkpoint::from_bytes(&future) {
            Err(NnError::Checkpoint(CheckpointFault::VersionSkew { expected, got })) => {
                assert_eq!(expected, 1);
                assert_eq!(got, 7);
            }
            other => panic!("version skew not detected: {other:?}"),
        }
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let mut net = network(5);
        let checkpoint = save(&mut net);
        // Network with a different hidden width cannot accept the checkpoint.
        let mut rng = Rng::seed_from(6);
        let mut wrong = Sequential::new()
            .with(Box::new(Linear::new(6, 8, &mut rng)))
            .with(Box::new(Linear::new(8, 3, &mut rng)));
        assert!(load(&mut wrong, &checkpoint).is_err());
        // Network with fewer parameters is also rejected.
        let mut smaller = Sequential::new().with(Box::new(Linear::new(6, 12, &mut rng)));
        assert!(load(&mut smaller, &checkpoint).is_err());
    }

    #[test]
    fn file_round_trip() {
        let mut net = network(7);
        let checkpoint = save(&mut net);
        let path = std::env::temp_dir().join("invnorm_checkpoint_test.bin");
        checkpoint.save_file(&path).unwrap();
        let loaded = Checkpoint::load_file(&path).unwrap();
        assert_eq!(loaded, checkpoint);
        let _ = std::fs::remove_file(&path);
        assert!(Checkpoint::load_file("/nonexistent/invnorm.bin").is_err());
    }
}
