//! Saving and restoring network parameters ("checkpoints").
//!
//! Networks in this workspace are trees of trait objects, so checkpoints are
//! stored positionally: [`save`] walks the parameters in `visit_params`
//! order and records each tensor's shape and data; [`load`] walks the same
//! order and copies the values back. A checkpoint is therefore valid for any
//! network with an architecturally identical parameter sequence — the same
//! property the experiment harness relies on when it rebuilds a model from a
//! factory on another thread.

use crate::error::NnError;
use crate::layer::Layer;
use crate::Result;
use invnorm_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of every learnable parameter of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    entries: Vec<CheckpointEntry>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CheckpointEntry {
    dims: Vec<usize>,
    data: Vec<f32>,
}

impl Checkpoint {
    /// Number of parameter tensors in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot contains no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar values stored.
    pub fn scalar_count(&self) -> usize {
        self.entries.iter().map(|e| e.data.len()).sum()
    }

    /// Serializes the checkpoint to a compact little-endian byte buffer
    /// (format: entry count, then per entry the rank, dims and f32 data).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for entry in &self.entries {
            out.extend_from_slice(&(entry.dims.len() as u64).to_le_bytes());
            for &d in &entry.dims {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            out.extend_from_slice(&(entry.data.len() as u64).to_le_bytes());
            for &v in &entry.data {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Parses a checkpoint previously produced by [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns an error when the buffer is truncated or internally
    /// inconsistent.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut cursor = 0usize;
        let read_u64 = |bytes: &[u8], cursor: &mut usize| -> Result<u64> {
            let end = *cursor + 8;
            let slice = bytes
                .get(*cursor..end)
                .ok_or_else(|| NnError::Config("checkpoint buffer truncated".into()))?;
            *cursor = end;
            Ok(u64::from_le_bytes(slice.try_into().expect("8-byte slice")))
        };
        let entry_count = read_u64(bytes, &mut cursor)? as usize;
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let rank = read_u64(bytes, &mut cursor)? as usize;
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(read_u64(bytes, &mut cursor)? as usize);
            }
            let len = read_u64(bytes, &mut cursor)? as usize;
            let expected: usize = dims.iter().product();
            if expected != len {
                return Err(NnError::Config(format!(
                    "checkpoint entry claims {len} values but shape {dims:?} implies {expected}"
                )));
            }
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                let end = cursor + 4;
                let slice = bytes
                    .get(cursor..end)
                    .ok_or_else(|| NnError::Config("checkpoint buffer truncated".into()))?;
                cursor = end;
                data.push(f32::from_le_bytes(slice.try_into().expect("4-byte slice")));
            }
            entries.push(CheckpointEntry { dims, data });
        }
        if cursor != bytes.len() {
            return Err(NnError::Config(
                "trailing bytes after checkpoint payload".into(),
            ));
        }
        Ok(Self { entries })
    }

    /// Writes the checkpoint to a file.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be written.
    pub fn save_file(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| NnError::Config(format!("failed to write checkpoint: {e}")))
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be read or parsed.
    pub fn load_file(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path)
            .map_err(|e| NnError::Config(format!("failed to read checkpoint: {e}")))?;
        Self::from_bytes(&bytes)
    }
}

/// Captures the current parameter values of a network.
pub fn save(network: &mut dyn Layer) -> Checkpoint {
    let mut entries = Vec::new();
    network.visit_params(&mut |p| {
        entries.push(CheckpointEntry {
            dims: p.value.dims().to_vec(),
            data: p.value.data().to_vec(),
        });
    });
    Checkpoint { entries }
}

/// Restores parameter values from a checkpoint into a network with an
/// identical parameter sequence.
///
/// # Errors
///
/// Returns an error when the parameter count or any tensor shape differs.
pub fn load(network: &mut dyn Layer, checkpoint: &Checkpoint) -> Result<()> {
    let mut index = 0usize;
    let mut failure: Option<NnError> = None;
    network.visit_params(&mut |p| {
        if failure.is_some() {
            return;
        }
        match checkpoint.entries.get(index) {
            Some(entry) if entry.dims == p.value.dims() => {
                match Tensor::from_vec(entry.data.clone(), &entry.dims) {
                    Ok(value) => p.value = value,
                    Err(e) => failure = Some(e.into()),
                }
            }
            Some(entry) => {
                failure = Some(NnError::Config(format!(
                    "checkpoint entry {index} has shape {:?} but the network expects {:?}",
                    entry.dims,
                    p.value.dims()
                )));
            }
            None => {
                failure = Some(NnError::Config(format!(
                    "checkpoint has {} entries but the network has more parameters",
                    checkpoint.entries.len()
                )));
            }
        }
        index += 1;
    });
    if let Some(e) = failure {
        return Err(e);
    }
    if index != checkpoint.entries.len() {
        return Err(NnError::Config(format!(
            "checkpoint has {} entries but the network consumed only {index}",
            checkpoint.entries.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::layer::Mode;
    use crate::linear::Linear;
    use crate::norm::BatchNorm;
    use crate::Sequential;
    use invnorm_tensor::Rng;

    fn network(seed: u64) -> Sequential {
        let mut rng = Rng::seed_from(seed);
        Sequential::new()
            .with(Box::new(Linear::new(6, 12, &mut rng)))
            .with(Box::new(BatchNorm::new(12)))
            .with(Box::new(Relu::new()))
            .with(Box::new(Linear::new(12, 3, &mut rng)))
    }

    #[test]
    fn save_load_round_trip_restores_outputs() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[4, 6], 0.0, 1.0, &mut rng);
        let mut original = network(10);
        let reference = original.forward(&x, Mode::Eval).unwrap();
        let checkpoint = save(&mut original);
        assert!(!checkpoint.is_empty());
        assert_eq!(checkpoint.scalar_count(), original.param_count());

        // A differently initialized network produces different outputs ...
        let mut other = network(99);
        assert!(!other
            .forward(&x, Mode::Eval)
            .unwrap()
            .approx_eq(&reference, 1e-6));
        // ... until the checkpoint is loaded.
        load(&mut other, &checkpoint).unwrap();
        assert!(other
            .forward(&x, Mode::Eval)
            .unwrap()
            .approx_eq(&reference, 1e-6));
    }

    #[test]
    fn byte_round_trip_preserves_checkpoint() {
        let mut net = network(3);
        let checkpoint = save(&mut net);
        let bytes = checkpoint.to_bytes();
        let parsed = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, checkpoint);
        assert_eq!(parsed.len(), checkpoint.len());
    }

    #[test]
    fn corrupted_buffers_are_rejected() {
        let mut net = network(4);
        let bytes = save(&mut net).to_bytes();
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0, 1, 2, 3]);
        assert!(Checkpoint::from_bytes(&extended).is_err());
        assert!(Checkpoint::from_bytes(&[1, 2]).is_err());
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let mut net = network(5);
        let checkpoint = save(&mut net);
        // Network with a different hidden width cannot accept the checkpoint.
        let mut rng = Rng::seed_from(6);
        let mut wrong = Sequential::new()
            .with(Box::new(Linear::new(6, 8, &mut rng)))
            .with(Box::new(Linear::new(8, 3, &mut rng)));
        assert!(load(&mut wrong, &checkpoint).is_err());
        // Network with fewer parameters is also rejected.
        let mut smaller = Sequential::new().with(Box::new(Linear::new(6, 12, &mut rng)));
        assert!(load(&mut smaller, &checkpoint).is_err());
    }

    #[test]
    fn file_round_trip() {
        let mut net = network(7);
        let checkpoint = save(&mut net);
        let path = std::env::temp_dir().join("invnorm_checkpoint_test.bin");
        checkpoint.save_file(&path).unwrap();
        let loaded = Checkpoint::load_file(&path).unwrap();
        assert_eq!(loaded, checkpoint);
        let _ = std::fs::remove_file(&path);
        assert!(Checkpoint::load_file("/nonexistent/invnorm.bin").is_err());
    }
}
