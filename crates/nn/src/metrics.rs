//! Evaluation metrics: classification accuracy, RMSE, intersection-over-union
//! and calibration measures.

use crate::error::NnError;
use crate::Result;
use invnorm_tensor::{ops, Tensor};

/// Fraction of rows whose argmax matches the target class.
///
/// `scores` is `[N, C]` (logits or probabilities), `targets` holds `N` class
/// indices.
///
/// # Errors
///
/// Returns an error when shapes and targets are inconsistent.
pub fn accuracy(scores: &Tensor, targets: &[usize]) -> Result<f32> {
    let predictions = ops::argmax_rows(scores)?;
    if predictions.len() != targets.len() {
        return Err(NnError::TargetMismatch {
            predictions: predictions.len(),
            targets: targets.len(),
        });
    }
    if targets.is_empty() {
        return Ok(0.0);
    }
    let correct = predictions
        .iter()
        .zip(targets.iter())
        .filter(|(p, t)| p == t)
        .count();
    Ok(correct as f32 / targets.len() as f32)
}

/// Root-mean-square error between two same-shaped tensors.
///
/// # Errors
///
/// Returns an error when the shapes differ.
pub fn rmse(predictions: &Tensor, targets: &Tensor) -> Result<f32> {
    if predictions.dims() != targets.dims() {
        return Err(NnError::TargetMismatch {
            predictions: predictions.numel(),
            targets: targets.numel(),
        });
    }
    if predictions.numel() == 0 {
        return Ok(0.0);
    }
    let diff = predictions.sub(targets)?;
    Ok((diff.sq_norm() / predictions.numel() as f32).sqrt())
}

/// Binary intersection-over-union between a probability map and a 0/1 mask,
/// thresholding the probabilities at `threshold`.
///
/// Returns 1.0 when both prediction and target are empty (the conventional
/// "perfect match of nothing").
///
/// # Errors
///
/// Returns an error when the shapes differ.
pub fn binary_iou(probabilities: &Tensor, mask: &Tensor, threshold: f32) -> Result<f32> {
    if probabilities.dims() != mask.dims() {
        return Err(NnError::TargetMismatch {
            predictions: probabilities.numel(),
            targets: mask.numel(),
        });
    }
    let mut intersection = 0usize;
    let mut union = 0usize;
    for (&p, &t) in probabilities.data().iter().zip(mask.data().iter()) {
        let pred = p >= threshold;
        let truth = t >= 0.5;
        if pred && truth {
            intersection += 1;
        }
        if pred || truth {
            union += 1;
        }
    }
    Ok(if union == 0 {
        1.0
    } else {
        intersection as f32 / union as f32
    })
}

/// Mean IoU over the foreground and background classes (the segmentation
/// metric the paper reports for DRIVE / U-Net).
///
/// # Errors
///
/// Returns an error when the shapes differ.
pub fn mean_iou(probabilities: &Tensor, mask: &Tensor, threshold: f32) -> Result<f32> {
    let fg = binary_iou(probabilities, mask, threshold)?;
    // Background IoU: invert both.
    let inv_prob = probabilities.map(|p| 1.0 - p);
    let inv_mask = mask.map(|t| 1.0 - t);
    let bg = binary_iou(&inv_prob, &inv_mask, 1.0 - threshold)?;
    Ok(0.5 * (fg + bg))
}

/// Expected calibration error with equal-width confidence bins.
///
/// `probs` is `[N, C]` with rows summing to one.
///
/// # Errors
///
/// Returns an error when shapes/targets are inconsistent.
pub fn expected_calibration_error(probs: &Tensor, targets: &[usize], bins: usize) -> Result<f32> {
    let (n, _c) = ops::as_matrix_dims(probs)?;
    if targets.len() != n {
        return Err(NnError::TargetMismatch {
            predictions: n,
            targets: targets.len(),
        });
    }
    if n == 0 || bins == 0 {
        return Ok(0.0);
    }
    let predictions = ops::argmax_rows(probs)?;
    let confidences: Vec<f32> = (0..n)
        .map(|i| {
            let row = &probs.data()[i * probs.dims()[1]..(i + 1) * probs.dims()[1]];
            row.iter().copied().fold(f32::NEG_INFINITY, f32::max)
        })
        .collect();
    let mut bin_conf = vec![0.0f32; bins];
    let mut bin_acc = vec![0.0f32; bins];
    let mut bin_count = vec![0usize; bins];
    for i in 0..n {
        let b = ((confidences[i] * bins as f32) as usize).min(bins - 1);
        bin_conf[b] += confidences[i];
        bin_acc[b] += if predictions[i] == targets[i] {
            1.0
        } else {
            0.0
        };
        bin_count[b] += 1;
    }
    let mut ece = 0.0f32;
    for b in 0..bins {
        if bin_count[b] > 0 {
            let conf = bin_conf[b] / bin_count[b] as f32;
            let acc = bin_acc[b] / bin_count[b] as f32;
            ece += (bin_count[b] as f32 / n as f32) * (conf - acc).abs();
        }
    }
    Ok(ece)
}

/// Brier score of probabilistic classification (`[N, C]` probabilities versus
/// integer targets); lower is better.
///
/// # Errors
///
/// Returns an error when shapes/targets are inconsistent.
pub fn brier_score(probs: &Tensor, targets: &[usize]) -> Result<f32> {
    let (n, c) = ops::as_matrix_dims(probs)?;
    if targets.len() != n {
        return Err(NnError::TargetMismatch {
            predictions: n,
            targets: targets.len(),
        });
    }
    if n == 0 {
        return Ok(0.0);
    }
    let mut total = 0.0f32;
    for (i, &t) in targets.iter().enumerate() {
        for j in 0..c {
            let y = if j == t { 1.0 } else { 0.0 };
            total += (probs.data()[i * c + j] - y).powi(2);
        }
    }
    Ok(total / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        let scores = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]).unwrap();
        assert_eq!(accuracy(&scores, &[0, 1, 0]).unwrap(), 1.0);
        assert!((accuracy(&scores, &[0, 1, 1]).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert!(accuracy(&scores, &[0, 1]).is_err());
    }

    #[test]
    fn rmse_basic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 4.0, 3.0], &[3]).unwrap();
        assert!((rmse(&a, &b).unwrap() - (4.0f32 / 3.0).sqrt()).abs() < 1e-6);
        assert_eq!(rmse(&a, &a).unwrap(), 0.0);
        assert!(rmse(&a, &Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn iou_values() {
        let probs = Tensor::from_vec(vec![0.9, 0.8, 0.1, 0.2], &[4]).unwrap();
        let mask = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[4]).unwrap();
        // Predicted set {0,1}, truth {0,3}: intersection 1, union 3.
        assert!((binary_iou(&probs, &mask, 0.5).unwrap() - 1.0 / 3.0).abs() < 1e-6);
        // Perfect prediction.
        assert_eq!(binary_iou(&mask, &mask, 0.5).unwrap(), 1.0);
        // Empty prediction and mask.
        let empty = Tensor::zeros(&[4]);
        assert_eq!(binary_iou(&empty, &empty, 0.5).unwrap(), 1.0);
    }

    #[test]
    fn mean_iou_combines_foreground_and_background() {
        let mask = Tensor::from_vec(vec![1.0, 1.0, 0.0, 0.0], &[4]).unwrap();
        let perfect = mean_iou(&mask, &mask, 0.5).unwrap();
        assert!((perfect - 1.0).abs() < 1e-6);
        let inverted = mask.map(|v| 1.0 - v);
        let worst = mean_iou(&inverted, &mask, 0.5).unwrap();
        assert!(worst < 0.01);
    }

    #[test]
    fn ece_perfectly_calibrated_and_overconfident() {
        // Overconfident and wrong: high ECE.
        let wrong = Tensor::from_vec(vec![0.99, 0.01, 0.99, 0.01], &[2, 2]).unwrap();
        let ece_wrong = expected_calibration_error(&wrong, &[1, 1], 10).unwrap();
        assert!(ece_wrong > 0.9);
        // Confident and right: low ECE.
        let right = expected_calibration_error(&wrong, &[0, 0], 10).unwrap();
        assert!(right < 0.05);
        assert_eq!(expected_calibration_error(&wrong, &[0, 0], 0).unwrap(), 0.0);
    }

    #[test]
    fn brier_score_bounds() {
        let perfect = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(brier_score(&perfect, &[0, 1]).unwrap(), 0.0);
        let worst = brier_score(&perfect, &[1, 0]).unwrap();
        assert!((worst - 2.0).abs() < 1e-6);
        assert!(brier_score(&perfect, &[0]).is_err());
    }
}
