//! Convolution layers (2-D and 1-D) wrapping the kernels in
//! [`invnorm_tensor::conv`].

use crate::error::NnError;
use crate::layer::{BatchedParam, BatchedParamView, Layer, Mode, Param};
use crate::plan::{PlanArenas, PlanCtx, PlanParamView, PlanShape, PlannedWeight};
use crate::Result;
use invnorm_tensor::conv::{self, conv_out_shape, Conv2dSpec};
use invnorm_tensor::gemm::{gemm_prepacked_ab, gemm_prepacked_b, PackedA};
use invnorm_tensor::telemetry;
use invnorm_tensor::{ArenaSlot, Rng, Scratch, Tensor};

/// 2-D convolution layer over `[N, C, H, W]` activations.
///
/// Kaiming-uniform initialization, square kernels, symmetric padding.
///
/// Evaluation-mode forwards run through the zero-alloc scratch path
/// ([`conv::conv2d_forward_with_scratch`]): the im2col patch matrix and GEMM
/// staging buffers are reused across calls, which is what the Monte-Carlo
/// fault-simulation hot loop repeatedly exercises. Training-mode forwards
/// retain the patch matrix for the backward pass as before.
#[derive(Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    spec: Conv2dSpec,
    weight: Param,
    bias: Option<Param>,
    cached_cols: Option<Tensor>,
    cached_input_dims: Option<Vec<usize>>,
    scratch: Scratch,
    batched: Option<Conv2dBatched>,
    plan: Option<Conv2dPlan>,
}

/// Compiled-plan state: arena slots for the im2col patch matrix and the
/// GEMM staging buffer, the cached packed kernel operand with realization
/// bookkeeping (one panel per stacked realization for batched plans), and
/// the cached packed patch panel for frozen (run-invariant) inputs.
#[derive(Debug)]
struct Conv2dPlan {
    cols: ArenaSlot,
    om: ArenaSlot,
    weight: PlannedWeight,
    packed_a: PackedA,
    a_gen: u64,
    plan_scratch: Scratch,
    /// Stacked realizations per forward (1 for ordinary plans).
    batch: usize,
    /// Dims of one realization's tile of the stacked input edge (frozen
    /// inputs unfold only the first tile — every tile is identical).
    tile_dims: Vec<usize>,
}

/// Batched-eval state: stacked kernel realizations plus the reusable packed
/// activation panel shared across them.
#[derive(Debug, Default)]
struct Conv2dBatched {
    weights: BatchedParam,
    packed: PackedA,
}

impl Conv2d {
    /// Creates a 2-D convolution with bias.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng,
    ) -> Self {
        Self::with_bias(in_channels, out_channels, kernel, stride, pad, true, rng)
    }

    /// Creates a 2-D convolution, optionally without bias (the usual choice
    /// when the convolution is followed by a normalization layer).
    pub fn with_bias(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut Rng,
    ) -> Self {
        let fan_in = (in_channels * kernel * kernel) as f32;
        let bound = 1.0 / fan_in.sqrt();
        let weight = Tensor::rand_uniform(
            &[out_channels, in_channels, kernel, kernel],
            -bound,
            bound,
            rng,
        );
        let bias = if bias {
            Some(Param::new(Tensor::rand_uniform(
                &[out_channels],
                -bound,
                bound,
                rng,
            )))
        } else {
            None
        };
        Self {
            in_channels,
            out_channels,
            spec: Conv2dSpec::new(kernel, stride, pad),
            weight: Param::new(weight),
            bias,
            cached_cols: None,
            cached_input_dims: None,
            scratch: Scratch::new(),
            batched: None,
            plan: None,
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// Immutable access to the kernel parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the kernel parameter (used by quantization wrappers
    /// and fault injection).
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Immutable access to the bias parameter (used by the quantized-layer
    /// conversion path).
    pub fn bias(&self) -> Option<&Param> {
        self.bias.as_ref()
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.rank() != 4 || input.dims()[1] != self.in_channels {
            return Err(NnError::Config(format!(
                "Conv2d expects [N, {}, H, W], got {:?}",
                self.in_channels,
                input.dims()
            )));
        }
        if !mode.is_train() {
            // Inference: no backward pass will follow, so skip retaining the
            // patch matrix and reuse the scratch buffers (zero allocations
            // besides the output). Clear any stale training cache so a
            // backward call cannot silently use gradients of older inputs.
            self.cached_cols = None;
            self.cached_input_dims = None;
            return Ok(conv::conv2d_forward_with_scratch(
                input,
                &self.weight.value,
                self.bias.as_ref().map(|b| &b.value),
                &self.spec,
                &mut self.scratch,
            )?);
        }
        let fwd = conv::conv2d_forward(
            input,
            &self.weight.value,
            self.bias.as_ref().map(|b| &b.value),
            &self.spec,
        )?;
        self.cached_cols = Some(fwd.cols);
        self.cached_input_dims = Some(input.dims().to_vec());
        Ok(fwd.output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cols = self
            .cached_cols
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Conv2d"))?;
        let input_dims = self
            .cached_input_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Conv2d"))?;
        // Scratch-backed backward: gradient staging buffers are reused across
        // steps and the weight/bias gradients accumulate in place, so the
        // steady-state training loop allocates only the returned input
        // gradient.
        Ok(conv::conv2d_backward_into(
            grad_output,
            cols,
            &self.weight.value,
            input_dims,
            &self.spec,
            &mut self.weight.grad,
            self.bias.as_mut().map(|b| &mut b.grad),
            &mut self.scratch,
        )?)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        if let Some(bias) = &mut self.bias {
            visitor(bias);
        }
    }

    fn begin_batched(&mut self, batch: usize) -> Result<()> {
        let state = self.batched.get_or_insert_with(Conv2dBatched::default);
        state.weights.reset(&self.weight.value, batch);
        Ok(())
    }

    fn end_batched(&mut self) {
        self.batched = None;
    }

    fn visit_batched(&mut self, visitor: &mut dyn FnMut(BatchedParamView<'_>)) {
        if let Some(state) = &mut self.batched {
            visitor(BatchedParamView {
                index: 0,
                clean: &self.weight.value,
                stacked: &mut state.weights,
            });
        }
    }

    fn forward_batched(
        &mut self,
        input: &Tensor,
        shared: bool,
        batch: usize,
        _mode: Mode,
    ) -> Result<(Tensor, bool)> {
        if input.rank() != 4 || input.dims()[1] != self.in_channels {
            return Err(NnError::Config(format!(
                "Conv2d expects [N, {}, H, W], got {:?}",
                self.in_channels,
                input.dims()
            )));
        }
        let state = self.batched.as_mut().ok_or_else(|| {
            NnError::Config("Conv2d::forward_batched called without begin_batched".into())
        })?;
        if state.weights.batch() != batch {
            return Err(NnError::Config(format!(
                "Conv2d has {} staged weight realizations, expected {batch}",
                state.weights.batch()
            )));
        }
        let out = conv::conv2d_forward_batched(
            input,
            shared,
            batch,
            state.weights.data(),
            self.weight.value.dims(),
            self.bias.as_ref().map(|b| &b.value),
            &self.spec,
            &mut state.packed,
            &mut self.scratch,
        )?;
        Ok((out, false))
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        let batch = arenas.batch();
        if input.dims.len() != 4
            || input.dims[1] != self.in_channels
            || !input.dims[0].is_multiple_of(batch)
        {
            return Err(NnError::Config(format!(
                "Conv2d expects [N, {}, H, W] (N divisible by the plan batch {batch}), got {:?}",
                self.in_channels, input.dims
            )));
        }
        let shape = conv_out_shape(&input.dims, &self.spec)?;
        let oc = self.out_channels;
        let mut tile_dims = input.dims.clone();
        tile_dims[0] /= batch;
        self.plan = Some(Conv2dPlan {
            cols: arenas.f.reserve(shape.rows * shape.patch),
            // GEMM staging: sized for the fused wide `[rows/B, B·oc]`
            // product of a frozen layer; the per-realization path reuses
            // its `[rows/B, oc]` prefix across the stack.
            om: arenas.f.reserve(shape.rows / batch * oc * batch),
            weight: PlannedWeight::pack_batched(self.weight.value.data(), shape.patch, oc, batch),
            packed_a: PackedA::new(),
            a_gen: 0,
            plan_scratch: Scratch::new(),
            batch,
            tile_dims,
        });
        Ok(PlanShape {
            slot: arenas.f.reserve(shape.output_dims(oc).iter().product()),
            dims: shape.output_dims(oc).to_vec(),
        })
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let state = self.plan.as_mut().ok_or_else(|| {
            NnError::Config("Conv2d::plan_forward called without plan_compile".into())
        })?;
        let shape = conv_out_shape(&input.dims, &self.spec)?;
        let oc = self.out_channels;
        let batch = state.batch;
        let n_per = shape.n / batch;
        let rows_per = shape.rows / batch;
        let per_out = n_per * oc * shape.oh * shape.ow;
        if ctx.frozen && batch > 1 {
            // Fused wide product for the frozen first layer: the stacked
            // input tiles are identical, so ONE cached patch panel meets the
            // wide stacked kernel operand in a single `[rows, B·oc]` GEMM;
            // the strided columns are then re-laid out per realization.
            let wide_w = state.weight.refresh_wide();
            let [x, cols, om, out] =
                arenas
                    .f
                    .many_mut([input.slot, state.cols, state.om, output.slot]);
            if state.a_gen != ctx.input_gen {
                telemetry::count(telemetry::Counter::FrozenInputMisses, 1);
                conv::im2col_slice_into(
                    &x[..state.tile_dims.iter().product()],
                    &state.tile_dims,
                    &self.spec,
                    &mut cols[..rows_per * shape.patch],
                )?;
                state.packed_a.pack(
                    false,
                    &cols[..rows_per * shape.patch],
                    rows_per,
                    shape.patch,
                );
                state.a_gen = ctx.input_gen;
            } else {
                telemetry::count(telemetry::Counter::FrozenInputHits, 1);
            }
            telemetry::count(telemetry::Counter::WideGemms, 1);
            gemm_prepacked_ab(&state.packed_a, wide_w, 1.0, 0.0, om);
            for b in 0..batch {
                conv::relayout_nchw_strided(
                    om,
                    batch * oc,
                    b * oc,
                    self.bias.as_ref().map(|bias| &bias.value),
                    n_per,
                    oc,
                    shape.oh,
                    shape.ow,
                    &mut out[b * per_out..][..per_out],
                );
            }
            return Ok(());
        }
        // Bring the cached packed operands up to date with this realization
        // batch (cell scatter / dirty-row re-packing / uniform-scale).
        state.weight.refresh_all();
        let [x, cols, om, out] = arenas
            .f
            .many_mut([input.slot, state.cols, state.om, output.slot]);
        if ctx.frozen {
            // Frozen plan input: unfold + pack the patch panel once per
            // `load_input`, then reuse it for every realization.
            if state.a_gen != ctx.input_gen {
                telemetry::count(telemetry::Counter::FrozenInputMisses, 1);
                conv::im2col_slice_into(
                    &x[..state.tile_dims.iter().product()],
                    &state.tile_dims,
                    &self.spec,
                    &mut cols[..rows_per * shape.patch],
                )?;
                state.packed_a.pack(
                    false,
                    &cols[..rows_per * shape.patch],
                    rows_per,
                    shape.patch,
                );
                state.a_gen = ctx.input_gen;
            } else {
                telemetry::count(telemetry::Counter::FrozenInputHits, 1);
            }
            for b in 0..batch {
                gemm_prepacked_ab(
                    &state.packed_a,
                    state.weight.panel(b),
                    1.0,
                    0.0,
                    &mut om[..rows_per * oc],
                );
                conv::relayout_nchw_into(
                    &om[..rows_per * oc],
                    self.bias.as_ref().map(|bias| &bias.value),
                    n_per,
                    oc,
                    shape.oh,
                    shape.ow,
                    &mut out[b * per_out..][..per_out],
                );
            }
        } else {
            // Per-realization inputs: one unfold of the whole stacked batch
            // (im2col is per-sample, so this equals per-realization
            // unfolds), then each realization multiplies its own row block
            // against its own cached panel.
            conv::im2col_slice_into(x, &input.dims, &self.spec, cols)?;
            for b in 0..batch {
                gemm_prepacked_b(
                    false,
                    rows_per,
                    1.0,
                    &cols[b * rows_per * shape.patch..][..rows_per * shape.patch],
                    state.weight.panel(b),
                    0.0,
                    &mut om[..rows_per * oc],
                    &mut state.plan_scratch,
                );
                conv::relayout_nchw_into(
                    &om[..rows_per * oc],
                    self.bias.as_ref().map(|bias| &bias.value),
                    n_per,
                    oc,
                    shape.oh,
                    shape.ow,
                    &mut out[b * per_out..][..per_out],
                );
            }
        }
        Ok(())
    }

    fn plan_end(&mut self) {
        self.plan = None;
    }

    fn visit_plan_params(&mut self, visitor: &mut dyn FnMut(PlanParamView<'_>)) {
        if let Some(state) = &mut self.plan {
            visitor(state.weight.view(0, &self.weight.value));
        }
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

/// 1-D convolution layer over `[N, C, L]` activations, implemented by lifting
/// to the 2-D kernels with height 1 (so it shares the tested code path).
#[derive(Debug)]
pub struct Conv1d {
    inner: Conv2d,
    pad_width: usize,
    plan: Option<Conv1dPlan>,
}

/// Compiled-plan state: the lifted, padded input edge feeding the inner 2-D
/// convolution, and the inner convolution's output edge.
#[derive(Debug)]
struct Conv1dPlan {
    padded: PlanShape,
    inner_out: PlanShape,
}

impl Conv1d {
    /// Creates a 1-D convolution with bias.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng,
    ) -> Self {
        Self::with_bias(in_channels, out_channels, kernel, stride, pad, true, rng)
    }

    /// Creates a 1-D convolution, optionally without bias.
    pub fn with_bias(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut Rng,
    ) -> Self {
        // Build a height-1 2-D convolution: kernel [OC, IC, 1, K].
        let mut inner = Conv2d::with_bias(in_channels, out_channels, 1, stride, 0, bias, rng);
        let fan_in = (in_channels * kernel) as f32;
        let bound = 1.0 / fan_in.sqrt();
        inner.weight = Param::new(Tensor::rand_uniform(
            &[out_channels, in_channels, 1, kernel],
            -bound,
            bound,
            rng,
        ));
        inner.spec = Conv2dSpec {
            kh: 1,
            kw: kernel,
            stride,
            pad: 0, // padding handled manually on the length axis below
        };
        Self {
            inner,
            pad_width: pad,
            plan: None,
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.inner.in_channels()
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.inner.out_channels()
    }
}

// `pad_width` lives outside `Conv2dSpec` because 1-D padding must only apply
// to the length axis, while `Conv2dSpec.pad` pads both spatial axes.
impl Conv1d {
    fn pad_input(&self, x: &Tensor) -> Result<Tensor> {
        if self.pad_width == 0 {
            return Ok(x.clone());
        }
        let d = x.dims();
        let (n, c, l) = (d[0], d[1], d[2]);
        let new_l = l + 2 * self.pad_width;
        let mut out = Tensor::zeros(&[n, c, new_l]);
        let od = out.data_mut();
        let xd = x.data();
        for ni in 0..n {
            for ci in 0..c {
                let src = (ni * c + ci) * l;
                let dst = (ni * c + ci) * new_l + self.pad_width;
                od[dst..dst + l].copy_from_slice(&xd[src..src + l]);
            }
        }
        Ok(out)
    }

    fn unpad_grad(&self, g: &Tensor) -> Result<Tensor> {
        if self.pad_width == 0 {
            return Ok(g.clone());
        }
        let d = g.dims();
        let (n, c, padded_l) = (d[0], d[1], d[2]);
        let l = padded_l - 2 * self.pad_width;
        let mut out = Tensor::zeros(&[n, c, l]);
        let od = out.data_mut();
        let gd = g.data();
        for ni in 0..n {
            for ci in 0..c {
                let src = (ni * c + ci) * padded_l + self.pad_width;
                let dst = (ni * c + ci) * l;
                od[dst..dst + l].copy_from_slice(&gd[src..src + l]);
            }
        }
        Ok(out)
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.rank() != 3 {
            return Err(NnError::Config(format!(
                "Conv1d expects [N, C, L], got {:?}",
                input.dims()
            )));
        }
        let padded = self.pad_input(input)?;
        let lifted = invnorm_tensor::conv::lift_1d(&padded)?;
        let out = self.inner.forward(&lifted, mode)?;
        Ok(invnorm_tensor::conv::squeeze_1d(&out)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let lifted = invnorm_tensor::conv::lift_1d(grad_output)?;
        let grad_in = self.inner.backward(&lifted)?;
        let squeezed = invnorm_tensor::conv::squeeze_1d(&grad_in)?;
        self.unpad_grad(&squeezed)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.inner.visit_params(visitor);
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        if input.dims.len() != 3 {
            return Err(NnError::Config(format!(
                "Conv1d expects [N, C, L], got {:?}",
                input.dims
            )));
        }
        let (n, c, l) = (input.dims[0], input.dims[1], input.dims[2]);
        let padded_l = l + 2 * self.pad_width;
        // The padded, lifted `[N, C, 1, L']` edge feeding the inner conv.
        // Padding positions stay at the arena's zero initialization forever;
        // forwards only rewrite the interior.
        let padded = PlanShape {
            slot: arenas.f.reserve(n * c * padded_l),
            dims: vec![n, c, 1, padded_l],
        };
        let inner_out = self.inner.plan_compile(&padded, arenas)?;
        let d = inner_out.dims.clone();
        let squeezed = PlanShape {
            slot: inner_out.slot,
            dims: vec![d[0], d[1], d[3]],
        };
        self.plan = Some(Conv1dPlan { padded, inner_out });
        Ok(squeezed)
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        _output: &PlanShape,
        ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let state = self.plan.as_ref().ok_or_else(|| {
            NnError::Config("Conv1d::plan_forward called without plan_compile".into())
        })?;
        let (n, c, l) = (input.dims[0], input.dims[1], input.dims[2]);
        let padded_l = l + 2 * self.pad_width;
        {
            let [x, padded_buf] = arenas.f.many_mut([input.slot, state.padded.slot]);
            for nc in 0..n * c {
                padded_buf[nc * padded_l + self.pad_width..][..l]
                    .copy_from_slice(&x[nc * l..(nc + 1) * l]);
            }
        }
        // The padded edge is a pure copy of the plan input, so the frozen
        // property carries through to the inner convolution's caches.
        self.inner
            .plan_forward(&state.padded, &state.inner_out, ctx, arenas)
    }

    fn plan_end(&mut self) {
        self.plan = None;
        self.inner.plan_end();
    }

    fn visit_plan_params(&mut self, visitor: &mut dyn FnMut(PlanParamView<'_>)) {
        self.inner.visit_plan_params(visitor);
    }

    fn name(&self) -> &'static str {
        "Conv1d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_shapes() {
        let mut rng = Rng::seed_from(1);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 8, 8, 8]);

        let mut strided = Conv2d::new(3, 4, 3, 2, 1, &mut rng);
        let y = strided.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 4, 4, 4]);
    }

    #[test]
    fn conv2d_gradients_match_numerical() {
        let mut rng = Rng::seed_from(2);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        let grad_in = conv.backward(&Tensor::ones(y.dims())).unwrap();

        let eps = 1e-2f32;
        for idx in [0usize, 10, 30, 49] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = conv.forward(&xp, Mode::Train).unwrap().sum();
            let lm = conv.forward(&xm, Mode::Train).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad_in.data()[idx]).abs() < 2e-2,
                "input grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn conv2d_rejects_wrong_channels() {
        let mut rng = Rng::seed_from(3);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
        assert!(conv
            .forward(&Tensor::zeros(&[1, 2, 8, 8]), Mode::Eval)
            .is_err());
        assert!(matches!(
            conv.backward(&Tensor::zeros(&[1, 4, 8, 8])),
            Err(NnError::BackwardBeforeForward(_))
        ));
    }

    #[test]
    fn conv1d_shapes_and_padding() {
        let mut rng = Rng::seed_from(4);
        let mut conv = Conv1d::new(2, 4, 5, 1, 2, &mut rng);
        let x = Tensor::randn(&[3, 2, 16], 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[3, 4, 16]);

        let mut strided = Conv1d::new(2, 4, 4, 4, 0, &mut rng);
        let y = strided.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[3, 4, 4]);
    }

    #[test]
    fn conv1d_backward_shape_matches_input() {
        let mut rng = Rng::seed_from(5);
        let mut conv = Conv1d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 2, 10], 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        let gx = conv.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn conv1d_gradient_numerical_check() {
        let mut rng = Rng::seed_from(6);
        let mut conv = Conv1d::new(1, 2, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 1, 8], 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        let grad_in = conv.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 3, 7] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = conv.forward(&xp, Mode::Train).unwrap().sum();
            let lm = conv.forward(&xm, Mode::Train).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad_in.data()[idx]).abs() < 2e-2,
                "conv1d input grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn param_counts() {
        let mut rng = Rng::seed_from(7);
        let mut conv = Conv2d::with_bias(3, 8, 3, 1, 1, false, &mut rng);
        assert_eq!(conv.param_count(), 8 * 3 * 3 * 3);
        let mut conv1d = Conv1d::new(2, 4, 5, 1, 2, &mut rng);
        assert_eq!(conv1d.param_count(), 4 * 2 * 5 + 4);
    }
}
