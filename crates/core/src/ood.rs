//! Out-of-distribution (OOD) detection by NLL thresholding (paper Sec. IV-E
//! and Fig. 7).
//!
//! The detector is calibrated on in-distribution (ID) test data: the
//! threshold is the mean per-sample negative log-likelihood of the Bayesian
//! prediction on that data. At inference time a sample whose NLL exceeds the
//! threshold is flagged as OOD. The paper reports the fraction of OOD inputs
//! detected this way for rotated images and for images corrupted with uniform
//! noise.

use crate::bayesian::ClassificationPrediction;
use crate::Result;
use invnorm_nn::NnError;
use serde::{Deserialize, Serialize};

/// NLL-threshold OOD detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OodDetector {
    threshold: f32,
}

impl OodDetector {
    /// Creates a detector with an explicit threshold.
    pub fn with_threshold(threshold: f32) -> Self {
        Self { threshold }
    }

    /// Calibrates the threshold as the mean per-sample NLL of an
    /// in-distribution prediction, as done in the paper.
    ///
    /// # Errors
    ///
    /// Returns an error when the targets do not match the prediction batch.
    pub fn calibrate(prediction: &ClassificationPrediction, targets: &[usize]) -> Result<Self> {
        let nlls = prediction.per_sample_nll(targets)?;
        if nlls.is_empty() {
            return Err(NnError::Config(
                "cannot calibrate OOD detector on an empty batch".into(),
            ));
        }
        let threshold = nlls.iter().sum::<f32>() / nlls.len() as f32;
        Ok(Self { threshold })
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Flags every sample whose NLL exceeds the threshold.
    pub fn flag(&self, per_sample_nll: &[f32]) -> Vec<bool> {
        per_sample_nll
            .iter()
            .map(|&nll| nll > self.threshold)
            .collect()
    }

    /// Fraction of samples flagged as OOD (the paper's "detection rate" when
    /// applied to genuinely OOD data, and the false-positive rate when applied
    /// to ID data).
    pub fn detection_rate(&self, per_sample_nll: &[f32]) -> f32 {
        if per_sample_nll.is_empty() {
            return 0.0;
        }
        let flagged = self.flag(per_sample_nll).iter().filter(|&&f| f).count();
        flagged as f32 / per_sample_nll.len() as f32
    }

    /// Convenience: detection rate straight from a prediction and targets.
    ///
    /// # Errors
    ///
    /// Returns an error when the targets do not match the prediction batch.
    pub fn detection_rate_for(
        &self,
        prediction: &ClassificationPrediction,
        targets: &[usize],
    ) -> Result<f32> {
        Ok(self.detection_rate(&prediction.per_sample_nll(targets)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_tensor::Tensor;

    fn prediction_from_probs(probs: Vec<f32>, n: usize, c: usize) -> ClassificationPrediction {
        ClassificationPrediction {
            mean_probs: Tensor::from_vec(probs, &[n, c]).unwrap(),
            entropy: vec![0.0; n],
            variance: vec![0.0; n],
            passes: 1,
        }
    }

    #[test]
    fn calibration_uses_mean_nll() {
        // Two samples with p(correct) = 0.9 and 0.5.
        let pred = prediction_from_probs(vec![0.9, 0.1, 0.5, 0.5], 2, 2);
        let det = OodDetector::calibrate(&pred, &[0, 0]).unwrap();
        let expected = (-(0.9f32).ln() - (0.5f32).ln()) / 2.0;
        assert!((det.threshold() - expected).abs() < 1e-6);
    }

    #[test]
    fn confident_id_data_is_not_flagged_and_ood_is() {
        let id = prediction_from_probs(vec![0.95, 0.05, 0.9, 0.1], 2, 2);
        let det = OodDetector::calibrate(&id, &[0, 0]).unwrap();
        // ID-like new data: confident and correct.
        let id_nll = id.per_sample_nll(&[0, 0]).unwrap();
        assert!(det.detection_rate(&id_nll) <= 0.5);
        // OOD-like data: uncertain predictions → high NLL.
        let ood = prediction_from_probs(vec![0.5, 0.5, 0.4, 0.6], 2, 2);
        let ood_nll = ood.per_sample_nll(&[0, 0]).unwrap();
        assert_eq!(det.detection_rate(&ood_nll), 1.0);
        let flags = det.flag(&ood_nll);
        assert_eq!(flags, vec![true, true]);
    }

    #[test]
    fn empty_inputs_and_errors() {
        let det = OodDetector::with_threshold(1.0);
        assert_eq!(det.detection_rate(&[]), 0.0);
        let pred = prediction_from_probs(vec![1.0, 0.0], 1, 2);
        assert!(OodDetector::calibrate(&pred, &[0, 1]).is_err());
        assert!(det.detection_rate_for(&pred, &[0]).is_ok());
    }

    #[test]
    fn threshold_accessor_and_explicit_construction() {
        let det = OodDetector::with_threshold(0.7);
        assert_eq!(det.threshold(), 0.7);
        assert_eq!(det.flag(&[0.6, 0.8]), vec![false, true]);
        assert!((det.detection_rate(&[0.6, 0.8]) - 0.5).abs() < 1e-6);
    }
}
