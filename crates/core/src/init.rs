//! Initialization strategies for the affine parameters of the inverted
//! normalization layer (paper Sec. III-C and IV-F).
//!
//! Conventional normalization layers initialize γ = 1 and β = 0. The paper
//! instead initializes both randomly — γ around one and β around zero — so
//! that (a) the affine parameters of different channels receive different
//! gradients from the first step on, and (b) the weighted sum already carries
//! some randomness at initialization, which the authors found to improve
//! robustness. Larger spreads (σγ, σβ) trade 1-2 % of clean accuracy for more
//! robustness (Sec. IV-F); the default spread is 0.3 as in the paper.

use invnorm_tensor::{Rng, Tensor};
use serde::{Deserialize, Serialize};

/// How the affine weights (γ) and biases (β) of an inverted normalization
/// layer are initialized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AffineInit {
    /// γ ~ N(1, σγ²), β ~ N(0, σβ²). The paper's default uses σγ = σβ = 0.3.
    Normal {
        /// Standard deviation of the weight distribution around 1.
        sigma_gamma: f32,
        /// Standard deviation of the bias distribution around 0.
        sigma_beta: f32,
    },
    /// γ ~ U(0, kγ), β ~ U(-kβ, kβ) — the alternative the paper mentions.
    Uniform {
        /// Upper bound of the weight distribution.
        k_gamma: f32,
        /// Half-width of the bias distribution.
        k_beta: f32,
    },
    /// Conventional deterministic initialization (γ = 1, β = 0); used as an
    /// ablation baseline.
    Conventional,
}

impl AffineInit {
    /// The paper's default: normal initialization with σγ = σβ = 0.3.
    pub fn paper_default() -> Self {
        AffineInit::Normal {
            sigma_gamma: 0.3,
            sigma_beta: 0.3,
        }
    }

    /// Normal initialization with a single spread for both parameters, used
    /// by the Sec. IV-F initialization ablation.
    pub fn normal_with_sigma(sigma: f32) -> Self {
        AffineInit::Normal {
            sigma_gamma: sigma,
            sigma_beta: sigma,
        }
    }

    /// Samples the weight (γ) vector for `channels` channels.
    pub fn sample_gamma(&self, channels: usize, rng: &mut Rng) -> Tensor {
        match *self {
            AffineInit::Normal { sigma_gamma, .. } => {
                Tensor::randn(&[channels], 1.0, sigma_gamma, rng)
            }
            AffineInit::Uniform { k_gamma, .. } => {
                Tensor::rand_uniform(&[channels], 0.0, k_gamma, rng)
            }
            AffineInit::Conventional => Tensor::ones(&[channels]),
        }
    }

    /// Samples the bias (β) vector for `channels` channels.
    pub fn sample_beta(&self, channels: usize, rng: &mut Rng) -> Tensor {
        match *self {
            AffineInit::Normal { sigma_beta, .. } => {
                Tensor::randn(&[channels], 0.0, sigma_beta, rng)
            }
            AffineInit::Uniform { k_beta, .. } => {
                Tensor::rand_uniform(&[channels], -k_beta, k_beta, rng)
            }
            AffineInit::Conventional => Tensor::zeros(&[channels]),
        }
    }
}

impl Default for AffineInit {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_tensor::Rng;
    use proptest::prelude::*;

    #[test]
    fn paper_default_values() {
        match AffineInit::paper_default() {
            AffineInit::Normal {
                sigma_gamma,
                sigma_beta,
            } => {
                assert_eq!(sigma_gamma, 0.3);
                assert_eq!(sigma_beta, 0.3);
            }
            _ => panic!("paper default must be normal"),
        }
        assert_eq!(AffineInit::default(), AffineInit::paper_default());
    }

    #[test]
    fn normal_init_is_centered_correctly() {
        let mut rng = Rng::seed_from(1);
        let init = AffineInit::normal_with_sigma(0.3);
        let gamma = init.sample_gamma(10_000, &mut rng);
        let beta = init.sample_beta(10_000, &mut rng);
        assert!((gamma.mean() - 1.0).abs() < 0.02);
        assert!((gamma.std() - 0.3).abs() < 0.02);
        assert!(beta.mean().abs() < 0.02);
        assert!((beta.std() - 0.3).abs() < 0.02);
    }

    #[test]
    fn uniform_init_respects_bounds() {
        let mut rng = Rng::seed_from(2);
        let init = AffineInit::Uniform {
            k_gamma: 2.0,
            k_beta: 0.5,
        };
        let gamma = init.sample_gamma(1000, &mut rng);
        let beta = init.sample_beta(1000, &mut rng);
        assert!(gamma.min() >= 0.0 && gamma.max() < 2.0);
        assert!(beta.min() >= -0.5 && beta.max() < 0.5);
    }

    #[test]
    fn conventional_init_is_deterministic() {
        let mut rng = Rng::seed_from(3);
        let init = AffineInit::Conventional;
        assert!(init
            .sample_gamma(8, &mut rng)
            .approx_eq(&Tensor::ones(&[8]), 0.0));
        assert!(init
            .sample_beta(8, &mut rng)
            .approx_eq(&Tensor::zeros(&[8]), 0.0));
    }

    #[test]
    fn different_channels_receive_different_values() {
        // The whole point of random init: avoid identical gradients.
        let mut rng = Rng::seed_from(4);
        let gamma = AffineInit::paper_default().sample_gamma(16, &mut rng);
        let distinct: std::collections::BTreeSet<i64> = gamma
            .data()
            .iter()
            .map(|v| (v * 1e6).round() as i64)
            .collect();
        assert!(distinct.len() > 1);
    }

    proptest! {
        #[test]
        fn prop_sampled_shapes_match_channels(channels in 1usize..64, sigma in 0.01f32..1.0) {
            let mut rng = Rng::seed_from(5);
            let init = AffineInit::normal_with_sigma(sigma);
            let gamma = init.sample_gamma(channels, &mut rng);
            let beta = init.sample_beta(channels, &mut rng);
            prop_assert_eq!(gamma.dims(), &[channels]);
            prop_assert_eq!(beta.dims(), &[channels]);
        }
    }
}
