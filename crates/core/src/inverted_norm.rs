//! The inverted normalization layer (paper Sec. III-A), the drop-in
//! replacement for conventional normalization layers after every convolution.
//!
//! Computation order (paper Fig. 2b):
//!
//! 1. **Stochastic affine transformation**: `a = γ̃_c · x + β̃_c`, where the
//!    effective parameters `γ̃, β̃` are the learnable affine parameters after
//!    [affine dropout](crate::affine_dropout) (weights dropped to one, biases
//!    dropped to zero, probability `p`, element- or vector-wise).
//! 2. **Normalization**: `y = (a − μ) / √(σ² + ε)` with statistics computed
//!    per instance over channel groups (`groups == 1` reproduces the
//!    LayerNorm-style behaviour used for most models; `groups == 8` the
//!    GroupNorm-style behaviour used for U-Net). There is **no** affine
//!    transformation after normalization.
//!
//! Because statistics are per-instance, train-time and test-time behaviour is
//! identical, and the layer re-standardizes the weighted sum even when NVM
//! non-idealities shift its distribution (paper Fig. 1) — the second pillar of
//! the method's robustness.

use crate::affine_dropout::{AffineDropout, AffineMasks, DropGranularity};
use crate::init::AffineInit;
use crate::Result;
use invnorm_nn::layer::{Layer, Mode, Param};
use invnorm_nn::norm::NORM_EPS;
use invnorm_nn::NnError;
use invnorm_tensor::{Rng, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of an [`InvertedNorm`] layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvNormConfig {
    /// Affine-dropout probability (the paper uses 0.3 for all models).
    pub drop_probability: f32,
    /// Dropout granularity (the paper uses vector-wise).
    pub granularity: DropGranularity,
    /// Initialization of the affine parameters.
    pub init: AffineInit,
    /// Number of channel groups the normalization statistics are computed
    /// over (1 = per-instance LayerNorm-style, 8 = the U-Net setting).
    pub groups: usize,
    /// Whether affine dropout is also sampled in [`Mode::Eval`]. `true` is
    /// the Bayesian behaviour required for Monte-Carlo inference; `false`
    /// turns the layer into a deterministic inverted normalization.
    pub stochastic_eval: bool,
    /// Seed of the layer's private dropout RNG stream.
    pub seed: u64,
}

impl Default for InvNormConfig {
    fn default() -> Self {
        Self {
            drop_probability: 0.3,
            granularity: DropGranularity::VectorWise,
            init: AffineInit::paper_default(),
            groups: 1,
            stochastic_eval: true,
            seed: 0x1A2B_3C4D,
        }
    }
}

impl InvNormConfig {
    /// The paper's U-Net configuration: statistics over `channels / 8` channel
    /// groups (i.e. 8 groups), everything else at the defaults.
    pub fn grouped(groups: usize) -> Self {
        Self {
            groups,
            ..Self::default()
        }
    }

    /// Configuration with a specific dropout probability.
    pub fn with_drop_probability(mut self, p: f32) -> Self {
        self.drop_probability = p;
        self
    }

    /// Configuration with a specific initialization.
    pub fn with_init(mut self, init: AffineInit) -> Self {
        self.init = init;
        self
    }

    /// Configuration with a specific RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[derive(Debug)]
struct ForwardCache {
    input: Tensor,
    normalized: Tensor,
    gamma_eff: Tensor,
    masks: AffineMasks,
    inv_std: Vec<f32>,
    input_dims: Vec<usize>,
}

/// The inverted normalization layer with stochastic affine transformations.
///
/// See the [module documentation](self) for the computation it performs and
/// the crate documentation for a usage example.
#[derive(Debug)]
pub struct InvertedNorm {
    channels: usize,
    groups: usize,
    dropout: AffineDropout,
    stochastic_eval: bool,
    gamma: Param,
    beta: Param,
    rng: Rng,
    cache: Option<ForwardCache>,
}

impl InvertedNorm {
    /// Creates an inverted normalization layer for `channels` feature maps.
    ///
    /// # Errors
    ///
    /// Returns an error when the dropout probability is invalid or `groups`
    /// does not divide `channels`.
    pub fn new(channels: usize, config: &InvNormConfig, rng: &mut Rng) -> Result<Self> {
        if config.groups == 0 || !channels.is_multiple_of(config.groups) {
            return Err(NnError::Config(format!(
                "groups ({}) must divide channels ({channels})",
                config.groups
            )));
        }
        let dropout = AffineDropout::new(config.drop_probability, config.granularity)?;
        let gamma = config.init.sample_gamma(channels, rng);
        let beta = config.init.sample_beta(channels, rng);
        Ok(Self {
            channels,
            groups: config.groups,
            dropout,
            stochastic_eval: config.stochastic_eval,
            gamma: Param::new(gamma),
            beta: Param::new(beta),
            rng: rng.fork(config.seed),
            cache: None,
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of normalization groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The affine-dropout sampler (probability and granularity).
    pub fn dropout(&self) -> &AffineDropout {
        &self.dropout
    }

    /// Current affine weight vector γ.
    pub fn gamma(&self) -> &Tensor {
        &self.gamma.value
    }

    /// Current affine bias vector β.
    pub fn beta(&self) -> &Tensor {
        &self.beta.value
    }

    /// Enables or disables stochasticity at evaluation time (Bayesian
    /// behaviour). Training-mode forward passes are always stochastic.
    pub fn set_stochastic_eval(&mut self, stochastic: bool) {
        self.stochastic_eval = stochastic;
    }

    fn ncs_dims(&self, input: &Tensor) -> Result<(usize, usize, usize)> {
        let d = input.dims();
        let (n, c, s) = match d.len() {
            2 => (d[0], d[1], 1),
            3 => (d[0], d[1], d[2]),
            4 => (d[0], d[1], d[2] * d[3]),
            _ => {
                return Err(NnError::Config(format!(
                    "InvertedNorm expects rank 2-4 input, got {d:?}"
                )))
            }
        };
        if c != self.channels {
            return Err(NnError::Config(format!(
                "InvertedNorm configured for {} channels, input has {c}",
                self.channels
            )));
        }
        Ok((n, c, s))
    }
}

impl Layer for InvertedNorm {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (n, c, s) = self.ncs_dims(input)?;
        let stochastic = mode.is_train() || self.stochastic_eval;
        let masks = if stochastic {
            self.dropout.sample_masks(c, &mut self.rng)
        } else {
            self.dropout.keep_all_masks(c)
        };
        let (gamma_eff, beta_eff) =
            self.dropout
                .apply(&self.gamma.value, &self.beta.value, &masks)?;

        // 1. Affine transformation first.
        let data = input.data();
        let mut affine = vec![0.0f32; input.numel()];
        for ni in 0..n {
            for ci in 0..c {
                let g = gamma_eff.data()[ci];
                let b = beta_eff.data()[ci];
                let base = (ni * c + ci) * s;
                for i in 0..s {
                    affine[base + i] = g * data[base + i] + b;
                }
            }
        }

        // 2. Normalization per (instance, group), no second affine.
        let cpg = c / self.groups;
        let group_count = (cpg * s) as f32;
        let mut out = vec![0.0f32; input.numel()];
        let mut inv_stds = vec![0.0f32; n * self.groups];
        for ni in 0..n {
            for gi in 0..self.groups {
                let mut mean = 0.0f32;
                for cc in 0..cpg {
                    let base = (ni * c + gi * cpg + cc) * s;
                    for i in 0..s {
                        mean += affine[base + i];
                    }
                }
                mean /= group_count;
                let mut var = 0.0f32;
                for cc in 0..cpg {
                    let base = (ni * c + gi * cpg + cc) * s;
                    for i in 0..s {
                        var += (affine[base + i] - mean).powi(2);
                    }
                }
                var /= group_count;
                let inv_std = 1.0 / (var + NORM_EPS).sqrt();
                inv_stds[ni * self.groups + gi] = inv_std;
                for cc in 0..cpg {
                    let base = (ni * c + gi * cpg + cc) * s;
                    for i in 0..s {
                        out[base + i] = (affine[base + i] - mean) * inv_std;
                    }
                }
            }
        }
        let output = Tensor::from_vec(out, input.dims())?;
        self.cache = Some(ForwardCache {
            input: input.clone(),
            normalized: output.clone(),
            gamma_eff,
            masks,
            inv_std: inv_stds,
            input_dims: input.dims().to_vec(),
        });
        Ok(output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("InvertedNorm"))?;
        if grad_output.dims() != cache.input_dims.as_slice() {
            return Err(NnError::Config(
                "InvertedNorm backward gradient shape mismatch".into(),
            ));
        }
        let (n, c, s) = self.ncs_dims(grad_output)?;
        let cpg = c / self.groups;
        let group_count = (cpg * s) as f32;
        let gd = grad_output.data();
        let y = cache.normalized.data();
        let x = cache.input.data();

        // Gradient through the normalization: for each (instance, group)
        //   da = inv_std * (dy - mean(dy) - y * mean(dy ⊙ y))
        let mut grad_affine = vec![0.0f32; grad_output.numel()];
        for ni in 0..n {
            for gi in 0..self.groups {
                let inv_std = cache.inv_std[ni * self.groups + gi];
                let mut mean_dy = 0.0f32;
                let mut mean_dy_y = 0.0f32;
                for cc in 0..cpg {
                    let base = (ni * c + gi * cpg + cc) * s;
                    for i in 0..s {
                        mean_dy += gd[base + i];
                        mean_dy_y += gd[base + i] * y[base + i];
                    }
                }
                mean_dy /= group_count;
                mean_dy_y /= group_count;
                for cc in 0..cpg {
                    let base = (ni * c + gi * cpg + cc) * s;
                    for i in 0..s {
                        grad_affine[base + i] =
                            inv_std * (gd[base + i] - mean_dy - y[base + i] * mean_dy_y);
                    }
                }
            }
        }

        // Gradient through the affine transformation.
        let mut grad_input = Tensor::zeros(&cache.input_dims);
        let gi_data = grad_input.data_mut();
        for ci in 0..c {
            let g_eff = cache.gamma_eff.data()[ci];
            let gamma_kept = cache.masks.gamma_keep.data()[ci];
            let beta_kept = cache.masks.beta_keep.data()[ci];
            let mut dgamma = 0.0f32;
            let mut dbeta = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * s;
                for i in 0..s {
                    let da = grad_affine[base + i];
                    gi_data[base + i] = da * g_eff;
                    dgamma += da * x[base + i];
                    dbeta += da;
                }
            }
            // Dropped parameters receive no gradient (∂γ̃/∂γ = mask).
            self.gamma.grad.data_mut()[ci] += dgamma * gamma_kept;
            self.beta.grad.data_mut()[ci] += dbeta * beta_kept;
        }
        Ok(grad_input)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.gamma);
        visitor(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "InvertedNorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deterministic_config() -> InvNormConfig {
        InvNormConfig {
            drop_probability: 0.0,
            stochastic_eval: false,
            ..InvNormConfig::default()
        }
    }

    #[test]
    fn constructor_validation() {
        let mut rng = Rng::seed_from(1);
        assert!(InvertedNorm::new(8, &InvNormConfig::grouped(3), &mut rng).is_err());
        assert!(InvertedNorm::new(8, &InvNormConfig::grouped(0), &mut rng).is_err());
        let cfg = InvNormConfig::default().with_drop_probability(1.5);
        assert!(InvertedNorm::new(8, &cfg, &mut rng).is_err());
        let layer = InvertedNorm::new(8, &InvNormConfig::grouped(4), &mut rng).unwrap();
        assert_eq!(layer.channels(), 8);
        assert_eq!(layer.groups(), 4);
        assert_eq!(layer.dropout().probability(), 0.3);
    }

    #[test]
    fn output_is_standardized_per_instance() {
        let mut rng = Rng::seed_from(2);
        let mut layer = InvertedNorm::new(6, &deterministic_config(), &mut rng).unwrap();
        let x = Tensor::randn(&[3, 6, 5, 5], 4.0, 3.0, &mut rng);
        let y = layer.forward(&x, Mode::Eval).unwrap();
        for ni in 0..3 {
            let inst = y.index_axis0(ni).unwrap();
            assert!(inst.mean().abs() < 1e-4, "instance mean {}", inst.mean());
            assert!(
                (inst.std() - 1.0).abs() < 1e-2,
                "instance std {}",
                inst.std()
            );
        }
    }

    #[test]
    fn output_is_standardized_even_under_input_distribution_shift() {
        // The core robustness property: shifting/scaling the weighted sum
        // (as NVM faults do, paper Fig. 1) leaves the normalized output
        // distribution essentially unchanged.
        let mut rng = Rng::seed_from(3);
        // Use conventional (γ=1, β=0) init so the affine map is channel-uniform
        // and the per-instance normalization undoes the global shift exactly.
        let mut cfg = deterministic_config();
        cfg.init = AffineInit::Conventional;
        let mut layer = InvertedNorm::new(4, &cfg, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 4, 8, 8], 0.0, 1.0, &mut rng);
        let clean = layer.forward(&x, Mode::Eval).unwrap();
        let shifted = x.scale(3.0).shift(10.0);
        let faulty = layer.forward(&shifted, Mode::Eval).unwrap();
        // An affine perturbation of the input is exactly undone by the
        // per-instance normalization (up to epsilon effects).
        assert!(clean.approx_eq(&faulty, 1e-3));
    }

    #[test]
    fn affine_parameters_are_randomly_initialized() {
        let mut rng = Rng::seed_from(4);
        let layer = InvertedNorm::new(32, &InvNormConfig::default(), &mut rng).unwrap();
        // Not all ones / zeros like a conventional normalization layer.
        assert!(layer.gamma().std() > 0.05);
        assert!(layer.beta().std() > 0.05);
        assert!((layer.gamma().mean() - 1.0).abs() < 0.3);
        assert!(layer.beta().mean().abs() < 0.3);
    }

    #[test]
    fn stochastic_eval_gives_different_outputs_across_passes() {
        let mut rng = Rng::seed_from(5);
        let cfg = InvNormConfig::default().with_drop_probability(0.5);
        let mut layer = InvertedNorm::new(8, &cfg, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 8, 4, 4], 0.0, 1.0, &mut rng);
        let outputs: Vec<Tensor> = (0..8)
            .map(|_| layer.forward(&x, Mode::Eval).unwrap())
            .collect();
        let any_different = outputs.windows(2).any(|w| !w[0].approx_eq(&w[1], 1e-6));
        assert!(
            any_different,
            "MC passes should differ under affine dropout"
        );
    }

    #[test]
    fn deterministic_eval_is_repeatable() {
        let mut rng = Rng::seed_from(6);
        let cfg = InvNormConfig {
            stochastic_eval: false,
            ..InvNormConfig::default()
        };
        let mut layer = InvertedNorm::new(8, &cfg, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 8, 4, 4], 0.0, 1.0, &mut rng);
        let y1 = layer.forward(&x, Mode::Eval).unwrap();
        let y2 = layer.forward(&x, Mode::Eval).unwrap();
        assert!(y1.approx_eq(&y2, 0.0));
        layer.set_stochastic_eval(true);
        // With p = 0.3 and several passes, at least one should now differ.
        let different = (0..16).any(|_| {
            let y = layer.forward(&x, Mode::Eval).unwrap();
            !y.approx_eq(&y1, 1e-6)
        });
        assert!(different);
    }

    #[test]
    fn gradients_match_numerical_check() {
        let mut rng = Rng::seed_from(7);
        let mut layer = InvertedNorm::new(4, &deterministic_config(), &mut rng).unwrap();
        let x = Tensor::randn(&[2, 4, 3, 3], 0.0, 1.0, &mut rng);
        let w = Tensor::randn(&[2, 4, 3, 3], 0.0, 1.0, &mut rng);
        layer.forward(&x, Mode::Train).unwrap();
        let grad_in = layer.backward(&w).unwrap();
        let eps = 1e-2f32;
        // Input gradient.
        for idx in [0usize, 10, 35, 71] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = layer
                .forward(&xp, Mode::Train)
                .unwrap()
                .mul(&w)
                .unwrap()
                .sum();
            let lm = layer
                .forward(&xm, Mode::Train)
                .unwrap()
                .mul(&w)
                .unwrap()
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad_in.data()[idx]).abs() < 2e-2 * (1.0 + num.abs()),
                "input grad mismatch at {idx}: num {num} ana {}",
                grad_in.data()[idx]
            );
        }
        // Gamma gradient.
        layer.zero_grad();
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&w).unwrap();
        let analytic_gamma = layer.gamma.grad.clone();
        for ci in 0..4 {
            let orig = layer.gamma.value.data()[ci];
            layer.gamma.value.data_mut()[ci] = orig + eps;
            let lp = layer
                .forward(&x, Mode::Train)
                .unwrap()
                .mul(&w)
                .unwrap()
                .sum();
            layer.gamma.value.data_mut()[ci] = orig - eps;
            let lm = layer
                .forward(&x, Mode::Train)
                .unwrap()
                .mul(&w)
                .unwrap()
                .sum();
            layer.gamma.value.data_mut()[ci] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - analytic_gamma.data()[ci]).abs() < 2e-2 * (1.0 + num.abs()),
                "gamma grad mismatch at {ci}"
            );
        }
    }

    #[test]
    fn dropped_parameters_receive_no_gradient() {
        let mut rng = Rng::seed_from(8);
        // Element-wise with extreme probability so most parameters drop.
        let cfg = InvNormConfig {
            drop_probability: 0.9,
            granularity: DropGranularity::ElementWise,
            ..InvNormConfig::default()
        };
        let mut layer = InvertedNorm::new(16, &cfg, &mut rng).unwrap();
        let x = Tensor::randn(&[4, 16, 2, 2], 0.0, 1.0, &mut rng);
        layer.forward(&x, Mode::Train).unwrap();
        let masks = layer.cache.as_ref().unwrap().masks.gamma_keep.clone();
        layer.backward(&Tensor::ones(x.dims())).unwrap();
        for ci in 0..16 {
            if masks.data()[ci] == 0.0 {
                assert_eq!(
                    layer.gamma.grad.data()[ci],
                    0.0,
                    "dropped gamma {ci} must not receive gradient"
                );
            }
        }
    }

    #[test]
    fn group_statistics_are_per_group() {
        let mut rng = Rng::seed_from(9);
        let mut cfg = deterministic_config();
        cfg.groups = 2;
        cfg.init = AffineInit::Conventional;
        let mut layer = InvertedNorm::new(4, &cfg, &mut rng).unwrap();
        // Give the two channel groups wildly different scales.
        let mut x = Tensor::zeros(&[1, 4, 1, 4]);
        for ci in 0..4 {
            for i in 0..4 {
                let v = if ci < 2 {
                    100.0 + i as f32
                } else {
                    i as f32 * 0.01
                };
                x.set(&[0, ci, 0, i], v).unwrap();
            }
        }
        let y = layer.forward(&x, Mode::Eval).unwrap();
        // Each group is normalized independently, so both groups have zero
        // mean despite the scale difference.
        let g0: f32 = (0..2)
            .flat_map(|c| (0..4).map(move |i| (c, i)))
            .map(|(c, i)| y.get(&[0, c, 0, i]).unwrap())
            .sum();
        let g1: f32 = (2..4)
            .flat_map(|c| (0..4).map(move |i| (c, i)))
            .map(|(c, i)| y.get(&[0, c, 0, i]).unwrap())
            .sum();
        assert!(g0.abs() < 1e-3);
        assert!(g1.abs() < 1e-3);
    }

    #[test]
    fn rank2_and_rank3_inputs_are_supported() {
        let mut rng = Rng::seed_from(10);
        let mut layer = InvertedNorm::new(5, &deterministic_config(), &mut rng).unwrap();
        assert_eq!(
            layer
                .forward(&Tensor::randn(&[3, 5], 0.0, 1.0, &mut rng), Mode::Train)
                .unwrap()
                .dims(),
            &[3, 5]
        );
        assert_eq!(
            layer
                .forward(&Tensor::randn(&[3, 5, 7], 0.0, 1.0, &mut rng), Mode::Train)
                .unwrap()
                .dims(),
            &[3, 5, 7]
        );
        assert!(layer
            .forward(&Tensor::zeros(&[3, 4, 7]), Mode::Train)
            .is_err());
        assert!(InvertedNorm::new(5, &deterministic_config(), &mut rng)
            .unwrap()
            .backward(&Tensor::zeros(&[3, 5]))
            .is_err());
    }

    #[test]
    fn param_count_is_two_per_channel() {
        let mut rng = Rng::seed_from(11);
        let mut layer = InvertedNorm::new(12, &InvNormConfig::default(), &mut rng).unwrap();
        assert_eq!(layer.param_count(), 24);
    }
}
