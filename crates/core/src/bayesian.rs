//! Monte-Carlo Bayesian inference (paper Sec. III-D).
//!
//! A network containing stochastic layers (the affine dropout of
//! [`crate::InvertedNorm`], or the conventional/spatial Dropout of the
//! baseline BayNNs) approximates a Bayesian neural network: running `T`
//! forward passes with independently sampled masks yields an output
//! distribution whose mean is the prediction and whose spread quantifies the
//! model's uncertainty.

use crate::Result;
use invnorm_nn::layer::{Layer, Mode};
use invnorm_nn::loss::nll_from_probs;
use invnorm_nn::metrics;
use invnorm_nn::NnError;
use invnorm_tensor::{ops, Tensor};
use serde::{Deserialize, Serialize};

/// Result of Bayesian classification over one batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassificationPrediction {
    /// Monte-Carlo averaged class probabilities, `[N, C]`.
    pub mean_probs: Tensor,
    /// Per-sample predictive entropy (in nats).
    pub entropy: Vec<f32>,
    /// Per-sample variance of the predicted-class probability across passes.
    pub variance: Vec<f32>,
    /// Number of Monte-Carlo passes used.
    pub passes: usize,
}

impl ClassificationPrediction {
    /// Predicted class index for every sample.
    pub fn predicted_classes(&self) -> Vec<usize> {
        ops::argmax_rows(&self.mean_probs).unwrap_or_default()
    }

    /// Classification accuracy against integer targets.
    ///
    /// # Errors
    ///
    /// Returns an error when the target count does not match the batch.
    pub fn accuracy(&self, targets: &[usize]) -> Result<f32> {
        metrics::accuracy(&self.mean_probs, targets)
    }

    /// Mean negative log-likelihood against integer targets (the paper's
    /// uncertainty metric).
    ///
    /// # Errors
    ///
    /// Returns an error when the target count does not match the batch.
    pub fn nll(&self, targets: &[usize]) -> Result<f32> {
        nll_from_probs(&self.mean_probs, targets)
    }

    /// Per-sample negative log-likelihood against integer targets.
    ///
    /// # Errors
    ///
    /// Returns an error when the target count does not match the batch.
    pub fn per_sample_nll(&self, targets: &[usize]) -> Result<Vec<f32>> {
        let (n, c) = ops::as_matrix_dims(&self.mean_probs)?;
        if targets.len() != n {
            return Err(NnError::TargetMismatch {
                predictions: n,
                targets: targets.len(),
            });
        }
        Ok(targets
            .iter()
            .enumerate()
            .map(|(i, &t)| -self.mean_probs.data()[i * c + t].max(1e-12).ln())
            .collect())
    }
}

/// Result of Bayesian regression over one batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionPrediction {
    /// Monte-Carlo mean prediction (same shape as a single forward output).
    pub mean: Tensor,
    /// Per-element standard deviation across passes (epistemic uncertainty).
    pub std: Tensor,
    /// Number of Monte-Carlo passes used.
    pub passes: usize,
}

impl RegressionPrediction {
    /// RMSE of the mean prediction against targets.
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes differ.
    pub fn rmse(&self, targets: &Tensor) -> Result<f32> {
        metrics::rmse(&self.mean, targets)
    }

    /// Mean predictive standard deviation (a scalar uncertainty summary).
    pub fn mean_uncertainty(&self) -> f32 {
        self.std.mean()
    }
}

/// Runs Monte-Carlo Bayesian inference over a stochastic network.
///
/// # Example
///
/// ```
/// use invnorm_core::bayesian::BayesianPredictor;
/// use invnorm_core::{InvNormConfig, InvertedNorm};
/// use invnorm_nn::linear::Linear;
/// use invnorm_nn::reshape::Flatten;
/// use invnorm_nn::Sequential;
/// use invnorm_tensor::{Rng, Tensor};
///
/// # fn main() -> Result<(), invnorm_nn::NnError> {
/// let mut rng = Rng::seed_from(0);
/// let mut net = Sequential::new();
/// net.push(Box::new(InvertedNorm::new(4, &InvNormConfig::default(), &mut rng)?));
/// net.push(Box::new(Flatten::new()));
/// net.push(Box::new(Linear::new(4, 3, &mut rng)));
/// let predictor = BayesianPredictor::new(10);
/// let x = Tensor::randn(&[2, 4], 0.0, 1.0, &mut rng);
/// let prediction = predictor.predict_classification(&mut net, &x)?;
/// assert_eq!(prediction.mean_probs.dims(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BayesianPredictor {
    passes: usize,
}

impl BayesianPredictor {
    /// Creates a predictor that averages `passes` stochastic forward passes
    /// (at least one).
    pub fn new(passes: usize) -> Self {
        Self {
            passes: passes.max(1),
        }
    }

    /// Number of Monte-Carlo passes.
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// Classification: averages softmax probabilities over the passes.
    ///
    /// # Errors
    ///
    /// Returns an error when the network does not produce `[N, C]` logits.
    pub fn predict_classification(
        &self,
        network: &mut dyn Layer,
        inputs: &Tensor,
    ) -> Result<ClassificationPrediction> {
        let mut sum_probs: Option<Tensor> = None;
        let mut per_pass_predicted: Vec<Tensor> = Vec::with_capacity(self.passes);
        for _ in 0..self.passes {
            let logits = network.forward(inputs, Mode::Eval)?;
            let probs = ops::softmax_rows(&logits)?;
            per_pass_predicted.push(probs.clone());
            sum_probs = Some(match sum_probs {
                Some(acc) => acc.add(&probs)?,
                None => probs,
            });
        }
        let mean_probs = sum_probs
            .expect("at least one pass")
            .scale(1.0 / self.passes as f32);
        let (n, c) = ops::as_matrix_dims(&mean_probs)?;

        // Predictive entropy of the averaged distribution.
        let entropy: Vec<f32> = (0..n)
            .map(|i| {
                let row = &mean_probs.data()[i * c..(i + 1) * c];
                -row.iter()
                    .map(|&p| if p > 1e-12 { p * p.ln() } else { 0.0 })
                    .sum::<f32>()
            })
            .collect();

        // Variance of the winning-class probability across passes.
        let winners = ops::argmax_rows(&mean_probs)?;
        let variance: Vec<f32> = (0..n)
            .map(|i| {
                let samples: Vec<f32> = per_pass_predicted
                    .iter()
                    .map(|p| p.data()[i * c + winners[i]])
                    .collect();
                let mean = samples.iter().sum::<f32>() / samples.len() as f32;
                samples.iter().map(|s| (s - mean).powi(2)).sum::<f32>() / samples.len() as f32
            })
            .collect();

        Ok(ClassificationPrediction {
            mean_probs,
            entropy,
            variance,
            passes: self.passes,
        })
    }

    /// Regression: averages raw outputs over the passes and reports the
    /// per-element standard deviation.
    ///
    /// # Errors
    ///
    /// Returns an error when a forward pass fails.
    pub fn predict_regression(
        &self,
        network: &mut dyn Layer,
        inputs: &Tensor,
    ) -> Result<RegressionPrediction> {
        let mut outputs: Vec<Tensor> = Vec::with_capacity(self.passes);
        for _ in 0..self.passes {
            outputs.push(network.forward(inputs, Mode::Eval)?);
        }
        let mut mean = Tensor::zeros(outputs[0].dims());
        for o in &outputs {
            mean.add_assign(o)?;
        }
        let mean = mean.scale(1.0 / self.passes as f32);
        let mut var = Tensor::zeros(mean.dims());
        for o in &outputs {
            let diff = o.sub(&mean)?;
            var.add_assign(&diff.mul(&diff)?)?;
        }
        let std = var.scale(1.0 / self.passes as f32).map(f32::sqrt);
        Ok(RegressionPrediction {
            mean,
            std,
            passes: self.passes,
        })
    }
}

impl Default for BayesianPredictor {
    fn default() -> Self {
        // The number of MC passes commonly used with MC-Dropout BayNNs.
        Self::new(20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted_norm::{InvNormConfig, InvertedNorm};
    use invnorm_nn::linear::Linear;
    use invnorm_nn::Sequential;
    use invnorm_tensor::Rng;

    fn stochastic_net(rng: &mut Rng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Box::new(
            InvertedNorm::new(6, &InvNormConfig::default().with_drop_probability(0.5), rng)
                .unwrap(),
        ));
        net.push(Box::new(Linear::new(6, 3, rng)));
        net
    }

    #[test]
    fn classification_probabilities_are_normalized() {
        let mut rng = Rng::seed_from(1);
        let mut net = stochastic_net(&mut rng);
        let x = Tensor::randn(&[5, 6], 0.0, 1.0, &mut rng);
        let pred = BayesianPredictor::new(12)
            .predict_classification(&mut net, &x)
            .unwrap();
        assert_eq!(pred.passes, 12);
        assert_eq!(pred.mean_probs.dims(), &[5, 3]);
        for i in 0..5 {
            let row_sum: f32 = pred.mean_probs.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-4);
        }
        assert_eq!(pred.entropy.len(), 5);
        assert_eq!(pred.variance.len(), 5);
        assert!(pred
            .entropy
            .iter()
            .all(|&e| (0.0..=(3.0f32).ln() + 1e-4).contains(&e)));
        assert_eq!(pred.predicted_classes().len(), 5);
    }

    #[test]
    fn more_passes_reduce_prediction_noise() {
        let mut rng = Rng::seed_from(2);
        let mut net = stochastic_net(&mut rng);
        let x = Tensor::randn(&[4, 6], 0.0, 1.0, &mut rng);
        // Independent few-pass estimates differ more than independent
        // many-pass estimates. A single pair is seed-luck, so compare the
        // average disagreement over several pairs.
        let dist = |a: &Tensor, b: &Tensor| a.sub(b).unwrap().abs().mean();
        let mean_disagreement = |passes: usize, net: &mut Sequential| {
            let pairs = 6;
            let mut total = 0.0;
            for _ in 0..pairs {
                let a = BayesianPredictor::new(passes)
                    .predict_classification(net, &x)
                    .unwrap();
                let b = BayesianPredictor::new(passes)
                    .predict_classification(net, &x)
                    .unwrap();
                total += dist(&a.mean_probs, &b.mean_probs);
            }
            total / pairs as f32
        };
        let few = mean_disagreement(2, &mut net);
        let many = mean_disagreement(64, &mut net);
        assert!(many <= few + 1e-3, "many-pass {many} vs few-pass {few}");
    }

    #[test]
    fn nll_and_accuracy_consistency() {
        let mut rng = Rng::seed_from(3);
        let mut net = stochastic_net(&mut rng);
        let x = Tensor::randn(&[6, 6], 0.0, 1.0, &mut rng);
        let pred = BayesianPredictor::new(8)
            .predict_classification(&mut net, &x)
            .unwrap();
        let targets = pred.predicted_classes();
        // Against its own predictions the accuracy is 1 and the NLL is the
        // smallest achievable for this distribution.
        assert_eq!(pred.accuracy(&targets).unwrap(), 1.0);
        let nll_best = pred.nll(&targets).unwrap();
        let worst_targets: Vec<usize> = targets.iter().map(|&t| (t + 1) % 3).collect();
        assert!(pred.nll(&worst_targets).unwrap() > nll_best);
        let per_sample = pred.per_sample_nll(&targets).unwrap();
        assert_eq!(per_sample.len(), 6);
        assert!((per_sample.iter().sum::<f32>() / 6.0 - nll_best).abs() < 1e-5);
        assert!(pred.per_sample_nll(&targets[..2]).is_err());
    }

    #[test]
    fn regression_prediction_reports_uncertainty() {
        let mut rng = Rng::seed_from(4);
        let mut net = stochastic_net(&mut rng);
        let x = Tensor::randn(&[3, 6], 0.0, 1.0, &mut rng);
        let pred = BayesianPredictor::new(16)
            .predict_regression(&mut net, &x)
            .unwrap();
        assert_eq!(pred.mean.dims(), &[3, 3]);
        assert_eq!(pred.std.dims(), &[3, 3]);
        // Stochastic network → strictly positive average uncertainty.
        assert!(pred.mean_uncertainty() > 0.0);
        let targets = pred.mean.clone();
        assert!(pred.rmse(&targets).unwrap() < 1e-6);
    }

    #[test]
    fn deterministic_network_has_zero_uncertainty() {
        let mut rng = Rng::seed_from(5);
        let mut net = Sequential::new();
        net.push(Box::new(Linear::new(4, 2, &mut rng)));
        let x = Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng);
        let pred = BayesianPredictor::new(10)
            .predict_regression(&mut net, &x)
            .unwrap();
        assert!(pred.mean_uncertainty() < 1e-7);
        let cls = BayesianPredictor::new(10)
            .predict_classification(&mut net, &x)
            .unwrap();
        assert!(cls.variance.iter().all(|&v| v < 1e-10));
    }

    #[test]
    fn predictor_enforces_at_least_one_pass() {
        assert_eq!(BayesianPredictor::new(0).passes(), 1);
        assert_eq!(BayesianPredictor::default().passes(), 20);
    }
}
