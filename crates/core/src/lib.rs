//! # invnorm-core
//!
//! The primary contribution of *"Enhancing Reliability of Neural Networks at
//! the Edge: Inverted Normalization with Stochastic Affine Transformations"*
//! (DATE 2024), implemented as reusable layers and inference utilities on top
//! of [`invnorm_nn`]:
//!
//! * [`inverted_norm::InvertedNorm`] — the inverted normalization layer: the
//!   learnable affine transformation is applied *before* normalization, and
//!   its weights/biases are randomly dropped (to one/zero respectively) on
//!   every forward pass.
//! * [`affine_dropout`] — the stochastic affine-parameter dropout itself
//!   (element-wise or vector-wise granularity), usable independently of the
//!   layer.
//! * [`init`] — random initialization strategies for the affine parameters
//!   (γ ~ N(1, σγ), β ~ N(0, σβ), or uniform variants).
//! * [`bayesian`] — Monte-Carlo Bayesian inference: multiple stochastic
//!   forward passes, averaged predictions, predictive variance, NLL and
//!   entropy.
//! * [`ood`] — out-of-distribution detection by NLL thresholding, the
//!   mechanism evaluated in the paper's Fig. 7.
//!
//! # Quick start
//!
//! ```
//! use invnorm_core::inverted_norm::InvertedNorm;
//! use invnorm_core::InvNormConfig;
//! use invnorm_nn::layer::{Layer, Mode};
//! use invnorm_tensor::{Rng, Tensor};
//!
//! # fn main() -> Result<(), invnorm_nn::NnError> {
//! let mut rng = Rng::seed_from(0);
//! // Drop-in replacement for a normalization layer after an 8-channel conv.
//! let mut layer = InvertedNorm::new(8, &InvNormConfig::default(), &mut rng)?;
//! let x = Tensor::randn(&[4, 8, 6, 6], 0.0, 1.0, &mut rng);
//! let y = layer.forward(&x, Mode::Train)?;
//! assert_eq!(y.dims(), x.dims());
//! # Ok(())
//! # }
//! ```

// This crate must stay free of `unsafe`; all unsafe code in the
// workspace is confined to `crates/tensor` (lint rule R2).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod affine_dropout;
pub mod bayesian;
pub mod init;
pub mod inverted_norm;
pub mod ood;

pub use affine_dropout::{AffineDropout, DropGranularity};
pub use bayesian::{BayesianPredictor, ClassificationPrediction, RegressionPrediction};
pub use init::AffineInit;
pub use inverted_norm::{InvNormConfig, InvertedNorm};
pub use invnorm_nn::telemetry;
pub use ood::OodDetector;

/// Convenience result alias re-using the NN error type.
pub type Result<T> = std::result::Result<T, invnorm_nn::NnError>;
