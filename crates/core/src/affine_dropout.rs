//! Affine Dropout (paper Sec. III-B): stochastic dropping of the inverted
//! normalization layer's affine parameters.
//!
//! Unlike conventional Dropout, the affine *weights* γ are dropped **to one**
//! (because they multiply the weighted sum — dropping to zero would erase the
//! activation) and the *biases* β are dropped **to zero**. Implementation
//! follows the paper's Fig. 3:
//!
//! 1. sample a binary keep mask `m ~ Bernoulli(1 - p)`,
//! 2. multiply the parameter by the mask,
//! 3. for the weights, add `(1 - m)` so dropped entries become one.
//!
//! Two granularities are supported: element-wise (every channel's parameter
//! gets its own mask) and vector-wise (one mask for the entire vector — the
//! hardware-friendly variant the paper uses, since it needs a single random
//! number generator per layer).

use crate::Result;
use invnorm_nn::NnError;
use invnorm_tensor::{Rng, Tensor};
use serde::{Deserialize, Serialize};

/// Granularity at which affine parameters are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropGranularity {
    /// Each element of the weight/bias vector is dropped independently.
    ElementWise,
    /// The whole weight vector (and, independently, the whole bias vector) is
    /// dropped at once. Hardware-friendly: one RNG per layer.
    VectorWise,
}

/// Masks sampled for one stochastic forward pass.
#[derive(Debug, Clone)]
pub struct AffineMasks {
    /// Keep mask for the weights (1 = keep, 0 = dropped-to-one).
    pub gamma_keep: Tensor,
    /// Keep mask for the biases (1 = keep, 0 = dropped-to-zero).
    pub beta_keep: Tensor,
}

/// The affine-dropout sampler.
///
/// # Example
///
/// ```
/// use invnorm_core::affine_dropout::{AffineDropout, DropGranularity};
/// use invnorm_tensor::{Rng, Tensor};
///
/// # fn main() -> Result<(), invnorm_nn::NnError> {
/// let dropout = AffineDropout::new(0.3, DropGranularity::VectorWise)?;
/// let mut rng = Rng::seed_from(7);
/// let gamma = Tensor::from_vec(vec![1.2, 0.8, 1.1], &[3])?;
/// let beta = Tensor::from_vec(vec![0.1, -0.2, 0.3], &[3])?;
/// let masks = dropout.sample_masks(3, &mut rng);
/// let (g_eff, b_eff) = dropout.apply(&gamma, &beta, &masks)?;
/// assert_eq!(g_eff.numel(), 3);
/// assert_eq!(b_eff.numel(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AffineDropout {
    p: f32,
    granularity: DropGranularity,
}

impl AffineDropout {
    /// Creates an affine-dropout sampler with drop probability `p`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 <= p < 1`.
    pub fn new(p: f32, granularity: DropGranularity) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::Config(format!(
                "affine dropout probability must be in [0, 1), got {p}"
            )));
        }
        Ok(Self { p, granularity })
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Drop granularity.
    pub fn granularity(&self) -> DropGranularity {
        self.granularity
    }

    /// Samples keep masks for a `channels`-element parameter vector.
    ///
    /// Weight and bias masks are sampled independently, as specified in the
    /// paper.
    pub fn sample_masks(&self, channels: usize, rng: &mut Rng) -> AffineMasks {
        match self.granularity {
            DropGranularity::ElementWise => AffineMasks {
                gamma_keep: Tensor::from_vec(rng.bernoulli_mask(channels, self.p), &[channels])
                    .expect("mask length matches"),
                beta_keep: Tensor::from_vec(rng.bernoulli_mask(channels, self.p), &[channels])
                    .expect("mask length matches"),
            },
            DropGranularity::VectorWise => {
                let keep_gamma = if rng.bernoulli(self.p) { 0.0 } else { 1.0 };
                let keep_beta = if rng.bernoulli(self.p) { 0.0 } else { 1.0 };
                AffineMasks {
                    gamma_keep: Tensor::full(&[channels], keep_gamma),
                    beta_keep: Tensor::full(&[channels], keep_beta),
                }
            }
        }
    }

    /// Deterministic masks (everything kept), used when stochasticity is
    /// disabled.
    pub fn keep_all_masks(&self, channels: usize) -> AffineMasks {
        AffineMasks {
            gamma_keep: Tensor::ones(&[channels]),
            beta_keep: Tensor::ones(&[channels]),
        }
    }

    /// Applies masks to the affine parameters, returning the effective
    /// `(γ̃, β̃)` used by the forward pass:
    ///
    /// * `γ̃ = γ ⊙ m_γ + (1 - m_γ)` — dropped weights become one,
    /// * `β̃ = β ⊙ m_β` — dropped biases become zero.
    ///
    /// # Errors
    ///
    /// Returns an error when mask and parameter shapes disagree.
    pub fn apply(
        &self,
        gamma: &Tensor,
        beta: &Tensor,
        masks: &AffineMasks,
    ) -> Result<(Tensor, Tensor)> {
        let gamma_eff = gamma
            .mul(&masks.gamma_keep)?
            .add(&masks.gamma_keep.map(|m| 1.0 - m))?;
        let beta_eff = beta.mul(&masks.beta_keep)?;
        Ok((gamma_eff, beta_eff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_tensor::Rng;
    use proptest::prelude::*;

    #[test]
    fn constructor_validates_probability() {
        assert!(AffineDropout::new(1.0, DropGranularity::VectorWise).is_err());
        assert!(AffineDropout::new(-0.01, DropGranularity::ElementWise).is_err());
        let d = AffineDropout::new(0.3, DropGranularity::VectorWise).unwrap();
        assert_eq!(d.probability(), 0.3);
        assert_eq!(d.granularity(), DropGranularity::VectorWise);
    }

    #[test]
    fn dropped_weights_become_one_and_biases_zero() {
        let d = AffineDropout::new(0.5, DropGranularity::ElementWise).unwrap();
        let gamma = Tensor::from_vec(vec![2.0, 3.0, 4.0, 5.0], &[4]).unwrap();
        let beta = Tensor::from_vec(vec![0.5, -0.5, 1.5, -1.5], &[4]).unwrap();
        // Hand-build masks: drop indices 1 and 3.
        let masks = AffineMasks {
            gamma_keep: Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[4]).unwrap(),
            beta_keep: Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0], &[4]).unwrap(),
        };
        let (g, b) = d.apply(&gamma, &beta, &masks).unwrap();
        assert_eq!(g.data(), &[2.0, 1.0, 4.0, 1.0]);
        assert_eq!(b.data(), &[0.0, -0.5, 0.0, -1.5]);
    }

    #[test]
    fn vector_wise_masks_are_uniform_across_channels() {
        let d = AffineDropout::new(0.5, DropGranularity::VectorWise).unwrap();
        let mut rng = Rng::seed_from(1);
        for _ in 0..20 {
            let masks = d.sample_masks(16, &mut rng);
            let g0 = masks.gamma_keep.data()[0];
            assert!(masks.gamma_keep.data().iter().all(|&v| v == g0));
            let b0 = masks.beta_keep.data()[0];
            assert!(masks.beta_keep.data().iter().all(|&v| v == b0));
        }
    }

    #[test]
    fn element_wise_masks_vary_across_channels() {
        let d = AffineDropout::new(0.5, DropGranularity::ElementWise).unwrap();
        let mut rng = Rng::seed_from(2);
        let masks = d.sample_masks(64, &mut rng);
        let zeros = masks
            .gamma_keep
            .data()
            .iter()
            .filter(|&&v| v == 0.0)
            .count();
        assert!(zeros > 10 && zeros < 54, "unexpected drop count {zeros}");
    }

    #[test]
    fn drop_rate_matches_probability() {
        let d = AffineDropout::new(0.3, DropGranularity::VectorWise).unwrap();
        let mut rng = Rng::seed_from(3);
        let mut dropped_gamma = 0usize;
        let trials = 5000;
        for _ in 0..trials {
            let masks = d.sample_masks(4, &mut rng);
            if masks.gamma_keep.data()[0] == 0.0 {
                dropped_gamma += 1;
            }
        }
        let rate = dropped_gamma as f32 / trials as f32;
        assert!((rate - 0.3).abs() < 0.03, "vector drop rate {rate}");
    }

    #[test]
    fn gamma_and_beta_masks_are_independent() {
        let d = AffineDropout::new(0.5, DropGranularity::VectorWise).unwrap();
        let mut rng = Rng::seed_from(4);
        let mut combos = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let masks = d.sample_masks(2, &mut rng);
            combos.insert((
                masks.gamma_keep.data()[0] as i32,
                masks.beta_keep.data()[0] as i32,
            ));
        }
        // All four combinations (keep/drop × keep/drop) should occur.
        assert_eq!(combos.len(), 4);
    }

    #[test]
    fn keep_all_is_identity() {
        let d = AffineDropout::new(0.9, DropGranularity::ElementWise).unwrap();
        let gamma = Tensor::from_vec(vec![1.5, 0.5], &[2]).unwrap();
        let beta = Tensor::from_vec(vec![0.2, -0.2], &[2]).unwrap();
        let masks = d.keep_all_masks(2);
        let (g, b) = d.apply(&gamma, &beta, &masks).unwrap();
        assert!(g.approx_eq(&gamma, 0.0));
        assert!(b.approx_eq(&beta, 0.0));
    }

    #[test]
    fn zero_probability_never_drops() {
        let d = AffineDropout::new(0.0, DropGranularity::ElementWise).unwrap();
        let mut rng = Rng::seed_from(5);
        for _ in 0..50 {
            let masks = d.sample_masks(8, &mut rng);
            assert!(masks.gamma_keep.data().iter().all(|&v| v == 1.0));
            assert!(masks.beta_keep.data().iter().all(|&v| v == 1.0));
        }
    }

    proptest! {
        #[test]
        fn prop_effective_params_are_valid(
            gamma in proptest::collection::vec(-2.0f32..2.0, 1..32),
            p in 0.0f32..0.9,
        ) {
            let channels = gamma.len();
            let beta: Vec<f32> = gamma.iter().map(|g| g * 0.5).collect();
            let gamma_t = Tensor::from_slice(&gamma);
            let beta_t = Tensor::from_slice(&beta);
            let d = AffineDropout::new(p, DropGranularity::ElementWise).unwrap();
            let mut rng = Rng::seed_from(42);
            let masks = d.sample_masks(channels, &mut rng);
            let (g_eff, b_eff) = d.apply(&gamma_t, &beta_t, &masks).unwrap();
            for i in 0..channels {
                let kept_g = masks.gamma_keep.data()[i] == 1.0;
                let kept_b = masks.beta_keep.data()[i] == 1.0;
                // Each effective value is either the original or the dropped constant.
                let gamma_ok = if kept_g {
                    (g_eff.data()[i] - gamma[i]).abs() < 1e-6
                } else {
                    (g_eff.data()[i] - 1.0).abs() < 1e-6
                };
                let beta_ok = if kept_b {
                    (b_eff.data()[i] - beta[i]).abs() < 1e-6
                } else {
                    b_eff.data()[i] == 0.0
                };
                prop_assert!(gamma_ok);
                prop_assert!(beta_ok);
            }
        }
    }
}
