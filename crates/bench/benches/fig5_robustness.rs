//! Criterion bench for the Fig. 5 pipeline: one Monte-Carlo robustness point
//! (image task, proposed variant) at quick scale.
use criterion::{criterion_group, criterion_main, Criterion};
use invnorm_bench::faults::evaluate_under_fault;
use invnorm_bench::tasks::ImageTask;
use invnorm_bench::ExperimentScale;
use invnorm_imc::FaultModel;
use invnorm_models::NormVariant;

fn bench_fig5(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let task = ImageTask::prepare(&scale);
    let mut model = task.train(NormVariant::proposed()).unwrap();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("mc_point_binary_bitflip_10pct", |b| {
        b.iter(|| {
            evaluate_under_fault(
                &mut model,
                FaultModel::BinaryBitFlip { rate: 0.1 },
                scale.mc_runs,
                42,
                |m| task.accuracy(m),
            )
            .unwrap()
            .mean
        })
    });
    group.bench_function("mc_point_preactivation_variation", |b| {
        b.iter(|| {
            evaluate_under_fault(
                &mut model,
                FaultModel::AdditiveVariation { sigma: 0.4 },
                scale.mc_runs,
                42,
                |m| task.accuracy(m),
            )
            .unwrap()
            .mean
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
