//! Criterion bench for the Fig. 7 pipeline: rotating the test set and running
//! a Monte-Carlo Bayesian prediction on it.
use criterion::{criterion_group, criterion_main, Criterion};
use invnorm_bench::tasks::ImageTask;
use invnorm_bench::ExperimentScale;
use invnorm_datasets::ood::rotate_images;
use invnorm_models::NormVariant;

fn bench_fig7(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let task = ImageTask::prepare(&scale);
    let mut model = task.train(NormVariant::proposed()).unwrap();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("rotate_and_mc_predict", |b| {
        b.iter(|| {
            let rotated = rotate_images(&task.split.test_inputs, 35.0);
            task.predict(&mut model, &rotated)
                .unwrap()
                .nll(&task.split.test_labels)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
