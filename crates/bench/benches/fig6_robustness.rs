//! Criterion bench for the Fig. 6 pipeline: one Monte-Carlo robustness point
//! (CO₂/LSTM task, proposed variant) at quick scale.
use criterion::{criterion_group, criterion_main, Criterion};
use invnorm_bench::faults::evaluate_under_fault;
use invnorm_bench::tasks::Co2Task;
use invnorm_bench::ExperimentScale;
use invnorm_imc::FaultModel;
use invnorm_models::NormVariant;

fn bench_fig6(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let task = Co2Task::prepare(&scale);
    let mut model = task.train(NormVariant::proposed()).unwrap();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("mc_point_lstm_additive_variation", |b| {
        b.iter(|| {
            evaluate_under_fault(
                &mut model,
                FaultModel::AdditiveVariation { sigma: 0.3 },
                scale.mc_runs,
                7,
                |m| task.rmse(m),
            )
            .unwrap()
            .mean
        })
    });
    group.bench_function("mc_point_lstm_bitflip", |b| {
        b.iter(|| {
            evaluate_under_fault(
                &mut model,
                FaultModel::BitFlip { rate: 0.1, bits: 8 },
                scale.mc_runs,
                7,
                |m| task.rmse(m),
            )
            .unwrap()
            .mean
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
