//! Criterion bench for the Fig. 1 pipeline: bit-flip injection plus a full
//! forward pass collecting the output distribution.
use criterion::{criterion_group, criterion_main, Criterion};
use invnorm_bench::tasks::ImageTask;
use invnorm_bench::ExperimentScale;
use invnorm_imc::injector::WeightFaultInjector;
use invnorm_models::NormVariant;
use invnorm_nn::layer::{Layer, Mode};
use invnorm_tensor::Rng;

fn bench_fig1(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let task = ImageTask::prepare(&scale);
    let mut model = task.build(NormVariant::Conventional).unwrap();
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("bitflip_inject_and_forward", |b| {
        b.iter(|| {
            let fault = invnorm_bench::faults::bitflip_for(&model, 0.1);
            let mut injector = WeightFaultInjector::new(fault).expect("valid fault model");
            let mut rng = Rng::seed_from(1);
            injector.inject(&mut model, &mut rng).unwrap();
            let out = model
                .forward(&task.split.test_inputs, Mode::Eval)
                .unwrap()
                .sum();
            injector.restore(&mut model).unwrap();
            out
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
