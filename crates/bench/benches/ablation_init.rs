//! Criterion bench for the Sec. IV-F ablation pipeline: training the compact
//! inverted-norm CNN with one initialization setting at quick scale.
use criterion::{criterion_group, criterion_main, Criterion};
use invnorm_bench::experiments::ablation;
use invnorm_bench::ExperimentScale;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("init_ablation_quick", |b| {
        b.iter(|| ablation::run_init(&ExperimentScale::quick()).unwrap().len())
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
