//! Criterion bench for the Table I pipeline: time to train and evaluate one
//! model variant on one task at quick scale.
use criterion::{criterion_group, criterion_main, Criterion};
use invnorm_bench::tasks::ImageTask;
use invnorm_bench::ExperimentScale;
use invnorm_models::NormVariant;

fn bench_table1(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let task = ImageTask::prepare(&scale);
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("train_and_eval_proposed_image", |b| {
        b.iter(|| {
            let mut model = task.train(NormVariant::proposed()).unwrap();
            task.accuracy(&mut model).unwrap()
        })
    });
    group.bench_function("train_and_eval_conventional_image", |b| {
        b.iter(|| {
            let mut model = task.train(NormVariant::Conventional).unwrap();
            task.accuracy(&mut model).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
