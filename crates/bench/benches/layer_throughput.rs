//! Micro-benchmarks of the building blocks: the blocked GEMM compute core
//! against the retained naive reference, the quantized i8 GEMM and layer
//! paths against their f32 counterparts, the zero-alloc conv path, inverted
//! normalization vs batch normalization forward passes, Monte-Carlo Bayesian
//! inference, and the crossbar analog matrix-vector product.
//!
//! Results are written to `BENCH_layer_throughput.json` at the workspace
//! root (see the README's "Benchmarks" section); the `gemm_*` /
//! `naive_gemm_*` pairs track the blocked kernel's speedup and the
//! `qgemm_*` / `gemm_*` and `q*_forward_*` / `*_forward_*` pairs track the
//! integer path across PRs. The `gemm_dispatched_*` / `gemm_pinned_*` pairs
//! check that runtime kernel dispatch costs nothing over pinning a tier, and
//! the `elementwise` group tracks the vectorized `vecmath` kernels against
//! the scalar loops they replaced.
use criterion::{criterion_group, criterion_main, Criterion};
use invnorm_core::bayesian::BayesianPredictor;
use invnorm_core::{InvNormConfig, InvertedNorm};
use invnorm_imc::crossbar::{CrossbarArray, CrossbarConfig};
use invnorm_nn::conv::Conv2d;
use invnorm_nn::layer::{Layer, Mode};
use invnorm_nn::linear::Linear;
use invnorm_nn::norm::BatchNorm;
use invnorm_nn::quantized::{QuantizedConv2d, QuantizedLinear};
use invnorm_nn::Sequential;
use invnorm_tensor::dispatch::{self, KernelTier};
use invnorm_tensor::{ops, vecmath, Rng, Tensor};

/// Square-GEMM sizes the blocked kernel is tracked on. 256 is the
/// acceptance-criterion size; 64/512 bracket it to expose cache-regime
/// behavior.
const GEMM_SIZES: [usize; 3] = [64, 256, 512];

fn bench_gemm(c: &mut Criterion) {
    let mut rng = Rng::seed_from(42);
    let mut group = c.benchmark_group("layer_throughput");
    group.sample_size(10);

    for &size in &GEMM_SIZES {
        let a = Tensor::randn(&[size, size], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[size, size], 0.0, 1.0, &mut rng);
        group.bench_function(format!("gemm_{size}x{size}x{size}"), |bch| {
            bch.iter(|| ops::matmul(&a, &b).unwrap().sum())
        });
        group.bench_function(format!("naive_gemm_{size}x{size}x{size}"), |bch| {
            bch.iter(|| ops::reference::matmul(&a, &b).unwrap().sum())
        });
    }

    // Quantized i8 GEMM vs the f32 blocked kernel at the same sizes: the
    // qgemm_*/gemm_* pairs track the integer path's speedup (4× smaller
    // working set) across PRs.
    for &size in &GEMM_SIZES {
        let qa: Vec<i8> = (0..size * size).map(|i| ((i * 37) % 255) as i8).collect();
        let qb: Vec<i8> = (0..size * size).map(|i| ((i * 61) % 255) as i8).collect();
        // Keep codes in [-127, 127] (the microkernel's contract).
        let qa: Vec<i8> = qa
            .iter()
            .map(|&c| if c == i8::MIN { 0 } else { c })
            .collect();
        let qb: Vec<i8> = qb
            .iter()
            .map(|&c| if c == i8::MIN { 0 } else { c })
            .collect();
        let mut qc = vec![0i32; size * size];
        group.bench_function(format!("qgemm_{size}x{size}x{size}"), |bch| {
            bch.iter(|| {
                ops::qgemm(false, false, size, size, size, &qa, &qb, false, &mut qc);
                qc[0]
            })
        });
    }

    // Runtime dispatch vs pinned kernel tiers at the acceptance-criterion
    // size. `gemm_dispatched_*` must match `gemm_pinned_avx2_*` (same kernel,
    // one cached atomic load of overhead); the portable pin quantifies what
    // the SIMD tiers buy. Tiers the host lacks are skipped.
    {
        let size = 256;
        let a = Tensor::randn(&[size, size], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[size, size], 0.0, 1.0, &mut rng);
        group.bench_function(format!("gemm_dispatched_{size}"), |bch| {
            bch.iter(|| ops::matmul(&a, &b).unwrap().sum())
        });
        let detected = dispatch::detected();
        for tier in [KernelTier::Portable, KernelTier::Avx2, KernelTier::Avx512] {
            if tier > detected {
                continue;
            }
            dispatch::force(tier);
            group.bench_function(format!("gemm_pinned_{}_{size}", tier.name()), |bch| {
                bch.iter(|| ops::matmul(&a, &b).unwrap().sum())
            });
        }
        dispatch::reset();
    }

    // The transposed-product form used by Linear forward and the backward
    // passes, at a typical layer shape.
    let x = Tensor::randn(&[64, 512], 0.0, 1.0, &mut rng);
    let w = Tensor::randn(&[256, 512], 0.0, 1.0, &mut rng);
    group.bench_function("gemm_a_bt_64x512_512x256", |bch| {
        bch.iter(|| ops::matmul_a_bt(&x, &w).unwrap().sum())
    });
    group.bench_function("naive_gemm_a_bt_64x512_512x256", |bch| {
        bch.iter(|| ops::reference::matmul_a_bt(&x, &w).unwrap().sum())
    });

    // Conv forward: the zero-alloc Eval path (scratch-reusing im2col + blocked
    // GEMM) against an im2col + naive-matmul composition.
    let conv_input = Tensor::randn(&[4, 16, 32, 32], 0.0, 1.0, &mut rng);
    let mut conv = Conv2d::new(16, 32, 3, 1, 1, &mut rng);
    group.bench_function("conv2d_forward_eval_16to32_32x32", |bch| {
        bch.iter(|| conv.forward(&conv_input, Mode::Eval).unwrap().sum())
    });
    let conv_weight = conv.weight().value.clone();
    let weight_mat = conv_weight.reshape(&[32, 16 * 3 * 3]).unwrap();
    let spec = *conv.spec();
    group.bench_function("naive_conv2d_forward_16to32_32x32", |bch| {
        bch.iter(|| {
            let cols = invnorm_tensor::conv::im2col(&conv_input, &spec).unwrap();
            ops::reference::matmul_a_bt(&cols, &weight_mat)
                .unwrap()
                .sum()
        })
    });

    // Quantized conv forward: i8 im2col + i8 GEMM + one dequantization,
    // paired with the f32 eval path above.
    let mut qconv = QuantizedConv2d::from_conv2d(&conv, 8).unwrap();
    group.bench_function("qconv2d_forward_eval_16to32_32x32", |bch| {
        bch.iter(|| qconv.forward(&conv_input, Mode::Eval).unwrap().sum())
    });

    // Quantized linear forward vs the float layer at an MLP-ish shape.
    let mut linear = Linear::new(512, 256, &mut rng);
    let lx = Tensor::randn(&[64, 512], 0.0, 1.0, &mut rng);
    group.bench_function("linear_forward_eval_64x512to256", |bch| {
        bch.iter(|| linear.forward(&lx, Mode::Eval).unwrap().sum())
    });
    let mut qlinear = QuantizedLinear::from_linear(&linear, 8).unwrap();
    group.bench_function("qlinear_forward_eval_64x512to256", |bch| {
        bch.iter(|| qlinear.forward(&lx, Mode::Eval).unwrap().sum())
    });

    group.finish();
}

/// Elementwise kernels through the runtime dispatcher vs the scalar
/// libm-based loops they replaced. The `*_vecmath_*` / `*_scalar_*` pairs
/// track what SIMD dispatch buys on memory-bound (relu, normalize) and
/// transcendental-bound (sigmoid, tanh, softmax) elementwise work.
fn bench_elementwise(c: &mut Criterion) {
    let mut rng = Rng::seed_from(7);
    let mut group = c.benchmark_group("elementwise");
    group.sample_size(20);

    const N: usize = 1 << 14;
    let src: Vec<f32> = (0..N).map(|_| rng.normal(0.0, 2.0)).collect();
    let mut dst = vec![0.0f32; N];

    group.bench_function("relu_vecmath_16k", |b| {
        b.iter(|| {
            vecmath::relu(&src, &mut dst);
            dst[0]
        })
    });
    group.bench_function("relu_scalar_16k", |b| {
        b.iter(|| {
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = s.max(0.0);
            }
            dst[0]
        })
    });

    group.bench_function("sigmoid_vecmath_16k", |b| {
        b.iter(|| {
            vecmath::sigmoid(&src, &mut dst);
            dst[0]
        })
    });
    group.bench_function("sigmoid_scalar_16k", |b| {
        b.iter(|| {
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = 1.0 / (1.0 + (-s).exp());
            }
            dst[0]
        })
    });

    group.bench_function("tanh_vecmath_16k", |b| {
        b.iter(|| {
            vecmath::tanh(&src, &mut dst);
            dst[0]
        })
    });
    group.bench_function("tanh_scalar_16k", |b| {
        b.iter(|| {
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = s.tanh();
            }
            dst[0]
        })
    });

    group.bench_function("normalize_affine_vecmath_16k", |b| {
        b.iter(|| {
            vecmath::normalize_affine(&src, &mut dst, 0.1, 0.9, 1.2, -0.3);
            dst[0]
        })
    });
    group.bench_function("normalize_affine_scalar_16k", |b| {
        b.iter(|| {
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = (s - 0.1) * 0.9 * 1.2 + -0.3;
            }
            dst[0]
        })
    });

    // Full softmax over a classifier-sized logit matrix: the vectorized
    // exp/divide passes vs the all-scalar row loop it replaced.
    let logits = Tensor::randn(&[64, 256], 0.0, 3.0, &mut rng);
    group.bench_function("softmax_rows_vecmath_64x256", |b| {
        b.iter(|| ops::softmax_rows(&logits).unwrap().sum())
    });
    group.bench_function("softmax_rows_scalar_64x256", |b| {
        b.iter(|| {
            let ld = logits.data();
            let mut out = vec![0.0f32; 64 * 256];
            for (row, orow) in ld.chunks_exact(256).zip(out.chunks_exact_mut(256)) {
                let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
                let mut denom = 0.0f32;
                for (o, &v) in orow.iter_mut().zip(row.iter()) {
                    *o = (v - max).exp();
                    denom += *o;
                }
                for o in orow.iter_mut() {
                    *o /= denom;
                }
            }
            out[0]
        })
    });

    group.finish();
}

fn bench_layers(c: &mut Criterion) {
    let mut rng = Rng::seed_from(0);
    let x = Tensor::randn(&[8, 32, 16, 16], 0.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("layer_forward");
    group.sample_size(20);

    let mut inverted = InvertedNorm::new(32, &InvNormConfig::default(), &mut rng).unwrap();
    group.bench_function("inverted_norm_forward", |b| {
        b.iter(|| inverted.forward(&x, Mode::Eval).unwrap().sum())
    });

    let mut batchnorm = BatchNorm::new(32);
    group.bench_function("batch_norm_forward", |b| {
        b.iter(|| batchnorm.forward(&x, Mode::Train).unwrap().sum())
    });

    // Monte-Carlo inference over a small stochastic MLP.
    let mut net = Sequential::new();
    net.push(Box::new(
        InvertedNorm::new(64, &InvNormConfig::default(), &mut rng).unwrap(),
    ));
    net.push(Box::new(Linear::new(64, 10, &mut rng)));
    let inputs = Tensor::randn(&[32, 64], 0.0, 1.0, &mut rng);
    group.bench_function("bayesian_mc_inference_20_passes", |b| {
        b.iter(|| {
            BayesianPredictor::new(20)
                .predict_classification(&mut net, &inputs)
                .unwrap()
                .entropy
                .len()
        })
    });

    // Crossbar analog MVM vs the dense path.
    let weights = Tensor::randn(&[64, 64], 0.0, 0.5, &mut rng);
    let array = CrossbarArray::program(&weights, CrossbarConfig::default(), &mut rng).unwrap();
    let batch = Tensor::randn(&[16, 64], 0.0, 1.0, &mut rng);
    group.bench_function("crossbar_matvec", |b| {
        b.iter(|| array.matvec(&batch).unwrap().sum())
    });
    group.bench_function("dense_matmul_reference", |b| {
        b.iter(|| ops::matmul(&batch, &weights).unwrap().sum())
    });

    group.finish();
}

criterion_group!(benches, bench_gemm, bench_elementwise, bench_layers);
criterion_main!(benches);
