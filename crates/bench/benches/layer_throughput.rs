//! Micro-benchmarks of the building blocks: inverted normalization vs batch
//! normalization forward passes, Monte-Carlo Bayesian inference, and the
//! crossbar analog matrix-vector product.
use criterion::{criterion_group, criterion_main, Criterion};
use invnorm_core::bayesian::BayesianPredictor;
use invnorm_core::{InvNormConfig, InvertedNorm};
use invnorm_imc::crossbar::{CrossbarArray, CrossbarConfig};
use invnorm_nn::layer::{Layer, Mode};
use invnorm_nn::linear::Linear;
use invnorm_nn::norm::BatchNorm;
use invnorm_nn::Sequential;
use invnorm_tensor::{ops, Rng, Tensor};

fn bench_layers(c: &mut Criterion) {
    let mut rng = Rng::seed_from(0);
    let x = Tensor::randn(&[8, 32, 16, 16], 0.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("layer_throughput");
    group.sample_size(20);

    let mut inverted = InvertedNorm::new(32, &InvNormConfig::default(), &mut rng).unwrap();
    group.bench_function("inverted_norm_forward", |b| {
        b.iter(|| inverted.forward(&x, Mode::Eval).unwrap().sum())
    });

    let mut batchnorm = BatchNorm::new(32);
    group.bench_function("batch_norm_forward", |b| {
        b.iter(|| batchnorm.forward(&x, Mode::Train).unwrap().sum())
    });

    // Monte-Carlo inference over a small stochastic MLP.
    let mut net = Sequential::new();
    net.push(Box::new(
        InvertedNorm::new(64, &InvNormConfig::default(), &mut rng).unwrap(),
    ));
    net.push(Box::new(Linear::new(64, 10, &mut rng)));
    let inputs = Tensor::randn(&[32, 64], 0.0, 1.0, &mut rng);
    group.bench_function("bayesian_mc_inference_20_passes", |b| {
        b.iter(|| {
            BayesianPredictor::new(20)
                .predict_classification(&mut net, &inputs)
                .unwrap()
                .entropy
                .len()
        })
    });

    // Crossbar analog MVM vs the dense reference.
    let weights = Tensor::randn(&[64, 64], 0.0, 0.5, &mut rng);
    let array = CrossbarArray::program(&weights, CrossbarConfig::default(), &mut rng).unwrap();
    let batch = Tensor::randn(&[16, 64], 0.0, 1.0, &mut rng);
    group.bench_function("crossbar_matvec", |b| {
        b.iter(|| array.matvec(&batch).unwrap().sum())
    });
    group.bench_function("dense_matmul_reference", |b| {
        b.iter(|| ops::matmul(&batch, &weights).unwrap().sum())
    });

    group.finish();
}

criterion_group!(benches, bench_layers);
criterion_main!(benches);
