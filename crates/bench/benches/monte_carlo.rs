//! Monte-Carlo engine throughput: sequential [`MonteCarloEngine::run`] vs
//! instance-parallel `run_parallel` vs the batched `run_batched` path that
//! fuses B fault realizations into each forward pass.
//!
//! The workload is the paper's actual evaluation shape: a **small** model
//! (the 64×512→256 linear probe and a compact CNN) evaluated over ~tens of
//! Monte-Carlo chip instances. At these sizes a single instance cannot
//! saturate the blocked GEMM, so `run_parallel` only scales by instance-level
//! work stealing and still pays per-instance snapshot/restore clones, packing
//! and allocator traffic; `run_batched` amortizes all of that across the
//! batch. Results are written to `BENCH_monte_carlo.json`; the
//! `*_batched_*` / `*_parallel_*` pairs are the tracked speedup.
//!
//! `run`, `run_parallel` and `run_batched` produce bit-identical per-run
//! metrics (tested in `invnorm-imc`), so these benchmarks compare equal
//! work, not approximations.

use criterion::{criterion_group, criterion_main, Criterion};
use invnorm_imc::fault::{FaultModel, LineOrientation};
use invnorm_imc::montecarlo::MonteCarloEngine;
use invnorm_imc::telemetry::Telemetry;
use invnorm_imc::{SweepControl, TileShape};
use invnorm_nn::activation::Relu;
use invnorm_nn::conv::Conv2d;
use invnorm_nn::layer::{Layer, Mode};
use invnorm_nn::linear::Linear;
use invnorm_nn::pool::MaxPool2d;
use invnorm_nn::quantized::{QuantizedConv2d, QuantizedLinear};
use invnorm_nn::reshape::Flatten;
use invnorm_nn::Sequential;
use invnorm_tensor::{Rng, Tensor};

/// Chip instances per engine run (kept below the paper's 100 so every
/// benchmark iteration is one full engine invocation).
const RUNS: usize = 32;
/// Fault realizations fused per batched forward pass.
const BATCH: usize = 16;
/// Worker threads for the parallel and batched engines.
const THREADS: usize = 4;

/// The paper's linear probe shape: one 512→256 dense layer on a 64-row
/// evaluation batch.
fn linear_model(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    Sequential::new().with(Box::new(Linear::new(512, 256, &mut rng)))
}

fn linear_input() -> Tensor {
    Tensor::randn(&[64, 512], 0.0, 1.0, &mut Rng::seed_from(7))
}

/// A compact LeNet-style CNN on CIFAR-shaped inputs: one 5×5 conv stage,
/// pooling, and a dense head.
fn cnn_model(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    Sequential::new()
        .with(Box::new(Conv2d::new(3, 8, 5, 1, 2, &mut rng)))
        .with(Box::new(Relu::new()))
        .with(Box::new(MaxPool2d::new(2)))
        .with(Box::new(Flatten::new()))
        .with(Box::new(Linear::new(8 * 16 * 16, 10, &mut rng)))
}

fn cnn_input() -> Tensor {
    Tensor::randn(&[8, 3, 32, 32], 0.0, 1.0, &mut Rng::seed_from(8))
}

fn quantized_linear_model(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    let l = Linear::new(512, 256, &mut rng);
    Sequential::new().with(Box::new(QuantizedLinear::from_linear(&l, 8).unwrap()))
}

fn quantized_cnn_model(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    let conv = Conv2d::new(3, 8, 5, 1, 2, &mut rng);
    let head = Linear::new(8 * 16 * 16, 10, &mut rng);
    Sequential::new()
        .with(Box::new(QuantizedConv2d::from_conv2d(&conv, 8).unwrap()))
        .with(Box::new(Relu::new()))
        .with(Box::new(MaxPool2d::new(2)))
        .with(Box::new(Flatten::new()))
        .with(Box::new(QuantizedLinear::from_linear(&head, 8).unwrap()))
}

/// The fault models of the benchmark sweep: the paper's conductance
/// variation, a programming-fault model, retention drift, and the two
/// structured topologies (whole stuck crossbar lines, per-tile correlated
/// drift) whose sparse packed-domain realizations stress a different path
/// than the dense per-cell models.
fn sweep_faults() -> [FaultModel; 5] {
    let tile = TileShape { rows: 64, cols: 64 };
    [
        FaultModel::AdditiveVariation { sigma: 0.1 },
        FaultModel::StuckAt { rate: 0.05 },
        FaultModel::Drift {
            nu: 0.05,
            time_ratio: 100.0,
        },
        FaultModel::LineDefect {
            orientation: LineOrientation::Row,
            rate: 0.02,
            tile,
        },
        FaultModel::CorrelatedDrift {
            nu: 0.05,
            time_ratio: 100.0,
            sigma_nu: 0.3,
            tile,
        },
    ]
}

fn bench_model<F>(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    factory: F,
    input: &Tensor,
    quantized: bool,
) where
    F: Fn() -> Sequential + Sync + Copy,
{
    let engine = MonteCarloEngine::new(RUNS, 0xC0FFEE);
    for fault in sweep_faults() {
        let tag = match fault {
            FaultModel::AdditiveVariation { .. } => "additive",
            FaultModel::StuckAt { .. } => "stuckat",
            FaultModel::Drift { .. } => "drift",
            FaultModel::LineDefect { .. } => "linedefect",
            FaultModel::CorrelatedDrift { .. } => "corrdrift",
            _ => "other",
        };
        // Sequential reference engine.
        group.bench_function(format!("{name}_{tag}_sequential"), |b| {
            b.iter(|| {
                let mut net = factory();
                let x = input.clone();
                let summary = if quantized {
                    engine
                        .run_quantized(&mut net, fault, |n| Ok(n.forward(&x, Mode::Eval)?.sum()))
                        .unwrap()
                } else {
                    engine
                        .run(&mut net, fault, |n| Ok(n.forward(&x, Mode::Eval)?.sum()))
                        .unwrap()
                };
                summary.mean
            })
        });
        // Instance-parallel engine (f32 weight domain only).
        if !quantized {
            group.bench_function(format!("{name}_{tag}_parallel_t{THREADS}"), |b| {
                b.iter(|| {
                    let x = input.clone();
                    engine
                        .run_parallel(
                            factory,
                            fault,
                            move |n: &mut Sequential| Ok(n.forward(&x, Mode::Eval)?.sum()),
                            THREADS,
                        )
                        .unwrap()
                        .mean
                })
            });
        }
        // Batched engine: B realizations per forward pass.
        group.bench_function(format!("{name}_{tag}_batched_b{BATCH}_t{THREADS}"), |b| {
            b.iter(|| {
                let summary = if quantized {
                    engine
                        .run_batched_quantized(
                            factory,
                            fault,
                            input,
                            |out| Ok(out.sum()),
                            BATCH,
                            THREADS,
                        )
                        .unwrap()
                } else {
                    engine
                        .run_batched(factory, fault, input, |out| Ok(out.sum()), BATCH, THREADS)
                        .unwrap()
                };
                summary.mean
            })
        });
        // Compiled-plan engine: per-worker plans amortize shape inference,
        // buffer allocation and weight packing across the whole simulation;
        // only dirty panels are re-packed between realizations.
        group.bench_function(format!("{name}_{tag}_planned_t{THREADS}"), |b| {
            b.iter(|| {
                let summary = if quantized {
                    engine
                        .run_planned_quantized(factory, fault, input, |out| Ok(out.sum()), THREADS)
                        .unwrap()
                } else {
                    engine
                        .run_planned(factory, fault, input, |out| Ok(out.sum()), THREADS)
                        .unwrap()
                };
                summary.mean
            })
        });
        // Fused planned-batched engine: B stacked realizations per planned
        // forward — the batched wide-GEMM win and the compiled-plan win in
        // one path (frozen activation panels streamed against B cached
        // weight panels; sparse stuck-at lands in the panels cell by cell).
        group.bench_function(
            format!("{name}_{tag}_planned_batched_b{BATCH}_t{THREADS}"),
            |b| {
                b.iter(|| {
                    let summary = if quantized {
                        engine
                            .run_planned_batched_quantized(
                                factory,
                                fault,
                                input,
                                |out| Ok(out.sum()),
                                BATCH,
                                THREADS,
                            )
                            .unwrap()
                    } else {
                        engine
                            .run_planned_batched(
                                factory,
                                fault,
                                input,
                                |out| Ok(out.sum()),
                                BATCH,
                                THREADS,
                            )
                            .unwrap()
                    };
                    summary.mean
                })
            },
        );
    }
}

/// Supervision parity: the `*_supervised` entry points with a default
/// [`SweepControl`] (unbounded budget, no resume) must cost the same as the
/// legacy wrappers — the budget check is one relaxed atomic load per chip
/// instance and the ledger records on the main thread only. Benched against
/// the matching legacy names above, the gate turns any creep into a failure.
fn bench_supervised_parity(group: &mut criterion::BenchmarkGroup<'_>) {
    let engine = MonteCarloEngine::new(RUNS, 0xC0FFEE);
    let x = linear_input();
    let control = SweepControl::new();
    group.bench_function(
        format!("linear_f32_additive_planned_batched_supervised_b{BATCH}_t{THREADS}"),
        |b| {
            b.iter(|| {
                engine
                    .run_planned_batched_supervised(
                        || linear_model(1),
                        FaultModel::AdditiveVariation { sigma: 0.1 },
                        &x,
                        |out| Ok(out.sum()),
                        BATCH,
                        THREADS,
                        &control,
                    )
                    .unwrap()
                    .summary()
                    .mean
            })
        },
    );
    group.bench_function(
        format!("linear_f32_additive_parallel_supervised_t{THREADS}"),
        |b| {
            b.iter(|| {
                let xc = x.clone();
                engine
                    .run_parallel_supervised(
                        || linear_model(1),
                        FaultModel::AdditiveVariation { sigma: 0.1 },
                        move |n: &mut Sequential| Ok(n.forward(&xc, Mode::Eval)?.sum()),
                        THREADS,
                        &control,
                    )
                    .unwrap()
                    .summary()
                    .mean
            })
        },
    );
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(10);

    let xc = cnn_input();
    bench_model(&mut group, "cnn_f32", || cnn_model(2), &xc, false);
    bench_model(
        &mut group,
        "cnn_quant",
        || quantized_cnn_model(2),
        &xc,
        true,
    );

    let x = linear_input();
    bench_model(&mut group, "linear_f32", || linear_model(1), &x, false);
    bench_model(
        &mut group,
        "linear_quant",
        || quantized_linear_model(1),
        &x,
        true,
    );

    bench_supervised_parity(&mut group);

    group.finish();
    emit_telemetry_artifacts();
}

/// Mirrors the criterion shim's `BENCH_JSON_DIR` resolution so the telemetry
/// artifacts land next to `BENCH_monte_carlo.json`.
fn json_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("BENCH_JSON_DIR") {
        return dir.into();
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
    for candidate in [cwd.clone(), cwd.join(".."), cwd.join("../..")] {
        if candidate.join("Cargo.toml").exists() && candidate.join("crates").is_dir() {
            return candidate;
        }
    }
    cwd
}

/// One untimed, telemetry-enabled engine invocation per model family after
/// the timed samples: dumps the chrome trace (`TRACE_monte_carlo.json`) and
/// the per-run counter/phase report (`TELEMETRY_monte_carlo.json`) so every
/// benchmark run ships a profile of where the engine time and cache behavior
/// went. The timed samples above all run with telemetry disabled, so the
/// numbers in `BENCH_monte_carlo.json` are unaffected.
fn emit_telemetry_artifacts() {
    let engine = MonteCarloEngine::new(RUNS, 0xC0FFEE);
    let fault = FaultModel::StuckAt { rate: 0.05 };
    Telemetry::reset();
    Telemetry::enable();
    let cnn = engine
        .run_planned_batched(
            || cnn_model(2),
            fault,
            &cnn_input(),
            |out| Ok(out.sum()),
            BATCH,
            THREADS,
        )
        .expect("telemetry cnn pass");
    let linear = engine
        .run_planned_batched(
            || linear_model(1),
            fault,
            &linear_input(),
            |out| Ok(out.sum()),
            BATCH,
            THREADS,
        )
        .expect("telemetry linear pass");
    Telemetry::disable();

    let dir = json_dir();
    let trace_path = dir.join("TRACE_monte_carlo.json");
    match Telemetry::write_chrome_trace(&trace_path) {
        Ok(()) => println!("wrote {}", trace_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", trace_path.display()),
    }
    let report_path = dir.join("TELEMETRY_monte_carlo.json");
    let mut report = String::from("{\n  \"group\": \"monte_carlo\",\n");
    for (name, summary) in [("cnn_f32", &cnn), ("linear_f32", &linear)] {
        let telemetry = summary
            .telemetry
            .as_ref()
            .expect("enabled run must attach telemetry");
        report.push_str(&format!("  \"{name}\": {},\n", telemetry.to_json()));
    }
    report.push_str("  \"fault\": \"stuck-at 5%\"\n}\n");
    match std::fs::write(&report_path, report) {
        Ok(()) => println!("wrote {}", report_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", report_path.display()),
    }
}

criterion_group!(benches, bench_monte_carlo);
criterion_main!(benches);
