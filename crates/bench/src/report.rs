//! Result-table formatting and CSV export.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-oriented result table printed by every experiment binary
/// and written to `results/<name>.csv`.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    ///
    /// # Panics
    ///
    /// Panics if the number of cells does not match the header count — that
    /// is a bug in the experiment code, not a runtime condition.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Convenience: formats a `mean ± std` cell.
    pub fn mean_std_cell(mean: f32, std: f32) -> String {
        format!("{mean:.4} ± {std:.4}")
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(widths.iter())
            .map(|(h, w)| format!("{h:<w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join(" | "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-")
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join(" | "));
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells containing
    /// commas or quotes).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `dir/<file_stem>.csv`, creating the
    /// directory if needed. Returns the written path.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory or file cannot be written.
    pub fn save_csv(&self, dir: impl AsRef<Path>, file_stem: &str) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{file_stem}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Default output directory for experiment CSVs (`results/` in the workspace
/// root when run via `cargo run`, the current directory otherwise).
pub fn default_results_dir() -> PathBuf {
    PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("Demo", &["method", "accuracy"]);
        t.push_row(vec!["NN".into(), "0.90".into()]);
        t.push_row(vec!["Proposed".into(), Table::mean_std_cell(0.95, 0.01)]);
        t
    }

    #[test]
    fn text_rendering_contains_all_cells() {
        let t = sample_table();
        let text = t.to_text();
        assert!(text.contains("Demo"));
        assert!(text.contains("Proposed"));
        assert!(text.contains("0.9500 ± 0.0100"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "Demo");
    }

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = Table::new("CSV", &["a", "b"]);
        t.push_row(vec!["plain".into(), "with, comma".into()]);
        t.push_row(vec!["quo\"te".into(), "x".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"with, comma\""));
        assert!(csv.contains("\"quo\"\"te\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("Bad", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn save_csv_writes_file() {
        let t = sample_table();
        let dir = std::env::temp_dir().join("invnorm_bench_test_results");
        let path = t.save_csv(&dir, "demo").unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("Proposed"));
        let _ = std::fs::remove_file(path);
    }
}
