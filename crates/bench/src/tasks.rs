//! Task bundles: dataset + model builder + training + evaluation for the
//! four benchmark tasks of the paper's Table I.
//!
//! Each task owns its synthetic dataset split and knows how to build, train
//! and score a model in any [`NormVariant`], so the experiment modules only
//! have to orchestrate sweeps.

use crate::scale::ExperimentScale;
use crate::Result;
use invnorm_core::bayesian::{BayesianPredictor, ClassificationPrediction};
use invnorm_datasets::audio::{self, AudioDatasetConfig};
use invnorm_datasets::images::{self, ImageDatasetConfig};
use invnorm_datasets::segmentation::{self, SegmentationDatasetConfig};
use invnorm_datasets::timeseries::{self, Co2DatasetConfig};
use invnorm_datasets::{ClassificationSplit, DenseSplit};
use invnorm_models::lstm::{self, LstmForecasterConfig};
use invnorm_models::m5::{self, M5NetConfig};
use invnorm_models::resnet::{self, MicroResNetConfig};
use invnorm_models::unet::{self, MicroUNetConfig};
use invnorm_models::{BuiltModel, NormVariant};
use invnorm_nn::layer::{Layer, Mode};
use invnorm_nn::metrics;
use invnorm_nn::optim::Adam;
use invnorm_nn::train::{self, TrainConfig};
use invnorm_quant::fake_quant::quantize_layer_weights;
use invnorm_tensor::{ops, Tensor};

/// Which of the paper's four benchmark tasks an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Image classification (CIFAR-10 stand-in, MicroResNet).
    Images,
    /// Audio keyword classification (Speech-Commands stand-in, M5Net).
    Audio,
    /// Vessel segmentation (DRIVE stand-in, MicroUNet).
    Segmentation,
    /// CO₂ forecasting (Mauna Loa stand-in, LstmForecaster).
    Co2,
}

impl TaskKind {
    /// All four tasks in the paper's Table I order.
    pub fn all() -> [TaskKind; 4] {
        [
            TaskKind::Images,
            TaskKind::Audio,
            TaskKind::Segmentation,
            TaskKind::Co2,
        ]
    }

    /// Table I metric name for this task.
    pub fn metric_name(&self) -> &'static str {
        match self {
            TaskKind::Images | TaskKind::Audio => "Accuracy ↑",
            TaskKind::Segmentation => "mIoU ↑",
            TaskKind::Co2 => "RMSE ↓",
        }
    }

    /// Whether larger metric values are better.
    pub fn higher_is_better(&self) -> bool {
        !matches!(self, TaskKind::Co2)
    }

    /// Table I topology name.
    pub fn topology_name(&self) -> &'static str {
        match self {
            TaskKind::Images => "MicroResNet",
            TaskKind::Audio => "M5Net",
            TaskKind::Segmentation => "MicroUNet",
            TaskKind::Co2 => "LstmForecaster",
        }
    }

    /// Stand-in dataset name.
    pub fn dataset_name(&self) -> &'static str {
        match self {
            TaskKind::Images => "synthetic CIFAR-like images",
            TaskKind::Audio => "synthetic speech commands",
            TaskKind::Segmentation => "synthetic DRIVE-like vessels",
            TaskKind::Co2 => "synthetic atmospheric CO2",
        }
    }
}

fn adam() -> Adam {
    Adam::new(0.01)
}

fn train_config(scale: &ExperimentScale) -> TrainConfig {
    TrainConfig {
        epochs: scale.train_epochs,
        batch_size: 16,
        shuffle: true,
        seed: 9,
    }
}

// --------------------------------------------------------------------------
// Image classification task
// --------------------------------------------------------------------------

/// Image classification task (MicroResNet on the synthetic image dataset).
#[derive(Debug)]
pub struct ImageTask {
    /// The dataset split.
    pub split: ClassificationSplit,
    scale: ExperimentScale,
    binary: bool,
}

impl ImageTask {
    /// Generates the dataset at the given scale.
    pub fn prepare(scale: &ExperimentScale) -> Self {
        let config = ImageDatasetConfig {
            classes: 6,
            size: 16,
            channels: 3,
            train_per_class: scale.dataset_scale,
            test_per_class: (scale.dataset_scale / 3).max(4),
            ..ImageDatasetConfig::default()
        };
        Self {
            split: images::generate(&config),
            scale: *scale,
            binary: true,
        }
    }

    /// Uses full-precision activations instead of binary ones (ablation).
    #[must_use]
    pub fn full_precision(mut self) -> Self {
        self.binary = false;
        self
    }

    /// Builds an untrained model in the given variant.
    ///
    /// # Errors
    ///
    /// Returns an error when the variant configuration is invalid.
    pub fn build(&self, variant: NormVariant) -> Result<BuiltModel> {
        let config = MicroResNetConfig {
            in_channels: 3,
            classes: self.split.classes,
            base_channels: 8,
            binary_activations: self.binary,
            seed: 100,
        };
        resnet::build(&config, variant)
    }

    /// Builds, trains and (post-training-)quantizes a model.
    ///
    /// # Errors
    ///
    /// Returns an error when building or training fails.
    pub fn train(&self, variant: NormVariant) -> Result<BuiltModel> {
        let mut model = self.build(variant)?;
        let mut optimizer = adam();
        train::fit_classifier(
            &mut model,
            &mut optimizer,
            &self.split.train_inputs,
            &self.split.train_labels,
            &train_config(&self.scale),
        )?;
        let quant = model.quant;
        quantize_layer_weights(&mut model, &quant)?;
        Ok(model)
    }

    /// Test-set accuracy (Monte-Carlo averaged for Bayesian variants).
    ///
    /// # Errors
    ///
    /// Returns an error when evaluation fails.
    pub fn accuracy(&self, model: &mut BuiltModel) -> Result<f32> {
        classification_accuracy(
            model,
            &self.split.test_inputs,
            &self.split.test_labels,
            self.scale.mc_passes,
        )
    }

    /// Full Bayesian prediction on arbitrary inputs (used by the OOD
    /// experiment).
    ///
    /// # Errors
    ///
    /// Returns an error when evaluation fails.
    pub fn predict(
        &self,
        model: &mut BuiltModel,
        inputs: &Tensor,
    ) -> Result<ClassificationPrediction> {
        BayesianPredictor::new(self.scale.mc_passes).predict_classification(model, inputs)
    }
}

// --------------------------------------------------------------------------
// Audio classification task
// --------------------------------------------------------------------------

/// Audio keyword classification task (M5Net on the synthetic audio dataset).
#[derive(Debug)]
pub struct AudioTask {
    /// The dataset split.
    pub split: ClassificationSplit,
    scale: ExperimentScale,
}

impl AudioTask {
    /// Generates the dataset at the given scale.
    pub fn prepare(scale: &ExperimentScale) -> Self {
        let config = AudioDatasetConfig {
            classes: 6,
            length: 128,
            train_per_class: scale.dataset_scale,
            test_per_class: (scale.dataset_scale / 3).max(4),
            ..AudioDatasetConfig::default()
        };
        Self {
            split: audio::generate(&config),
            scale: *scale,
        }
    }

    /// Builds an untrained model in the given variant.
    ///
    /// # Errors
    ///
    /// Returns an error when the variant configuration is invalid.
    pub fn build(&self, variant: NormVariant) -> Result<BuiltModel> {
        m5::build(
            &M5NetConfig {
                classes: self.split.classes,
                base_channels: 8,
                seed: 200,
            },
            variant,
        )
    }

    /// Builds, trains and quantizes a model.
    ///
    /// # Errors
    ///
    /// Returns an error when building or training fails.
    pub fn train(&self, variant: NormVariant) -> Result<BuiltModel> {
        let mut model = self.build(variant)?;
        let mut optimizer = adam();
        train::fit_classifier(
            &mut model,
            &mut optimizer,
            &self.split.train_inputs,
            &self.split.train_labels,
            &train_config(&self.scale),
        )?;
        let quant = model.quant;
        quantize_layer_weights(&mut model, &quant)?;
        Ok(model)
    }

    /// Test-set accuracy (Monte-Carlo averaged for Bayesian variants).
    ///
    /// # Errors
    ///
    /// Returns an error when evaluation fails.
    pub fn accuracy(&self, model: &mut BuiltModel) -> Result<f32> {
        classification_accuracy(
            model,
            &self.split.test_inputs,
            &self.split.test_labels,
            self.scale.mc_passes,
        )
    }
}

// --------------------------------------------------------------------------
// Segmentation task
// --------------------------------------------------------------------------

/// Vessel segmentation task (MicroUNet on the synthetic vessel dataset).
#[derive(Debug)]
pub struct SegmentationTask {
    /// The dataset split.
    pub split: DenseSplit,
    scale: ExperimentScale,
}

impl SegmentationTask {
    /// Generates the dataset at the given scale.
    pub fn prepare(scale: &ExperimentScale) -> Self {
        let config = SegmentationDatasetConfig {
            size: 16,
            vessels_per_image: 2,
            train_images: scale.dataset_scale * 2,
            test_images: scale.dataset_scale.max(8) / 2 * 2,
            ..SegmentationDatasetConfig::default()
        };
        Self {
            split: segmentation::generate(&config),
            scale: *scale,
        }
    }

    /// Builds an untrained model in the given variant.
    ///
    /// # Errors
    ///
    /// Returns an error when the variant configuration is invalid.
    pub fn build(&self, variant: NormVariant) -> Result<BuiltModel> {
        unet::build(
            &MicroUNetConfig {
                base_channels: 8,
                quantized_activations: true,
                seed: 300,
            },
            variant,
        )
    }

    /// Builds, trains and quantizes a model.
    ///
    /// # Errors
    ///
    /// Returns an error when building or training fails.
    pub fn train(&self, variant: NormVariant) -> Result<BuiltModel> {
        let mut model = self.build(variant)?;
        let mut optimizer = adam();
        train::fit_segmenter(
            &mut model,
            &mut optimizer,
            &self.split.train_inputs,
            &self.split.train_targets,
            &train_config(&self.scale),
        )?;
        let quant = model.quant;
        quantize_layer_weights(&mut model, &quant)?;
        Ok(model)
    }

    /// Mean IoU on the test set (Monte-Carlo averaged probabilities for
    /// Bayesian variants).
    ///
    /// # Errors
    ///
    /// Returns an error when evaluation fails.
    pub fn mean_iou(&self, model: &mut BuiltModel) -> Result<f32> {
        let passes = if model.variant.is_bayesian() {
            self.scale.mc_passes
        } else {
            1
        };
        // Average the per-pass sigmoid probabilities, then threshold.
        let mut mean_probs = Tensor::zeros(self.split.test_targets.dims());
        for _ in 0..passes {
            let logits = model.forward(&self.split.test_inputs, Mode::Eval)?;
            let probs = logits.map(|z| 1.0 / (1.0 + (-z).exp()));
            mean_probs.add_assign(&probs)?;
        }
        let mean_probs = mean_probs.scale(1.0 / passes as f32);
        metrics::mean_iou(&mean_probs, &self.split.test_targets, 0.5)
    }
}

// --------------------------------------------------------------------------
// CO₂ forecasting task
// --------------------------------------------------------------------------

/// CO₂ forecasting task (LstmForecaster on the synthetic Keeling curve).
#[derive(Debug)]
pub struct Co2Task {
    /// The dataset split (inputs `[N, window, 1]`, targets `[N, 1]`).
    pub split: DenseSplit,
    scale: ExperimentScale,
}

impl Co2Task {
    /// Generates the dataset at the given scale.
    pub fn prepare(scale: &ExperimentScale) -> Self {
        let config = Co2DatasetConfig {
            months: (scale.dataset_scale * 10).max(120),
            window: 12,
            ..Co2DatasetConfig::default()
        };
        let (split, _series) = timeseries::generate(&config);
        Self {
            split,
            scale: *scale,
        }
    }

    /// Builds an untrained model in the given variant.
    ///
    /// # Errors
    ///
    /// Returns an error when the variant configuration is invalid.
    pub fn build(&self, variant: NormVariant) -> Result<BuiltModel> {
        lstm::build(
            &LstmForecasterConfig {
                input_features: 1,
                hidden: 16,
                seed: 400,
            },
            variant,
        )
    }

    /// Builds, trains and quantizes a model.
    ///
    /// # Errors
    ///
    /// Returns an error when building or training fails.
    pub fn train(&self, variant: NormVariant) -> Result<BuiltModel> {
        let mut model = self.build(variant)?;
        let mut optimizer = adam();
        train::fit_regressor(
            &mut model,
            &mut optimizer,
            &self.split.train_inputs,
            &self.split.train_targets,
            &train_config(&self.scale),
        )?;
        let quant = model.quant;
        quantize_layer_weights(&mut model, &quant)?;
        Ok(model)
    }

    /// RMSE on the test windows (Monte-Carlo mean prediction for Bayesian
    /// variants).
    ///
    /// # Errors
    ///
    /// Returns an error when evaluation fails.
    pub fn rmse(&self, model: &mut BuiltModel) -> Result<f32> {
        let passes = if model.variant.is_bayesian() {
            self.scale.mc_passes
        } else {
            1
        };
        let prediction =
            BayesianPredictor::new(passes).predict_regression(model, &self.split.test_inputs)?;
        prediction.rmse(&self.split.test_targets)
    }
}

// --------------------------------------------------------------------------
// Shared helpers
// --------------------------------------------------------------------------

/// Monte-Carlo averaged classification accuracy (single pass for
/// deterministic models).
fn classification_accuracy(
    model: &mut BuiltModel,
    inputs: &Tensor,
    labels: &[usize],
    mc_passes: usize,
) -> Result<f32> {
    let passes = if model.variant.is_bayesian() {
        mc_passes
    } else {
        1
    };
    let prediction = BayesianPredictor::new(passes).predict_classification(model, inputs)?;
    prediction.accuracy(labels)
}

/// Deterministic single-pass accuracy, used where the Bayesian averaging is
/// itself the quantity under ablation.
pub fn single_pass_accuracy(
    model: &mut BuiltModel,
    inputs: &Tensor,
    labels: &[usize],
) -> Result<f32> {
    let logits = model.forward(inputs, Mode::Eval)?;
    let probs = ops::softmax_rows(&logits)?;
    metrics::accuracy(&probs, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_kind_metadata() {
        assert_eq!(TaskKind::all().len(), 4);
        assert_eq!(TaskKind::Images.metric_name(), "Accuracy ↑");
        assert_eq!(TaskKind::Segmentation.metric_name(), "mIoU ↑");
        assert_eq!(TaskKind::Co2.metric_name(), "RMSE ↓");
        assert!(TaskKind::Images.higher_is_better());
        assert!(!TaskKind::Co2.higher_is_better());
        assert_eq!(TaskKind::Audio.topology_name(), "M5Net");
        assert!(TaskKind::Co2.dataset_name().contains("CO2"));
    }

    #[test]
    fn image_task_trains_and_evaluates() {
        let scale = ExperimentScale::quick();
        let task = ImageTask::prepare(&scale).full_precision();
        let mut model = task.train(NormVariant::proposed()).unwrap();
        let accuracy = task.accuracy(&mut model).unwrap();
        assert!((0.0..=1.0).contains(&accuracy));
        let prediction = task.predict(&mut model, &task.split.test_inputs).unwrap();
        assert_eq!(prediction.mean_probs.dims()[0], task.split.test_len());
    }

    #[test]
    fn audio_task_trains_and_evaluates() {
        let scale = ExperimentScale::quick();
        let task = AudioTask::prepare(&scale);
        let mut model = task.train(NormVariant::Conventional).unwrap();
        let accuracy = task.accuracy(&mut model).unwrap();
        assert!((0.0..=1.0).contains(&accuracy));
    }

    #[test]
    fn segmentation_task_trains_and_evaluates() {
        let scale = ExperimentScale::quick();
        let task = SegmentationTask::prepare(&scale);
        let mut model = task.train(NormVariant::proposed()).unwrap();
        let miou = task.mean_iou(&mut model).unwrap();
        assert!((0.0..=1.0).contains(&miou));
    }

    #[test]
    fn co2_task_trains_and_evaluates() {
        let scale = ExperimentScale::quick();
        let task = Co2Task::prepare(&scale);
        let mut model = task.train(NormVariant::proposed()).unwrap();
        let rmse = task.rmse(&mut model).unwrap();
        assert!(rmse.is_finite() && rmse >= 0.0);
    }

    #[test]
    fn single_pass_accuracy_works() {
        let scale = ExperimentScale::quick();
        let task = ImageTask::prepare(&scale).full_precision();
        let mut model = task.build(NormVariant::Conventional).unwrap();
        let acc =
            single_pass_accuracy(&mut model, &task.split.test_inputs, &task.split.test_labels)
                .unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }
}
