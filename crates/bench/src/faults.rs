//! Fault-evaluation helpers shared by the robustness experiments.
//!
//! The paper injects conductance variation into the **weights** of 8-bit
//! models but into the **normalized pre-activation values** of binary-weight
//! models (Sec. IV-A2). [`evaluate_under_fault`] routes each fault model to
//! the right injection point for a given model and wraps the Monte-Carlo
//! protocol (mean ± std over chip instances).

use crate::Result;
use invnorm_imc::fault::FaultModel;
use invnorm_imc::montecarlo::MonteCarloSummary;
use invnorm_models::BuiltModel;
use invnorm_quant::config::Precision;
use invnorm_tensor::stats::RunningStats;

/// Where a fault is injected for a particular (model, fault) combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Perturb the programmed weights (8-bit models, and bit-flips for every
    /// model).
    Weights,
    /// Perturb the normalized pre-activation values through the model's
    /// [`invnorm_imc::NoiseHandle`] (analog variation on binary-weight
    /// models, which have no analog weight magnitude to perturb).
    PreActivation,
}

/// Chooses the injection point following the paper's protocol.
pub fn fault_target(model: &BuiltModel, fault: &FaultModel) -> FaultTarget {
    let binary_weights = matches!(model.quant.weights, Precision::Binary);
    match fault {
        FaultModel::AdditiveVariation { .. }
        | FaultModel::MultiplicativeVariation { .. }
        | FaultModel::UniformNoise { .. }
            if binary_weights =>
        {
            FaultTarget::PreActivation
        }
        _ => FaultTarget::Weights,
    }
}

/// Translates a generic bit-flip request into the representation-appropriate
/// fault model for the given network (sign flips for binary weights, `bits`
/// chosen from the quantization config otherwise).
pub fn bitflip_for(model: &BuiltModel, rate: f32) -> FaultModel {
    match model.quant.weights {
        Precision::Binary => FaultModel::BinaryBitFlip { rate },
        Precision::Bits(bits) => FaultModel::BitFlip { rate, bits },
        Precision::Float => FaultModel::BitFlip { rate, bits: 8 },
    }
}

/// Evaluates `metric` under `runs` independent realizations of `fault`,
/// routed to the correct injection point, and returns the Monte-Carlo
/// summary (mean ± std over chip instances).
///
/// # Errors
///
/// Returns an error when injection or evaluation fails.
pub fn evaluate_under_fault<F>(
    model: &mut BuiltModel,
    fault: FaultModel,
    runs: usize,
    seed: u64,
    mut metric: F,
) -> Result<MonteCarloSummary>
where
    F: FnMut(&mut BuiltModel) -> Result<f32>,
{
    match fault_target(model, &fault) {
        FaultTarget::Weights => {
            // [`MonteCarloEngine::run`] takes the network as `&mut dyn Layer`,
            // but the metric here needs the full `BuiltModel` (for its
            // Bayesian configuration), so run the identical protocol — same
            // per-run RNG stream derivation, inject → evaluate → restore —
            // directly on the model.
            let mut per_run = Vec::with_capacity(runs.max(1));
            for run in 0..runs.max(1) {
                let mut rng = invnorm_tensor::Rng::seed_from(
                    seed ^ (run as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut injector = invnorm_imc::injector::WeightFaultInjector::new(fault)?;
                injector.inject(model, &mut rng)?;
                let value = metric(model);
                injector.restore(model)?;
                per_run.push(value?);
            }
            Ok(summary_from(fault.label(), per_run))
        }
        FaultTarget::PreActivation => {
            let mut per_run = Vec::with_capacity(runs.max(1));
            for _run in 0..runs.max(1) {
                model.noise.set(fault);
                let value = metric(model);
                model.noise.clear();
                per_run.push(value?);
            }
            Ok(summary_from(
                format!("{} (pre-activation)", fault.label()),
                per_run,
            ))
        }
    }
}

fn summary_from(label: String, per_run: Vec<f32>) -> MonteCarloSummary {
    let mut stats = RunningStats::new();
    stats.extend_from_slice(&per_run);
    MonteCarloSummary {
        fault_label: label,
        mean: stats.mean(),
        std: stats.std(),
        min: stats.min(),
        max: stats.max(),
        per_run,
        kernel_tier: invnorm_tensor::dispatch::active().name(),
        telemetry: None,
    }
}

/// Builds the additive-variation sweep used by Figs. 5 and 6 (σ from 0 to
/// `max_sigma` in `points` steps, fault-free point included).
pub fn variation_sweep(max_sigma: f32, points: usize) -> Vec<FaultModel> {
    let mut sweep = vec![FaultModel::None];
    for i in 1..=points.max(1) {
        sweep.push(FaultModel::AdditiveVariation {
            sigma: max_sigma * i as f32 / points.max(1) as f32,
        });
    }
    sweep
}

/// Builds the multiplicative-variation sweep used by Fig. 6b.
pub fn multiplicative_sweep(max_sigma: f32, points: usize) -> Vec<FaultModel> {
    let mut sweep = vec![FaultModel::None];
    for i in 1..=points.max(1) {
        sweep.push(FaultModel::MultiplicativeVariation {
            sigma: max_sigma * i as f32 / points.max(1) as f32,
        });
    }
    sweep
}

/// Builds the uniform-noise sweep used in the paper's extra LSTM experiment.
pub fn uniform_noise_sweep(max_strength: f32, points: usize) -> Vec<FaultModel> {
    let mut sweep = vec![FaultModel::None];
    for i in 1..=points.max(1) {
        sweep.push(FaultModel::UniformNoise {
            strength: max_strength * i as f32 / points.max(1) as f32,
        });
    }
    sweep
}

/// Bit-flip rate sweep (0 to `max_rate`), as raw rates; convert with
/// [`bitflip_for`] once the model (and hence the weight representation) is
/// known.
pub fn bitflip_rates(max_rate: f32, points: usize) -> Vec<f32> {
    let mut sweep = vec![0.0];
    for i in 1..=points.max(1) {
        sweep.push(max_rate * i as f32 / points.max(1) as f32);
    }
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use crate::tasks::ImageTask;
    use invnorm_models::NormVariant;

    #[test]
    fn sweeps_start_fault_free_and_grow() {
        let sweep = variation_sweep(1.0, 4);
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[0], FaultModel::None);
        assert!(
            matches!(sweep[4], FaultModel::AdditiveVariation { sigma } if (sigma - 1.0).abs() < 1e-6)
        );
        assert_eq!(multiplicative_sweep(0.5, 2).len(), 3);
        assert_eq!(uniform_noise_sweep(0.5, 2).len(), 3);
        let rates = bitflip_rates(0.3, 3);
        assert_eq!(rates, vec![0.0, 0.1, 0.2, 0.3]);
    }

    #[test]
    fn bitflip_translation_follows_weight_precision() {
        let scale = ExperimentScale::quick();
        let task = ImageTask::prepare(&scale);
        let binary_model = task.build(NormVariant::Conventional).unwrap();
        assert!(matches!(
            bitflip_for(&binary_model, 0.1),
            FaultModel::BinaryBitFlip { .. }
        ));
        let fp_model = ImageTask::prepare(&scale)
            .full_precision()
            .build(NormVariant::Conventional)
            .unwrap();
        assert!(matches!(
            bitflip_for(&fp_model, 0.1),
            FaultModel::BitFlip { bits: 8, .. }
        ));
    }

    #[test]
    fn fault_target_routing() {
        let scale = ExperimentScale::quick();
        let task = ImageTask::prepare(&scale);
        let binary_model = task.build(NormVariant::Conventional).unwrap();
        assert_eq!(
            fault_target(&binary_model, &FaultModel::AdditiveVariation { sigma: 0.3 }),
            FaultTarget::PreActivation
        );
        assert_eq!(
            fault_target(&binary_model, &FaultModel::BinaryBitFlip { rate: 0.1 }),
            FaultTarget::Weights
        );
        let fp_model = ImageTask::prepare(&scale)
            .full_precision()
            .build(NormVariant::Conventional)
            .unwrap();
        assert_eq!(
            fault_target(&fp_model, &FaultModel::AdditiveVariation { sigma: 0.3 }),
            FaultTarget::Weights
        );
    }

    #[test]
    fn evaluate_under_fault_restores_model() {
        let scale = ExperimentScale::quick();
        let task = ImageTask::prepare(&scale).full_precision();
        let mut model = task.build(NormVariant::Conventional).unwrap();
        let clean = task.accuracy(&mut model).unwrap();
        let summary = evaluate_under_fault(
            &mut model,
            FaultModel::AdditiveVariation { sigma: 0.4 },
            3,
            7,
            |m| task.accuracy(m),
        )
        .unwrap();
        assert_eq!(summary.runs(), 3);
        let after = task.accuracy(&mut model).unwrap();
        assert!((clean - after).abs() < 1e-6, "weights must be restored");
    }

    #[test]
    fn preactivation_route_uses_noise_handle() {
        let scale = ExperimentScale::quick();
        let task = ImageTask::prepare(&scale); // binary activations
        let mut model = task.build(NormVariant::Conventional).unwrap();
        let summary = evaluate_under_fault(
            &mut model,
            FaultModel::AdditiveVariation { sigma: 0.5 },
            2,
            3,
            |m| task.accuracy(m),
        )
        .unwrap();
        assert!(summary.fault_label.contains("pre-activation"));
        // Handle cleared after the evaluation.
        assert!(!model.noise.current().is_active());
    }
}
