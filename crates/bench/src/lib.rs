//! # invnorm-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation section on the synthetic stand-in tasks:
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Fig. 1 (activation shift under bit flips) | [`experiments::fig1`] | `fig1_activation_shift` |
//! | Table I (baseline accuracy, 4 tasks × 4 methods) | [`experiments::table1`] | `table1_baseline` |
//! | Fig. 5 (ResNet / U-Net robustness curves) | [`experiments::fig5`] | `fig5_resnet_drive` |
//! | Fig. 6 (M5 / LSTM robustness curves) | [`experiments::fig6`] | `fig6_m5_lstm` |
//! | Fig. 7 (OOD behaviour) | [`experiments::fig7`] | `fig7_ood` |
//! | Sec. IV-F (initialization ablation) | [`experiments::ablation`] | `ablation_init` |
//! | Sec. III-B (dropout granularity/rate, extra ablation) | [`experiments::ablation`] | `ablation_dropout` |
//!
//! Each binary prints the regenerated rows/series in plain text and also
//! writes a CSV next to it under `results/` (see [`report`]). Absolute
//! numbers differ from the paper (synthetic data, scaled-down models); the
//! reproduction target is the *shape* of each result — see DESIGN.md and
//! EXPERIMENTS.md.
//!
//! The same experiment entry points are reused by the Criterion benches in
//! `benches/` (at reduced scale) so `cargo bench` exercises every pipeline.

// This crate must stay free of `unsafe`; all unsafe code in the
// workspace is confined to `crates/tensor` (lint rule R2).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiments;
pub mod faults;
pub mod regression;
pub mod report;
pub mod scale;
pub mod tasks;

pub use report::Table;
pub use scale::ExperimentScale;

/// Convenience result alias re-using the NN error type.
pub type Result<T> = std::result::Result<T, invnorm_nn::NnError>;
