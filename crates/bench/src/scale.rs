//! Experiment scaling knobs.
//!
//! The paper's protocol (100 Monte-Carlo chip instances, full test sets,
//! long training) is supported, but the default for the runnable binaries is
//! a lighter configuration that preserves the shape of every result while
//! finishing in minutes on a laptop. Unit tests and Criterion benches use
//! [`ExperimentScale::quick`].

use serde::{Deserialize, Serialize};

/// Controls how much work each experiment performs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Training epochs per model.
    pub train_epochs: usize,
    /// Monte-Carlo fault-simulation runs (chip instances) per sweep point.
    pub mc_runs: usize,
    /// Monte-Carlo forward passes per Bayesian prediction.
    pub mc_passes: usize,
    /// Number of sweep points per fault axis (bit-flip rate, σ, ...).
    pub sweep_points: usize,
    /// Training samples per class (classification tasks) or total training
    /// samples (dense tasks) — passed to the dataset generators.
    pub dataset_scale: usize,
}

impl ExperimentScale {
    /// The default scale used by the experiment binaries.
    pub fn standard() -> Self {
        Self {
            train_epochs: 12,
            mc_runs: 20,
            mc_passes: 8,
            sweep_points: 5,
            dataset_scale: 24,
        }
    }

    /// A minimal scale for unit tests and Criterion benches (seconds, not
    /// minutes).
    pub fn quick() -> Self {
        Self {
            train_epochs: 3,
            mc_runs: 3,
            mc_passes: 3,
            sweep_points: 3,
            dataset_scale: 8,
        }
    }

    /// The paper's full protocol (100 chip instances); expect long runtimes.
    pub fn paper() -> Self {
        Self {
            train_epochs: 30,
            mc_runs: 100,
            mc_passes: 20,
            sweep_points: 7,
            dataset_scale: 48,
        }
    }

    /// Reads the scale from the `INVNORM_SCALE` environment variable
    /// (`quick`, `standard` or `paper`), defaulting to `standard`.
    pub fn from_env() -> Self {
        match std::env::var("INVNORM_SCALE").as_deref() {
            Ok("quick") => Self::quick(),
            Ok("paper") => Self::paper(),
            _ => Self::standard(),
        }
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_cost() {
        let quick = ExperimentScale::quick();
        let standard = ExperimentScale::standard();
        let paper = ExperimentScale::paper();
        assert!(quick.mc_runs < standard.mc_runs);
        assert!(standard.mc_runs < paper.mc_runs);
        assert!(quick.train_epochs < paper.train_epochs);
        assert_eq!(ExperimentScale::default().mc_runs, standard.mc_runs);
    }

    #[test]
    fn from_env_defaults_to_standard() {
        // The variable is not set inside the test harness.
        if std::env::var("INVNORM_SCALE").is_err() {
            assert_eq!(
                ExperimentScale::from_env().mc_runs,
                ExperimentScale::standard().mc_runs
            );
        }
    }
}
