//! Fig. 7 — uncertainty behaviour on out-of-distribution (OOD) data.
//!
//! Paper claims being reproduced: as the test distribution is shifted (by
//! adding uniform noise or rotating the images in 7° stages), the accuracy
//! of the Bayesian prediction decreases while its NLL increases, and
//! thresholding the per-sample NLL at the in-distribution mean detects a
//! large fraction of the OOD inputs (the paper reports up to 55 % for noise
//! and 79 % for rotation).

use crate::report::Table;
use crate::scale::ExperimentScale;
use crate::tasks::ImageTask;
use crate::Result;
use invnorm_core::ood::OodDetector;
use invnorm_datasets::ood::{add_uniform_noise, noise_stages, paper_rotation_stages};
use invnorm_models::NormVariant;
use invnorm_tensor::Rng;

/// Runs the Fig. 7 experiment: two tables (rotation sweep, noise sweep), each
/// reporting accuracy, NLL and OOD-detection rate per shift stage.
///
/// # Errors
///
/// Returns an error when the model fails to build, train or evaluate.
pub fn run(scale: &ExperimentScale) -> Result<Vec<Table>> {
    let task = ImageTask::prepare(scale);
    let mut model = task.train(NormVariant::proposed())?;

    // Calibrate the OOD detector on the clean (in-distribution) test set.
    let id_prediction = task.predict(&mut model, &task.split.test_inputs)?;
    let detector = OodDetector::calibrate(&id_prediction, &task.split.test_labels)?;
    let id_accuracy = id_prediction.accuracy(&task.split.test_labels)?;
    let id_nll = id_prediction.nll(&task.split.test_labels)?;

    // ----------------------------------------------------------- rotations
    let mut rotation_table = Table::new(
        "Fig. 7 (right) — accuracy / NLL / OOD detection vs rotation angle",
        &["Rotation (deg)", "Accuracy", "NLL", "OOD detection rate"],
    );
    rotation_table.push_row(vec![
        "0".into(),
        format!("{id_accuracy:.4}"),
        format!("{id_nll:.4}"),
        format!(
            "{:.4}",
            detector.detection_rate_for(&id_prediction, &task.split.test_labels)?
        ),
    ]);
    let rotation_stages: Vec<f32> = paper_rotation_stages()
        .into_iter()
        .take((scale.sweep_points * 2).max(3))
        .collect();
    for degrees in rotation_stages {
        let rotated = invnorm_datasets::ood::rotate_images(&task.split.test_inputs, degrees);
        let prediction = task.predict(&mut model, &rotated)?;
        rotation_table.push_row(vec![
            format!("{degrees:.0}"),
            format!("{:.4}", prediction.accuracy(&task.split.test_labels)?),
            format!("{:.4}", prediction.nll(&task.split.test_labels)?),
            format!(
                "{:.4}",
                detector.detection_rate_for(&prediction, &task.split.test_labels)?
            ),
        ]);
    }

    // --------------------------------------------------------------- noise
    let mut noise_table = Table::new(
        "Fig. 7 (left) — accuracy / NLL / OOD detection vs uniform noise strength",
        &["Noise strength", "Accuracy", "NLL", "OOD detection rate"],
    );
    noise_table.push_row(vec![
        "0.00".into(),
        format!("{id_accuracy:.4}"),
        format!("{id_nll:.4}"),
        format!(
            "{:.4}",
            detector.detection_rate_for(&id_prediction, &task.split.test_labels)?
        ),
    ]);
    let mut rng = Rng::seed_from(77);
    for strength in noise_stages(scale.sweep_points.max(3), 2.0) {
        let noisy = add_uniform_noise(&task.split.test_inputs, strength, &mut rng);
        let prediction = task.predict(&mut model, &noisy)?;
        noise_table.push_row(vec![
            format!("{strength:.2}"),
            format!("{:.4}", prediction.accuracy(&task.split.test_labels)?),
            format!("{:.4}", prediction.nll(&task.split.test_labels)?),
            format!(
                "{:.4}",
                detector.detection_rate_for(&prediction, &task.split.test_labels)?
            ),
        ]);
    }

    Ok(vec![noise_table, rotation_table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig7_reports_both_shift_families() {
        let scale = ExperimentScale::quick();
        let tables = run(&scale).unwrap();
        assert_eq!(tables.len(), 2);
        assert!(tables[0].title().contains("noise"));
        assert!(tables[1].title().contains("rotation"));
        assert!(tables[0].len() >= 4);
        assert!(tables[1].len() >= 4);
    }
}
