//! Table I — fault-free (baseline) predictive performance of the four
//! methods on the four tasks.
//!
//! Paper claim being reproduced: the proposed inverted-normalization BayNN
//! matches the conventional NN and the Dropout-based BayNN baselines on clean
//! data (within a fraction of a percent) across all tasks and precisions.

use crate::experiments::compared_variants;
use crate::report::Table;
use crate::scale::ExperimentScale;
use crate::tasks::{AudioTask, Co2Task, ImageTask, SegmentationTask, TaskKind};
use crate::Result;

/// Runs the Table I experiment and returns one table with a row per task.
///
/// # Errors
///
/// Returns an error when any model fails to build, train or evaluate.
pub fn run(scale: &ExperimentScale) -> Result<Vec<Table>> {
    let variants = compared_variants();
    let mut table = Table::new(
        "Table I — baseline (fault-free) performance",
        &[
            "Topology",
            "Dataset",
            "Metric",
            "W/A",
            "NN",
            "SpinDrop",
            "SpatialSpinDrop",
            "Proposed",
        ],
    );

    for task_kind in TaskKind::all() {
        let mut metrics = Vec::with_capacity(variants.len());
        let mut wa = String::new();
        for &variant in &variants {
            let (value, describe) = match task_kind {
                TaskKind::Images => {
                    let task = ImageTask::prepare(scale);
                    let mut model = task.train(variant)?;
                    (task.accuracy(&mut model)?, model.quant.describe())
                }
                TaskKind::Audio => {
                    let task = AudioTask::prepare(scale);
                    let mut model = task.train(variant)?;
                    (task.accuracy(&mut model)?, model.quant.describe())
                }
                TaskKind::Segmentation => {
                    let task = SegmentationTask::prepare(scale);
                    let mut model = task.train(variant)?;
                    (task.mean_iou(&mut model)?, model.quant.describe())
                }
                TaskKind::Co2 => {
                    let task = Co2Task::prepare(scale);
                    let mut model = task.train(variant)?;
                    (task.rmse(&mut model)?, model.quant.describe())
                }
            };
            wa = describe;
            metrics.push(value);
        }
        let mut row = vec![
            task_kind.topology_name().to_string(),
            task_kind.dataset_name().to_string(),
            task_kind.metric_name().to_string(),
            wa,
        ];
        row.extend(metrics.iter().map(|m| format!("{m:.4}")));
        table.push_row(row);
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table1_produces_all_rows() {
        let tables = run(&ExperimentScale::quick()).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 4);
        let text = tables[0].to_text();
        assert!(text.contains("MicroResNet"));
        assert!(text.contains("LstmForecaster"));
        assert!(text.contains("1/1"));
        assert!(text.contains("8/8"));
    }
}
