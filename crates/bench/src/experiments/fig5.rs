//! Fig. 5 — robustness of the image classifier (ResNet/CIFAR-10 stand-in)
//! and the segmentation network (U-Net/DRIVE stand-in) to bit-flip faults
//! and additive conductance variation.
//!
//! Paper claim being reproduced: under increasing fault strength the proposed
//! method degrades gracefully and retains a large margin (tens of accuracy
//! points at the strongest faults) over the conventional NN and the
//! Dropout-based BayNN baselines, with a narrower ± std band.

use crate::experiments::compared_variants;
use crate::faults::{bitflip_for, evaluate_under_fault, variation_sweep};
use crate::report::Table;
use crate::scale::ExperimentScale;
use crate::tasks::{ImageTask, SegmentationTask};
use crate::Result;
use invnorm_models::{BuiltModel, NormVariant};

/// Runs the Fig. 5 experiment: four tables (image × {bit-flip, variation},
/// segmentation × {bit-flip, variation}).
///
/// # Errors
///
/// Returns an error when any model fails to build, train or evaluate.
pub fn run(scale: &ExperimentScale) -> Result<Vec<Table>> {
    let variants = compared_variants();
    let mut tables = Vec::new();

    // ---------------------------------------------------------------- image
    {
        let task = ImageTask::prepare(scale);
        let mut models: Vec<(NormVariant, BuiltModel)> = Vec::new();
        for &variant in &variants {
            models.push((variant, task.train(variant)?));
        }
        tables.push(sweep_table(
            "Fig. 5a — image classification accuracy vs bit-flip rate",
            "Bit-flip rate",
            &crate::faults::bitflip_rates(0.3, scale.sweep_points)
                .iter()
                .map(|r| format!("{:.1}%", r * 100.0))
                .collect::<Vec<_>>(),
            &mut models,
            scale,
            |model, level_index, scale| {
                let rate = crate::faults::bitflip_rates(0.3, scale.sweep_points)[level_index];
                let fault = bitflip_for(model, rate);
                evaluate_under_fault(model, fault, scale.mc_runs, 50 + level_index as u64, |m| {
                    task.accuracy(m)
                })
            },
        )?);
        tables.push(sweep_table(
            "Fig. 5a — image classification accuracy vs additive variation σ",
            "σ",
            &sigma_labels(1.0, scale.sweep_points),
            &mut models,
            scale,
            |model, level_index, scale| {
                let fault = variation_sweep(1.0, scale.sweep_points)[level_index];
                evaluate_under_fault(model, fault, scale.mc_runs, 150 + level_index as u64, |m| {
                    task.accuracy(m)
                })
            },
        )?);
    }

    // --------------------------------------------------------- segmentation
    {
        let task = SegmentationTask::prepare(scale);
        let mut models: Vec<(NormVariant, BuiltModel)> = Vec::new();
        for &variant in &variants {
            models.push((variant, task.train(variant)?));
        }
        tables.push(sweep_table(
            "Fig. 5b — segmentation mIoU vs bit-flip rate",
            "Bit-flip rate",
            &crate::faults::bitflip_rates(0.3, scale.sweep_points)
                .iter()
                .map(|r| format!("{:.1}%", r * 100.0))
                .collect::<Vec<_>>(),
            &mut models,
            scale,
            |model, level_index, scale| {
                let rate = crate::faults::bitflip_rates(0.3, scale.sweep_points)[level_index];
                let fault = bitflip_for(model, rate);
                evaluate_under_fault(model, fault, scale.mc_runs, 250 + level_index as u64, |m| {
                    task.mean_iou(m)
                })
            },
        )?);
        tables.push(sweep_table(
            "Fig. 5b — segmentation mIoU vs additive variation σ",
            "σ",
            &sigma_labels(1.0, scale.sweep_points),
            &mut models,
            scale,
            |model, level_index, scale| {
                let fault = variation_sweep(1.0, scale.sweep_points)[level_index];
                evaluate_under_fault(model, fault, scale.mc_runs, 350 + level_index as u64, |m| {
                    task.mean_iou(m)
                })
            },
        )?);
    }

    Ok(tables)
}

/// Labels for a σ sweep including the fault-free point.
pub(crate) fn sigma_labels(max_sigma: f32, points: usize) -> Vec<String> {
    let mut labels = vec!["0.00".to_string()];
    for i in 1..=points.max(1) {
        labels.push(format!(
            "{:.2}",
            max_sigma * i as f32 / points.max(1) as f32
        ));
    }
    labels
}

/// Builds one sweep table: a row per fault level, a `mean ± std` column per
/// method.
pub(crate) fn sweep_table<F>(
    title: &str,
    level_header: &str,
    level_labels: &[String],
    models: &mut [(NormVariant, BuiltModel)],
    scale: &ExperimentScale,
    mut evaluate: F,
) -> Result<Table>
where
    F: FnMut(
        &mut BuiltModel,
        usize,
        &ExperimentScale,
    ) -> Result<invnorm_imc::montecarlo::MonteCarloSummary>,
{
    let mut headers: Vec<&str> = vec![level_header];
    let variant_labels: Vec<&'static str> = models.iter().map(|(v, _)| v.label()).collect();
    headers.extend(variant_labels.iter().copied());
    let mut table = Table::new(title, &headers);
    for (level_index, level_label) in level_labels.iter().enumerate() {
        let mut row = vec![level_label.clone()];
        for (_, model) in models.iter_mut() {
            let summary = evaluate(model, level_index, scale)?;
            row.push(Table::mean_std_cell(summary.mean, summary.std));
        }
        table.push_row(row);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig5_produces_four_tables() {
        let scale = ExperimentScale::quick();
        let tables = run(&scale).unwrap();
        assert_eq!(tables.len(), 4);
        for table in &tables {
            // Fault-free row + sweep points.
            assert_eq!(table.len(), scale.sweep_points + 1);
            assert!(table.to_text().contains("Proposed"));
        }
    }

    #[test]
    fn sigma_labels_include_zero() {
        let labels = sigma_labels(1.0, 4);
        assert_eq!(labels[0], "0.00");
        assert_eq!(labels.len(), 5);
        assert_eq!(labels[4], "1.00");
    }
}
