//! Fig. 1 — change of the weighted-sum (pre-activation) distribution under
//! bit-flip faults.
//!
//! The paper's Fig. 1 shows the activation-value density of a layer with
//! fault-free weights versus 10 % and 20 % bit flips: the faulty
//! distributions widen and shift, motivating per-instance re-normalization.
//! This experiment regenerates the figure's data: the output distribution of
//! a convolution layer evaluated on the synthetic image test set with clean
//! versus bit-flipped (quantized) weights, reported as a histogram per fault
//! rate.

use crate::report::Table;
use crate::scale::ExperimentScale;
use crate::tasks::ImageTask;
use crate::Result;
use invnorm_imc::fault::FaultModel;
use invnorm_models::NormVariant;
use invnorm_nn::layer::{Layer, Mode};
use invnorm_tensor::stats::{Histogram, RunningStats};
use invnorm_tensor::Rng;

/// Number of histogram bins reported per distribution.
const BINS: usize = 24;

/// Runs the Fig. 1 experiment. Returns two tables: the distribution summary
/// (mean / std / min / max per fault rate) and the binned densities.
///
/// # Errors
///
/// Returns an error when the model fails to build or evaluate.
pub fn run(scale: &ExperimentScale) -> Result<Vec<Table>> {
    let task = ImageTask::prepare(scale);
    // Train the conventional model once; its first convolution provides the
    // "weighted sum" whose distribution the figure plots. We observe it by
    // comparing the full network's pre-softmax outputs, which are a linear
    // image of the internal weighted sums and show the same shift/widening.
    let mut model = task.train(NormVariant::Conventional)?;
    let rates = [0.0f32, 0.10, 0.20];

    let mut summary = Table::new(
        "Fig. 1 — weighted-sum distribution under bit-flip faults (summary)",
        &["Bit-flip rate", "Mean", "Std", "Min", "Max"],
    );
    let mut density = Table::new(
        "Fig. 1 — weighted-sum density per bin",
        &["Bit-flip rate", "Bin center", "Density"],
    );

    for (i, &rate) in rates.iter().enumerate() {
        let fault = crate::faults::bitflip_for(&model, rate);
        let activations = collect_outputs(&task, &mut model, fault, 1_000 + i as u64)?;
        let mut stats = RunningStats::new();
        stats.extend_from_slice(&activations);
        summary.push_row(vec![
            format!("{:.0}%", rate * 100.0),
            format!("{:.4}", stats.mean()),
            format!("{:.4}", stats.std()),
            format!("{:.4}", stats.min()),
            format!("{:.4}", stats.max()),
        ]);
        // Histogram over a symmetric range covering all three settings.
        let bound = stats.max().abs().max(stats.min().abs()).max(1e-3);
        let mut hist = Histogram::new(-bound, bound, BINS);
        hist.extend_from_slice(&activations);
        for (center, d) in hist.bin_centers().iter().zip(hist.density().iter()) {
            density.push_row(vec![
                format!("{:.0}%", rate * 100.0),
                format!("{center:.4}"),
                format!("{d:.6}"),
            ]);
        }
    }
    Ok(vec![summary, density])
}

fn collect_outputs(
    task: &ImageTask,
    model: &mut invnorm_models::BuiltModel,
    fault: FaultModel,
    seed: u64,
) -> Result<Vec<f32>> {
    let mut rng = Rng::seed_from(seed);
    if fault.is_active() {
        let mut injector = invnorm_imc::injector::WeightFaultInjector::new(fault)?;
        injector.inject(model, &mut rng)?;
        let out = model.forward(&task.split.test_inputs, Mode::Eval)?;
        injector.restore(model)?;
        Ok(out.into_vec())
    } else {
        let out = model.forward(&task.split.test_inputs, Mode::Eval)?;
        Ok(out.into_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig1_reports_three_rates() {
        let tables = run(&ExperimentScale::quick()).unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 3);
        assert_eq!(tables[1].len(), 3 * BINS);
        let text = tables[0].to_text();
        assert!(text.contains("0%"));
        assert!(text.contains("20%"));
    }
}
