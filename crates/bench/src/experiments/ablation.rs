//! Ablations over the design choices DESIGN.md calls out:
//!
//! * **Initialization spread** (paper Sec. IV-F): larger σγ/σβ trades a
//!   little clean accuracy for robustness.
//! * **Affine-dropout rate and granularity** (paper Sec. III-B): vector-wise
//!   vs element-wise dropping and the effect of the drop probability.
//!
//! Both ablations use a compact purpose-built CNN (conv → inverted-norm →
//! sign → conv → inverted-norm → sign → GAP → linear) on the synthetic image
//! task, so the effect of the inverted-normalization hyper-parameters is not
//! confounded by the rest of the MicroResNet architecture.

use crate::faults::evaluate_under_fault;
use crate::report::Table;
use crate::scale::ExperimentScale;
use crate::tasks::ImageTask;
use crate::Result;
use invnorm_core::affine_dropout::DropGranularity;
use invnorm_core::bayesian::BayesianPredictor;
use invnorm_core::init::AffineInit;
use invnorm_core::inverted_norm::{InvNormConfig, InvertedNorm};
use invnorm_imc::fault::FaultModel;
use invnorm_imc::injector::NoiseHandle;
use invnorm_models::variant::BuiltModel;
use invnorm_models::NormVariant;
use invnorm_nn::activation::SignSte;
use invnorm_nn::conv::Conv2d;
use invnorm_nn::linear::Linear;
use invnorm_nn::optim::Adam;
use invnorm_nn::pool::GlobalAvgPool2d;
use invnorm_nn::reshape::Flatten;
use invnorm_nn::train::{self, TrainConfig};
use invnorm_nn::Sequential;
use invnorm_quant::QuantConfig;
use invnorm_tensor::Rng;

/// Builds the compact ablation CNN with a custom inverted-norm configuration.
fn build_ablation_cnn(classes: usize, config: &InvNormConfig) -> Result<BuiltModel> {
    let mut rng = Rng::seed_from(4242);
    let mut net = Sequential::new();
    net.push(Box::new(Conv2d::with_bias(3, 8, 3, 1, 1, false, &mut rng)));
    net.push(Box::new(InvertedNorm::new(8, config, &mut rng)?));
    net.push(Box::new(SignSte::new()));
    net.push(Box::new(Conv2d::with_bias(8, 16, 3, 2, 1, false, &mut rng)));
    net.push(Box::new(InvertedNorm::new(
        16,
        &config.clone().with_seed(config.seed ^ 0xBEEF),
        &mut rng,
    )?));
    net.push(Box::new(SignSte::new()));
    net.push(Box::new(GlobalAvgPool2d::new()));
    net.push(Box::new(Flatten::new()));
    net.push(Box::new(Linear::new(16, classes, &mut rng)));
    Ok(BuiltModel {
        network: Box::new(net),
        noise: NoiseHandle::new(),
        quant: QuantConfig::binary(),
        topology: "AblationCnn",
        variant: NormVariant::proposed(),
    })
}

fn train_ablation_cnn(
    task: &ImageTask,
    config: &InvNormConfig,
    scale: &ExperimentScale,
) -> Result<BuiltModel> {
    let mut model = build_ablation_cnn(task.split.classes, config)?;
    let mut optimizer = Adam::new(0.01);
    train::fit_classifier(
        &mut model,
        &mut optimizer,
        &task.split.train_inputs,
        &task.split.train_labels,
        &TrainConfig {
            epochs: scale.train_epochs,
            batch_size: 16,
            shuffle: true,
            seed: 5,
        },
    )?;
    Ok(model)
}

fn mc_accuracy(task: &ImageTask, model: &mut BuiltModel, passes: usize) -> Result<f32> {
    BayesianPredictor::new(passes)
        .predict_classification(model, &task.split.test_inputs)?
        .accuracy(&task.split.test_labels)
}

/// Initialization-spread ablation (Sec. IV-F): clean accuracy and accuracy
/// under 10 % bit flips for σ ∈ {0 (conventional), 0.1, 0.3, 0.5, 0.8}.
///
/// # Errors
///
/// Returns an error when a model fails to build, train or evaluate.
pub fn run_init(scale: &ExperimentScale) -> Result<Vec<Table>> {
    let task = ImageTask::prepare(scale);
    let mut table = Table::new(
        "Sec. IV-F — effect of affine-parameter initialization spread",
        &[
            "Init",
            "Clean accuracy",
            "Accuracy @ 10% bit flips (mean ± std)",
        ],
    );
    let settings: Vec<(String, AffineInit)> = vec![
        ("conventional (γ=1, β=0)".into(), AffineInit::Conventional),
        ("normal σ=0.1".into(), AffineInit::normal_with_sigma(0.1)),
        (
            "normal σ=0.3 (paper)".into(),
            AffineInit::normal_with_sigma(0.3),
        ),
        ("normal σ=0.5".into(), AffineInit::normal_with_sigma(0.5)),
        ("normal σ=0.8".into(), AffineInit::normal_with_sigma(0.8)),
    ];
    for (label, init) in settings {
        let config = InvNormConfig::default().with_init(init);
        let mut model = train_ablation_cnn(&task, &config, scale)?;
        let clean = mc_accuracy(&task, &mut model, scale.mc_passes)?;
        let summary = evaluate_under_fault(
            &mut model,
            FaultModel::BinaryBitFlip { rate: 0.10 },
            scale.mc_runs,
            11,
            |m| mc_accuracy(&task, m, scale.mc_passes),
        )?;
        table.push_row(vec![
            label,
            format!("{clean:.4}"),
            Table::mean_std_cell(summary.mean, summary.std),
        ]);
    }
    Ok(vec![table])
}

/// Dropout-rate and granularity ablation (Sec. III-B): clean accuracy and
/// accuracy under 10 % bit flips for p ∈ {0.1, 0.2, 0.3, 0.5} in both
/// element-wise and vector-wise granularity.
///
/// # Errors
///
/// Returns an error when a model fails to build, train or evaluate.
pub fn run_dropout(scale: &ExperimentScale) -> Result<Vec<Table>> {
    let task = ImageTask::prepare(scale);
    let mut table = Table::new(
        "Sec. III-B — affine-dropout rate and granularity",
        &[
            "Granularity",
            "p",
            "Clean accuracy",
            "Accuracy @ 10% bit flips (mean ± std)",
        ],
    );
    for granularity in [DropGranularity::VectorWise, DropGranularity::ElementWise] {
        for p in [0.1f32, 0.2, 0.3, 0.5] {
            let config = InvNormConfig {
                drop_probability: p,
                granularity,
                ..InvNormConfig::default()
            };
            let mut model = train_ablation_cnn(&task, &config, scale)?;
            let clean = mc_accuracy(&task, &mut model, scale.mc_passes)?;
            let summary = evaluate_under_fault(
                &mut model,
                FaultModel::BinaryBitFlip { rate: 0.10 },
                scale.mc_runs,
                13,
                |m| mc_accuracy(&task, m, scale.mc_passes),
            )?;
            table.push_row(vec![
                format!("{granularity:?}"),
                format!("{p:.1}"),
                format!("{clean:.4}"),
                Table::mean_std_cell(summary.mean, summary.std),
            ]);
        }
    }
    Ok(vec![table])
}

/// Monte-Carlo pass-count ablation: how the number of stochastic forward
/// passes `T` affects the Bayesian prediction quality, clean and under 10 %
/// bit flips. (A design choice DESIGN.md calls out: more passes stabilize
/// the averaged prediction at linearly higher inference cost.)
///
/// # Errors
///
/// Returns an error when a model fails to build, train or evaluate.
pub fn run_mc_passes(scale: &ExperimentScale) -> Result<Vec<Table>> {
    let task = ImageTask::prepare(scale);
    let config = InvNormConfig::default();
    let mut model = train_ablation_cnn(&task, &config, scale)?;
    let mut table = Table::new(
        "Ablation — number of Monte-Carlo forward passes T",
        &[
            "T",
            "Clean accuracy",
            "Accuracy @ 10% bit flips (mean ± std)",
        ],
    );
    for passes in [1usize, 2, 4, 8, 16] {
        let clean = mc_accuracy(&task, &mut model, passes)?;
        let summary = evaluate_under_fault(
            &mut model,
            FaultModel::BinaryBitFlip { rate: 0.10 },
            scale.mc_runs,
            17,
            |m| mc_accuracy(&task, m, passes),
        )?;
        table.push_row(vec![
            passes.to_string(),
            format!("{clean:.4}"),
            Table::mean_std_cell(summary.mean, summary.std),
        ]);
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mc_pass_ablation_covers_all_settings() {
        let tables = run_mc_passes(&ExperimentScale::quick()).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 5);
        assert!(tables[0].to_text().contains("16"));
    }

    #[test]
    fn quick_init_ablation_covers_all_settings() {
        let tables = run_init(&ExperimentScale::quick()).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 5);
        assert!(tables[0].to_text().contains("paper"));
    }

    #[test]
    fn quick_dropout_ablation_covers_both_granularities() {
        let tables = run_dropout(&ExperimentScale::quick()).unwrap();
        assert_eq!(tables[0].len(), 8);
        let text = tables[0].to_text();
        assert!(text.contains("VectorWise"));
        assert!(text.contains("ElementWise"));
    }
}
