//! One module per paper artifact (table / figure / ablation).
//!
//! Every experiment exposes a single `run(scale) -> Result<Vec<Table>>`
//! entry point used by both the corresponding binary (full scale, printed +
//! CSV) and the Criterion bench (quick scale, timing only).

pub mod ablation;
pub mod fig1;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod table1;

use crate::report::{default_results_dir, Table};

/// The standard set of method variants compared in every figure, in the
/// paper's column order.
pub fn compared_variants() -> Vec<invnorm_models::NormVariant> {
    use invnorm_models::NormVariant;
    vec![
        NormVariant::Conventional,
        NormVariant::SpinDrop { p: 0.3 },
        NormVariant::SpatialSpinDrop { p: 0.3 },
        NormVariant::proposed(),
    ]
}

/// Prints every table and writes it to `results/<stem>-<index>.csv`; used by
/// the experiment binaries.
pub fn print_and_save(tables: &[Table], stem: &str) {
    for (i, table) in tables.iter().enumerate() {
        println!("{}", table.to_text());
        let file_stem = if tables.len() == 1 {
            stem.to_string()
        } else {
            format!("{stem}-{i}")
        };
        match table.save_csv(default_results_dir(), &file_stem) {
            Ok(path) => println!("(written to {})\n", path.display()),
            Err(err) => eprintln!("warning: could not write CSV for {file_stem}: {err}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compared_variants_match_table1_columns() {
        let variants = compared_variants();
        assert_eq!(variants.len(), 4);
        assert_eq!(variants[0].label(), "NN");
        assert_eq!(variants[3].label(), "Proposed");
    }
}
