//! Fig. 6 — robustness of the audio classifier (M5/Speech-Commands stand-in)
//! and the LSTM forecaster (CO₂ stand-in) to bit-flip faults and conductance
//! variation (additive for both; multiplicative and uniform noise additionally
//! for the LSTM, as in the paper).
//!
//! Paper claim being reproduced: the proposed method keeps accuracy high /
//! RMSE low as the fault strength grows, while the conventional NN and the
//! Dropout baselines degrade sharply; on the LSTM the proposed method reduces
//! RMSE under both additive and multiplicative variation.

use crate::experiments::compared_variants;
use crate::experiments::fig5::{sigma_labels, sweep_table};
use crate::faults::{
    bitflip_for, evaluate_under_fault, multiplicative_sweep, uniform_noise_sweep, variation_sweep,
};
use crate::report::Table;
use crate::scale::ExperimentScale;
use crate::tasks::{AudioTask, Co2Task};
use crate::Result;
use invnorm_models::{BuiltModel, NormVariant};

/// Runs the Fig. 6 experiment: five tables (audio × {bit-flip, additive},
/// CO₂ × {bit-flip, additive, multiplicative + uniform}).
///
/// # Errors
///
/// Returns an error when any model fails to build, train or evaluate.
pub fn run(scale: &ExperimentScale) -> Result<Vec<Table>> {
    let variants = compared_variants();
    let mut tables = Vec::new();

    // ---------------------------------------------------------------- audio
    {
        let task = AudioTask::prepare(scale);
        let mut models: Vec<(NormVariant, BuiltModel)> = Vec::new();
        for &variant in &variants {
            models.push((variant, task.train(variant)?));
        }
        tables.push(sweep_table(
            "Fig. 6a — audio classification accuracy vs bit-flip rate",
            "Bit-flip rate",
            &crate::faults::bitflip_rates(0.3, scale.sweep_points)
                .iter()
                .map(|r| format!("{:.1}%", r * 100.0))
                .collect::<Vec<_>>(),
            &mut models,
            scale,
            |model, level_index, scale| {
                let rate = crate::faults::bitflip_rates(0.3, scale.sweep_points)[level_index];
                let fault = bitflip_for(model, rate);
                evaluate_under_fault(model, fault, scale.mc_runs, 450 + level_index as u64, |m| {
                    task.accuracy(m)
                })
            },
        )?);
        tables.push(sweep_table(
            "Fig. 6a — audio classification accuracy vs additive variation σ",
            "σ",
            &sigma_labels(1.0, scale.sweep_points),
            &mut models,
            scale,
            |model, level_index, scale| {
                let fault = variation_sweep(1.0, scale.sweep_points)[level_index];
                evaluate_under_fault(model, fault, scale.mc_runs, 550 + level_index as u64, |m| {
                    task.accuracy(m)
                })
            },
        )?);
    }

    // ------------------------------------------------------------------ CO₂
    {
        let task = Co2Task::prepare(scale);
        let mut models: Vec<(NormVariant, BuiltModel)> = Vec::new();
        for &variant in &variants {
            models.push((variant, task.train(variant)?));
        }
        tables.push(sweep_table(
            "Fig. 6b — CO₂ forecast RMSE vs bit-flip rate",
            "Bit-flip rate",
            &crate::faults::bitflip_rates(0.3, scale.sweep_points)
                .iter()
                .map(|r| format!("{:.1}%", r * 100.0))
                .collect::<Vec<_>>(),
            &mut models,
            scale,
            |model, level_index, scale| {
                let rate = crate::faults::bitflip_rates(0.3, scale.sweep_points)[level_index];
                let fault = bitflip_for(model, rate);
                evaluate_under_fault(model, fault, scale.mc_runs, 650 + level_index as u64, |m| {
                    task.rmse(m)
                })
            },
        )?);
        tables.push(sweep_table(
            "Fig. 6b — CO₂ forecast RMSE vs additive variation σ",
            "σ",
            &sigma_labels(0.6, scale.sweep_points),
            &mut models,
            scale,
            |model, level_index, scale| {
                let fault = variation_sweep(0.6, scale.sweep_points)[level_index];
                evaluate_under_fault(model, fault, scale.mc_runs, 750 + level_index as u64, |m| {
                    task.rmse(m)
                })
            },
        )?);
        tables.push(sweep_table(
            "Fig. 6b — CO₂ forecast RMSE vs multiplicative variation σ",
            "σ",
            &sigma_labels(0.6, scale.sweep_points),
            &mut models,
            scale,
            |model, level_index, scale| {
                let fault = multiplicative_sweep(0.6, scale.sweep_points)[level_index];
                evaluate_under_fault(model, fault, scale.mc_runs, 850 + level_index as u64, |m| {
                    task.rmse(m)
                })
            },
        )?);
        tables.push(sweep_table(
            "Fig. 6b (extra) — CO₂ forecast RMSE vs uniform weight noise",
            "Noise strength",
            &sigma_labels(0.6, scale.sweep_points),
            &mut models,
            scale,
            |model, level_index, scale| {
                let fault = uniform_noise_sweep(0.6, scale.sweep_points)[level_index];
                evaluate_under_fault(model, fault, scale.mc_runs, 950 + level_index as u64, |m| {
                    task.rmse(m)
                })
            },
        )?);
    }

    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig6_produces_six_tables() {
        let scale = ExperimentScale::quick();
        let tables = run(&scale).unwrap();
        assert_eq!(tables.len(), 6);
        for table in &tables {
            assert_eq!(table.len(), scale.sweep_points + 1);
        }
        assert!(tables[5].title().contains("uniform"));
    }
}
