//! CI bench regression gate (see `invnorm_bench::regression`).
//!
//! Usage:
//!
//! ```text
//! bench_gate --baseline <dir> --fresh <dir> [--threshold 0.25]
//! ```
//!
//! Compares every `BENCH_*.json` in the fresh directory against the
//! same-named committed baseline and exits non-zero when any benchmark name
//! present in both regressed by more than the threshold (default 25 % mean
//! time). Benchmarks present on only one side are ignored.

use invnorm_bench::regression::gate_dirs;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut baseline = PathBuf::from(".");
    let mut fresh = PathBuf::from("bench-fresh");
    let mut threshold = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = PathBuf::from(args.next().unwrap_or_default()),
            "--fresh" => fresh = PathBuf::from(args.next().unwrap_or_default()),
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(threshold)
            }
            other => {
                eprintln!("bench_gate: unknown argument `{other}`");
                eprintln!("usage: bench_gate --baseline <dir> --fresh <dir> [--threshold 0.25]");
                return ExitCode::from(2);
            }
        }
    }
    let outcome = match gate_dirs(&baseline, &fresh, threshold) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("bench_gate: failed to read reports: {err}");
            return ExitCode::from(2);
        }
    };
    println!(
        "bench_gate: compared {} benchmarks across {} report file(s) at a {:.0}% threshold",
        outcome.counts.compared,
        outcome.files,
        threshold * 100.0
    );
    if outcome.files == 0 || outcome.counts.compared == 0 {
        // A gate that checked nothing is a misconfiguration (wrong
        // directory, renamed reports), not a pass.
        eprintln!(
            "bench_gate: nothing to compare between {} and {} — refusing to pass",
            baseline.display(),
            fresh.display()
        );
        return ExitCode::from(2);
    }
    // Report every finding before deciding the exit code, so one run
    // surfaces both a degenerate mean and a genuine regression elsewhere.
    for d in &outcome.degenerate {
        // A zero/NaN mean cannot anchor a ratio; a committed baseline like
        // that silently disables the gate for the benchmark, so it is a
        // misconfiguration failure, not a pass.
        eprintln!(
            "bench_gate: DEGENERATE {}::{} — {} mean is {} ns (zero, negative or \
             non-finite); re-record the report",
            d.file, d.name, d.side, d.mean_ns
        );
    }
    for r in &outcome.regressions {
        println!(
            "REGRESSION {}::{} — baseline {:.1} ns, fresh {:.1} ns ({:.2}x)",
            r.file,
            r.name,
            r.baseline_ns,
            r.fresh_ns,
            r.ratio()
        );
    }
    if !outcome.degenerate.is_empty() {
        return ExitCode::from(2);
    }
    if outcome.regressions.is_empty() {
        // One-line coverage summary on success, so green CI logs still show
        // what the gate actually checked (and what it could not).
        println!(
            "bench_gate: OK — {} compared, {} skipped (baseline-only), {} new (fresh-only); \
             no regressions",
            outcome.counts.compared, outcome.counts.skipped, outcome.counts.new
        );
        return ExitCode::SUCCESS;
    }
    ExitCode::FAILURE
}
