//! Regenerates the paper's Sec. IV-F initialization ablation.
use invnorm_bench::experiments::{ablation, print_and_save};
use invnorm_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    match ablation::run_init(&scale) {
        Ok(tables) => print_and_save(&tables, "ablation_init"),
        Err(err) => {
            eprintln!("init ablation failed: {err}");
            std::process::exit(1);
        }
    }
}
