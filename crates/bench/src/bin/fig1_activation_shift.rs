//! Regenerates the paper's Fig. 1 (weighted-sum distribution under bit flips).
use invnorm_bench::experiments::{fig1, print_and_save};
use invnorm_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    match fig1::run(&scale) {
        Ok(tables) => print_and_save(&tables, "fig1_activation_shift"),
        Err(err) => {
            eprintln!("fig1 experiment failed: {err}");
            std::process::exit(1);
        }
    }
}
