//! Extra ablation: affine-dropout rate and granularity (paper Sec. III-B).
use invnorm_bench::experiments::{ablation, print_and_save};
use invnorm_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    match ablation::run_dropout(&scale) {
        Ok(tables) => print_and_save(&tables, "ablation_dropout"),
        Err(err) => {
            eprintln!("dropout ablation failed: {err}");
            std::process::exit(1);
        }
    }
}
