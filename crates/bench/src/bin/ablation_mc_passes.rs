//! Extra ablation: number of Monte-Carlo forward passes used for Bayesian
//! inference (clean accuracy and accuracy under 10 % bit flips).
use invnorm_bench::experiments::{ablation, print_and_save};
use invnorm_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    match ablation::run_mc_passes(&scale) {
        Ok(tables) => print_and_save(&tables, "ablation_mc_passes"),
        Err(err) => {
            eprintln!("MC-pass ablation failed: {err}");
            std::process::exit(1);
        }
    }
}
