//! Regenerates the paper's Fig. 5 (image classification and segmentation
//! robustness to bit flips and additive conductance variation).
use invnorm_bench::experiments::{fig5, print_and_save};
use invnorm_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    match fig5::run(&scale) {
        Ok(tables) => print_and_save(&tables, "fig5_robustness"),
        Err(err) => {
            eprintln!("fig5 experiment failed: {err}");
            std::process::exit(1);
        }
    }
}
