//! Regenerates the paper's Table I (baseline fault-free performance).
use invnorm_bench::experiments::{print_and_save, table1};
use invnorm_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    match table1::run(&scale) {
        Ok(tables) => print_and_save(&tables, "table1_baseline"),
        Err(err) => {
            eprintln!("table1 experiment failed: {err}");
            std::process::exit(1);
        }
    }
}
