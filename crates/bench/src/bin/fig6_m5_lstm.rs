//! Regenerates the paper's Fig. 6 (audio classification and CO₂ forecasting
//! robustness to bit flips, additive/multiplicative variation and uniform noise).
use invnorm_bench::experiments::{fig6, print_and_save};
use invnorm_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    match fig6::run(&scale) {
        Ok(tables) => print_and_save(&tables, "fig6_robustness"),
        Err(err) => {
            eprintln!("fig6 experiment failed: {err}");
            std::process::exit(1);
        }
    }
}
