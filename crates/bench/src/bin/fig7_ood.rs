//! Regenerates the paper's Fig. 7 (accuracy / NLL / OOD detection under
//! rotation and uniform-noise distribution shift).
use invnorm_bench::experiments::{fig7, print_and_save};
use invnorm_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    match fig7::run(&scale) {
        Ok(tables) => print_and_save(&tables, "fig7_ood"),
        Err(err) => {
            eprintln!("fig7 experiment failed: {err}");
            std::process::exit(1);
        }
    }
}
