//! Bench regression gate: compares freshly produced `BENCH_*.json` reports
//! against the committed baselines and flags mean-time regressions.
//!
//! The reports are written by the criterion shim (see the README's
//! "Benchmarks" section); the schema is a flat object with a `benchmarks`
//! array of `{"name": …, "mean_ns": …}` entries. Parsing is a minimal
//! hand-rolled scan of exactly that shape — the files are produced by this
//! workspace, not arbitrary JSON.
//!
//! The CI job runs every bench group into a scratch directory and then calls
//! the `bench_gate` binary, which fails the job when any benchmark name
//! present in **both** the baseline and the fresh report regressed by more
//! than the threshold (25 % by default). Benchmarks that exist on only one
//! side (added or retired) are ignored, so adding a bench never breaks the
//! gate.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One benchmark's mean time, keyed by its name within the group.
pub type BenchMeans = BTreeMap<String, f64>;

/// A mean-time regression of one benchmark beyond the gate threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Report file name (e.g. `BENCH_layer_throughput.json`).
    pub file: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Committed baseline mean, in nanoseconds per iteration.
    pub baseline_ns: f64,
    /// Freshly measured mean, in nanoseconds per iteration.
    pub fresh_ns: f64,
}

impl Regression {
    /// Slowdown factor of the fresh measurement over the baseline.
    pub fn ratio(&self) -> f64 {
        self.fresh_ns / self.baseline_ns
    }
}

/// A benchmark whose recorded mean cannot anchor a regression ratio: zero,
/// negative, NaN or infinite. A committed baseline like this would make the
/// ratio `fresh / baseline` meaningless (divide-by-zero, NaN comparisons are
/// always false), silently disabling the gate for that benchmark — so the
/// gate reports it as a hard failure instead.
#[derive(Debug, Clone, PartialEq)]
pub struct DegenerateMean {
    /// Report file name.
    pub file: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Which side carries the degenerate value (`"baseline"` or `"fresh"`).
    pub side: &'static str,
    /// The offending mean.
    pub mean_ns: f64,
}

/// Per-report comparison coverage: how many benchmark names landed on both
/// sides versus only one.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CompareCounts {
    /// Names present in both baseline and fresh (actually gated).
    pub compared: usize,
    /// Baseline-only names (retired benchmarks, skipped).
    pub skipped: usize,
    /// Fresh-only names (newly added benchmarks, nothing to gate against).
    pub new: usize,
}

impl CompareCounts {
    fn add(&mut self, other: CompareCounts) {
        self.compared += other.compared;
        self.skipped += other.skipped;
        self.new += other.new;
    }
}

/// Outcome of gating one pair of report directories.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Benchmark-name coverage summed over all compared report files.
    pub counts: CompareCounts,
    /// Report files compared.
    pub files: usize,
    /// Regressions beyond the threshold, worst first.
    pub regressions: Vec<Regression>,
    /// Benchmarks whose baseline or fresh mean is unusable (zero, negative
    /// or non-finite) — a misconfiguration, reported loudly instead of
    /// silently passing.
    pub degenerate: Vec<DegenerateMean>,
}

/// Extracts `(name, mean_ns)` pairs from a `BENCH_*.json` report produced by
/// the criterion shim. Unparseable input yields an empty map (the gate then
/// simply has nothing to compare). An entry whose `mean_ns` is missing or
/// unparsable is recorded as NaN — visibly degenerate — instead of being
/// dropped (dropping it would silently shrink the compared set, and an
/// earlier version even stopped scanning there, hiding every later entry).
pub fn parse_bench_means(json: &str) -> BenchMeans {
    let mut means = BenchMeans::new();
    // Each benchmark entry is emitted on one line as
    // `{"name": "...", "mean_ns": 123.4, ...}`; scan for the two fields.
    let mut rest = json;
    while let Some(pos) = rest.find("\"name\":") {
        rest = &rest[pos + "\"name\":".len()..];
        let Some(open) = rest.find('"') else { break };
        let after = &rest[open + 1..];
        let Some(close) = after.find('"') else { break };
        let name = &after[..close];
        rest = &after[close + 1..];
        // The mean must belong to THIS entry: stop at the next entry's
        // "name" key if one appears first.
        let next_name = rest.find("\"name\":").unwrap_or(rest.len());
        let Some(mpos) = rest[..next_name].find("\"mean_ns\":") else {
            means.insert(name.to_string(), f64::NAN);
            continue;
        };
        let after_mean = rest[mpos + "\"mean_ns\":".len()..].trim_start();
        let end = after_mean
            .find(|c: char| {
                c != '.'
                    && c != '-'
                    && c != '+'
                    && c != 'e'
                    && c != 'N'
                    && c != 'a'
                    && c != 'i'
                    && c != 'n'
                    && c != 'f'
                    && !c.is_ascii_digit()
            })
            .unwrap_or(after_mean.len());
        let mean = after_mean[..end].trim().parse::<f64>().unwrap_or(f64::NAN);
        means.insert(name.to_string(), mean);
        rest = &after_mean[end..];
    }
    means
}

/// Whether a recorded mean can anchor a regression ratio.
fn usable_mean(mean: f64) -> bool {
    mean.is_finite() && mean > 0.0
}

/// Compares one baseline report against its fresh counterpart, returning the
/// regressions beyond `threshold` (fractional slowdown, e.g. `0.25` = 25 %),
/// the degenerate entries (zero/NaN/non-finite means on either side, which
/// would otherwise yield a bogus ratio or silently disable the comparison),
/// and the comparison coverage (compared / baseline-only / fresh-only
/// counts).
pub fn compare_reports(
    file: &str,
    baseline: &BenchMeans,
    fresh: &BenchMeans,
    threshold: f64,
) -> (Vec<Regression>, Vec<DegenerateMean>, CompareCounts) {
    let mut regressions = Vec::new();
    let mut degenerate = Vec::new();
    let mut counts = CompareCounts::default();
    for (name, &base) in baseline {
        let Some(&new) = fresh.get(name) else {
            counts.skipped += 1;
            continue;
        };
        counts.compared += 1;
        let mut flag = |side: &'static str, mean_ns: f64| {
            degenerate.push(DegenerateMean {
                file: file.to_string(),
                name: name.clone(),
                side,
                mean_ns,
            });
        };
        if !usable_mean(base) {
            flag("baseline", base);
        }
        if !usable_mean(new) {
            flag("fresh", new);
        }
        if usable_mean(base) && usable_mean(new) && new > base * (1.0 + threshold) {
            regressions.push(Regression {
                file: file.to_string(),
                name: name.clone(),
                baseline_ns: base,
                fresh_ns: new,
            });
        }
    }
    counts.new = fresh.len() - counts.compared;
    (regressions, degenerate, counts)
}

/// Lists the `BENCH_*.json` report files directly inside `dir`.
pub fn list_reports(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut reports = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let is_report = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"));
        if is_report && path.is_file() {
            reports.push(path);
        }
    }
    reports.sort();
    Ok(reports)
}

/// Gates a fresh report directory against a baseline directory: every
/// benchmark name present in both sides of a same-named report pair must not
/// have regressed by more than `threshold`.
///
/// # Errors
///
/// Returns an error when a directory cannot be read.
pub fn gate_dirs(baseline: &Path, fresh: &Path, threshold: f64) -> std::io::Result<GateOutcome> {
    let mut outcome = GateOutcome::default();
    for base_path in list_reports(baseline)? {
        let file = base_path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let fresh_path = fresh.join(&file);
        if !fresh_path.is_file() {
            continue;
        }
        let base_means = parse_bench_means(&std::fs::read_to_string(&base_path)?);
        let fresh_means = parse_bench_means(&std::fs::read_to_string(&fresh_path)?);
        let (mut regressions, mut degenerate, counts) =
            compare_reports(&file, &base_means, &fresh_means, threshold);
        outcome.files += 1;
        outcome.counts.add(counts);
        outcome.regressions.append(&mut regressions);
        outcome.degenerate.append(&mut degenerate);
    }
    outcome
        .regressions
        .sort_by(|a, b| b.ratio().total_cmp(&a.ratio()));
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "group": "layer_throughput",
  "unit": "ns_per_iter",
  "benchmarks": [
    {"name": "gemm_64", "mean_ns": 1000.0, "std_ns": 1.0, "min_ns": 900.0, "median_ns": 990.0, "samples": 10, "iters_per_sample": 5},
    {"name": "conv_fwd", "mean_ns": 2500.5, "std_ns": 2.0, "min_ns": 2400.0, "median_ns": 2490.0, "samples": 10, "iters_per_sample": 3}
  ]
}"#;

    #[test]
    fn parses_names_and_means() {
        let means = parse_bench_means(SAMPLE);
        assert_eq!(means.len(), 2);
        assert_eq!(means["gemm_64"], 1000.0);
        assert_eq!(means["conv_fwd"], 2500.5);
        assert!(parse_bench_means("not json at all").is_empty());
        assert!(parse_bench_means("{\"benchmarks\": []}").is_empty());
    }

    #[test]
    fn flags_only_regressions_beyond_threshold() {
        let baseline = parse_bench_means(SAMPLE);
        let mut fresh = baseline.clone();
        // 20% slower: inside a 25% gate.
        fresh.insert("gemm_64".into(), 1200.0);
        let (regs, degen, counts) = compare_reports("f", &baseline, &fresh, 0.25);
        assert_eq!((regs.len(), degen.len(), counts.compared), (0, 0, 2));
        // 30% slower: flagged.
        fresh.insert("gemm_64".into(), 1300.0);
        let (regs, _, _) = compare_reports("f", &baseline, &fresh, 0.25);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "gemm_64");
        assert!((regs[0].ratio() - 1.3).abs() < 1e-9);
        // Speedups never flag.
        fresh.insert("gemm_64".into(), 10.0);
        let (regs, _, _) = compare_reports("f", &baseline, &fresh, 0.25);
        assert!(regs.is_empty());
    }

    #[test]
    fn names_on_only_one_side_are_ignored_but_counted() {
        let baseline = parse_bench_means(SAMPLE);
        let mut fresh = BenchMeans::new();
        fresh.insert("brand_new_bench".into(), 1.0);
        fresh.insert("gemm_64".into(), 1001.0);
        let (regs, degen, counts) = compare_reports("f", &baseline, &fresh, 0.25);
        assert_eq!((regs.len(), degen.len()), (0, 0));
        // gemm_64 on both sides; conv_fwd retired; brand_new_bench added.
        assert_eq!(
            counts,
            CompareCounts {
                compared: 1,
                skipped: 1,
                new: 1,
            }
        );
    }

    #[test]
    fn degenerate_means_are_flagged_not_silently_passed() {
        // A zero baseline mean previously disabled the comparison for that
        // benchmark (`base > 0.0` guard) and a NaN on either side made every
        // comparison false — both silently passing the gate. They are now
        // hard findings.
        let mut baseline = parse_bench_means(SAMPLE);
        let mut fresh = baseline.clone();
        baseline.insert("gemm_64".into(), 0.0);
        let (regs, degen, counts) = compare_reports("f", &baseline, &fresh, 0.25);
        assert_eq!((regs.len(), counts.compared), (0, 2));
        assert_eq!(degen.len(), 1);
        assert_eq!(
            (degen[0].name.as_str(), degen[0].side, degen[0].mean_ns),
            ("gemm_64", "baseline", 0.0)
        );
        // NaN fresh mean (e.g. a zero-sample run) is flagged on the fresh
        // side; a regression elsewhere is still detected.
        baseline.insert("gemm_64".into(), 1000.0);
        fresh.insert("gemm_64".into(), f64::NAN);
        fresh.insert("conv_fwd".into(), 5000.0);
        let (regs, degen, _) = compare_reports("f", &baseline, &fresh, 0.25);
        assert_eq!(degen.len(), 1);
        assert_eq!(degen[0].side, "fresh");
        assert!(degen[0].mean_ns.is_nan());
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "conv_fwd");
        // Negative and infinite means are equally unusable.
        baseline.insert("conv_fwd".into(), -3.0);
        fresh.insert("gemm_64".into(), f64::INFINITY);
        let (_, degen, _) = compare_reports("f", &baseline, &fresh, 0.25);
        assert_eq!(degen.len(), 2);
    }

    #[test]
    fn missing_mean_parses_as_nan_without_dropping_later_entries() {
        // An entry without a usable mean_ns must not hide the entries after
        // it (the old scanner stopped at the first malformed entry).
        let broken = r#"{"benchmarks": [
            {"name": "first", "samples": 0},
            {"name": "second", "mean_ns": 12.5}
        ]}"#;
        let means = parse_bench_means(broken);
        assert_eq!(means.len(), 2);
        assert!(means["first"].is_nan());
        assert_eq!(means["second"], 12.5);
        // And a NaN literal in the report parses as NaN, not as a dropped
        // entry.
        let nan = r#"{"benchmarks": [{"name": "zero_samples", "mean_ns": NaN}]}"#;
        let means = parse_bench_means(nan);
        assert!(means["zero_samples"].is_nan());
        // A degenerate committed baseline therefore fails the gate loudly.
        let fresh =
            parse_bench_means(r#"{"benchmarks": [{"name": "zero_samples", "mean_ns": 10.0}]}"#);
        let (_, degen, _) = compare_reports("f", &means, &fresh, 0.25);
        assert_eq!(degen.len(), 1);
        assert_eq!(degen[0].side, "baseline");
    }

    #[test]
    fn gate_dirs_end_to_end() {
        let root = std::env::temp_dir().join(format!("bench_gate_test_{}", std::process::id()));
        let base_dir = root.join("base");
        let fresh_dir = root.join("fresh");
        std::fs::create_dir_all(&base_dir).unwrap();
        std::fs::create_dir_all(&fresh_dir).unwrap();
        std::fs::write(base_dir.join("BENCH_a.json"), SAMPLE).unwrap();
        // Fresh report: conv_fwd regressed 2×, gemm_64 unchanged.
        let fresh = SAMPLE.replace("2500.5", "5001.0");
        std::fs::write(fresh_dir.join("BENCH_a.json"), fresh).unwrap();
        // A baseline-only report is skipped.
        std::fs::write(base_dir.join("BENCH_only_base.json"), SAMPLE).unwrap();
        // A non-report file is ignored.
        std::fs::write(base_dir.join("notes.txt"), "hi").unwrap();
        let outcome = gate_dirs(&base_dir, &fresh_dir, 0.25).unwrap();
        assert_eq!(outcome.files, 1);
        assert_eq!(
            outcome.counts,
            CompareCounts {
                compared: 2,
                skipped: 0,
                new: 0,
            }
        );
        assert_eq!(outcome.regressions.len(), 1);
        assert_eq!(outcome.regressions[0].name, "conv_fwd");
        std::fs::remove_dir_all(&root).ok();
    }
}
