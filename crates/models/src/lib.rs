//! # invnorm-models
//!
//! The four model topologies the paper evaluates (Table I), each buildable in
//! three normalization variants so the robustness comparisons can be
//! reproduced like-for-like:
//!
//! | Topology | Paper dataset | Stand-in dataset | W/A bits | Module |
//! |---|---|---|---|---|
//! | ResNet-18 → [`resnet::MicroResNet`] | CIFAR-10 | synthetic images | 1/1 | [`resnet`] |
//! | M5 → [`m5::M5Net`] | Speech Commands | synthetic audio | 8/8 | [`m5`] |
//! | U-Net → [`unet::MicroUNet`] | DRIVE | synthetic vessels | 1/4 | [`unet`] |
//! | 2×LSTM → [`lstm::LstmForecaster`] | Mauna Loa CO₂ | synthetic CO₂ | 8/8 | [`lstm`] |
//!
//! The [`variant::NormVariant`] enum selects between:
//!
//! * `Conventional` — batch normalization, deterministic inference (the
//!   "NN" column of Table I),
//! * `SpinDrop` — conventional normalization + MC-Dropout (the SpinDrop
//!   baseline),
//! * `SpatialSpinDrop` — conventional normalization + spatial MC-Dropout,
//! * `Inverted` — the paper's inverted normalization with stochastic affine
//!   transformations.
//!
//! Every builder returns a [`variant::BuiltModel`], which bundles the network
//! with the [`invnorm_imc::NoiseHandle`] controlling pre-activation fault
//! injection (used for the binarized models) and the quantization
//! configuration for post-training weight quantization.

// This crate must stay free of `unsafe`; all unsafe code in the
// workspace is confined to `crates/tensor` (lint rule R2).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lstm;
pub mod m5;
pub mod resnet;
pub mod unet;
pub mod variant;

pub use variant::{BuiltModel, NormVariant};

/// Convenience result alias re-using the NN error type.
pub type Result<T> = std::result::Result<T, invnorm_nn::NnError>;
