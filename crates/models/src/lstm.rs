//! `LstmForecaster`: the two-layer LSTM autoregressive forecaster the paper
//! uses for the atmospheric-CO₂ series (W/A = 8/8).

use crate::variant::{BuiltModel, NormVariant};
use crate::Result;
use invnorm_imc::injector::NoiseHandle;
use invnorm_nn::linear::Linear;
use invnorm_nn::lstm::Lstm;
use invnorm_nn::Sequential;
use invnorm_quant::QuantConfig;
use invnorm_tensor::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the LSTM forecaster.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LstmForecasterConfig {
    /// Number of input features per timestep (1 for the univariate CO₂
    /// series).
    pub input_features: usize,
    /// Hidden width of both LSTM layers.
    pub hidden: usize,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl Default for LstmForecasterConfig {
    fn default() -> Self {
        Self {
            input_features: 1,
            hidden: 24,
            seed: 400,
        }
    }
}

impl LstmForecasterConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            hidden: 8,
            ..Self::default()
        }
    }
}

/// Builds the forecaster in the requested normalization variant.
///
/// The network is `LSTM → LSTM → normalization → (dropout) → Linear(1)`,
/// consuming `[N, T, F]` windows and producing `[N, 1]` one-step-ahead
/// predictions.
///
/// # Errors
///
/// Returns an error when the variant configuration is invalid.
pub fn build(config: &LstmForecasterConfig, variant: NormVariant) -> Result<BuiltModel> {
    let mut rng = Rng::seed_from(config.seed);
    let mut net = Sequential::new();
    net.push(Box::new(Lstm::new(
        config.input_features,
        config.hidden,
        true,
        &mut rng,
    )));
    net.push(Box::new(Lstm::new(
        config.hidden,
        config.hidden,
        false,
        &mut rng,
    )));
    net.push(variant.norm_layer(config.hidden, 1, config.seed + 1, &mut rng)?);
    if let Some(dropout) = variant.dropout_layer(config.seed + 2)? {
        net.push(dropout);
    }
    net.push(Box::new(Linear::new(config.hidden, 1, &mut rng)));

    Ok(BuiltModel {
        network: Box::new(net),
        noise: NoiseHandle::new(),
        quant: QuantConfig::int8(),
        topology: "LstmForecaster",
        variant,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_nn::layer::{Layer, Mode};
    use invnorm_tensor::Tensor;

    #[test]
    fn all_variants_build_and_run() {
        for variant in [
            NormVariant::Conventional,
            NormVariant::SpinDrop { p: 0.3 },
            NormVariant::SpatialSpinDrop { p: 0.3 },
            NormVariant::proposed(),
        ] {
            let mut model = build(&LstmForecasterConfig::tiny(), variant).unwrap();
            let mut rng = Rng::seed_from(1);
            let x = Tensor::randn(&[4, 12, 1], 0.0, 1.0, &mut rng);
            let y = model.forward(&x, Mode::Train).unwrap();
            assert_eq!(y.dims(), &[4, 1]);
            let g = model.backward(&Tensor::ones(y.dims())).unwrap();
            assert_eq!(g.dims(), x.dims());
        }
    }

    #[test]
    fn metadata_matches_paper_row() {
        let model = build(&LstmForecasterConfig::default(), NormVariant::proposed()).unwrap();
        assert_eq!(model.topology, "LstmForecaster");
        assert_eq!(model.quant.describe(), "8/8");
        assert_eq!(model.variant.label(), "Proposed");
    }

    #[test]
    fn proposed_variant_is_stochastic_and_conventional_not() {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[3, 12, 1], 0.0, 1.0, &mut rng);
        let mut proposed = build(&LstmForecasterConfig::tiny(), NormVariant::proposed()).unwrap();
        let outputs: Vec<Tensor> = (0..8)
            .map(|_| proposed.forward(&x, Mode::Eval).unwrap())
            .collect();
        assert!(outputs.windows(2).any(|w| !w[0].approx_eq(&w[1], 1e-6)));

        let mut conventional =
            build(&LstmForecasterConfig::tiny(), NormVariant::Conventional).unwrap();
        let y1 = conventional.forward(&x, Mode::Eval).unwrap();
        let y2 = conventional.forward(&x, Mode::Eval).unwrap();
        assert!(y1.approx_eq(&y2, 0.0));
    }

    #[test]
    fn has_reasonable_parameter_count() {
        let mut model = build(&LstmForecasterConfig::default(), NormVariant::proposed()).unwrap();
        // Two LSTM layers dominate: 4H(F+H+1) + 4H(2H+1) plus head + norm.
        assert!(model.param_count() > 4 * 24 * (1 + 24 + 1));
    }
}
