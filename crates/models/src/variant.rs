//! Normalization/Bayesian variants shared by every topology, plus the
//! [`BuiltModel`] bundle the builders return.

use crate::Result;
use invnorm_core::inverted_norm::{InvNormConfig, InvertedNorm};
use invnorm_imc::injector::{ActivationNoise, NoiseHandle};
use invnorm_nn::activation::{Relu, SignSte};
use invnorm_nn::dropout::{Dropout, SpatialDropout};
use invnorm_nn::layer::{
    BatchedCodeView, BatchedParamView, BoxedLayer, CodeView, Layer, Mode, Param,
};
use invnorm_nn::norm::BatchNorm;
use invnorm_nn::plan::{PlanArenas, PlanCodeView, PlanCtx, PlanParamView, PlanShape};
use invnorm_quant::QuantConfig;
use invnorm_tensor::{Rng, Tensor};
use serde::{Deserialize, Serialize};

/// Which normalization / Bayesian-approximation scheme a model is built with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NormVariant {
    /// Conventional batch normalization, deterministic inference (the plain
    /// "NN" baseline of Table I).
    Conventional,
    /// Conventional normalization plus element-wise MC-Dropout with
    /// probability `p` (the SpinDrop baseline).
    SpinDrop {
        /// Dropout probability.
        p: f32,
    },
    /// Conventional normalization plus spatial (channel-wise) MC-Dropout
    /// with probability `p` (the SpatialSpinDrop baseline).
    SpatialSpinDrop {
        /// Dropout probability.
        p: f32,
    },
    /// The paper's inverted normalization with stochastic affine
    /// transformations (affine-dropout probability `p`).
    Inverted {
        /// Affine-dropout probability (0.3 in the paper).
        p: f32,
    },
}

impl NormVariant {
    /// The paper's proposed configuration (affine dropout with p = 0.3).
    pub fn proposed() -> Self {
        NormVariant::Inverted { p: 0.3 }
    }

    /// Short label used in result tables.
    pub fn label(&self) -> &'static str {
        match self {
            NormVariant::Conventional => "NN",
            NormVariant::SpinDrop { .. } => "SpinDrop",
            NormVariant::SpatialSpinDrop { .. } => "SpatialSpinDrop",
            NormVariant::Inverted { .. } => "Proposed",
        }
    }

    /// Whether inference is stochastic (requires Monte-Carlo averaging).
    pub fn is_bayesian(&self) -> bool {
        !matches!(self, NormVariant::Conventional)
    }

    /// Builds the normalization layer this variant uses after a convolution
    /// with `channels` output feature maps, normalizing over `groups` channel
    /// groups in the inverted case.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid (e.g. `groups` does
    /// not divide `channels`).
    pub fn norm_layer(
        &self,
        channels: usize,
        groups: usize,
        seed: u64,
        rng: &mut Rng,
    ) -> Result<BoxedLayer> {
        match self {
            NormVariant::Conventional
            | NormVariant::SpinDrop { .. }
            | NormVariant::SpatialSpinDrop { .. } => Ok(Box::new(BatchNorm::new(channels))),
            NormVariant::Inverted { p } => {
                let config = InvNormConfig {
                    drop_probability: *p,
                    groups,
                    seed,
                    ..InvNormConfig::default()
                };
                Ok(Box::new(InvertedNorm::new(channels, &config, rng)?))
            }
        }
    }

    /// Builds the explicit dropout layer this variant inserts after an
    /// activation (only the SpinDrop-style baselines use one; masks stay
    /// active at evaluation time for Monte-Carlo inference).
    ///
    /// # Errors
    ///
    /// Returns an error when the dropout probability is invalid.
    pub fn dropout_layer(&self, seed: u64) -> Result<Option<BoxedLayer>> {
        match self {
            NormVariant::SpinDrop { p } => Ok(Some(Box::new(Dropout::new(*p, true, seed)?))),
            NormVariant::SpatialSpinDrop { p } => {
                Ok(Some(Box::new(SpatialDropout::new(*p, true, seed)?)))
            }
            NormVariant::Conventional | NormVariant::Inverted { .. } => Ok(None),
        }
    }
}

/// Activation style of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Full-precision ReLU.
    Relu,
    /// Binary sign activation with straight-through gradient (used by the
    /// 1-bit models); a fault-injection point is inserted immediately before
    /// it, matching the paper's protocol of injecting variation into the
    /// normalized pre-activation values of binary networks.
    BinarySign,
}

impl ActivationKind {
    /// Appends this activation (and, for binary models, its fault-injection
    /// hook) to a layer list.
    pub fn push_onto(&self, layers: &mut Vec<BoxedLayer>, noise: &NoiseHandle, seed: u64) {
        match self {
            ActivationKind::Relu => layers.push(Box::new(Relu::new())),
            ActivationKind::BinarySign => {
                layers.push(Box::new(ActivationNoise::new(noise.clone(), seed)));
                layers.push(Box::new(SignSte::new()));
            }
        }
    }
}

/// A constructed model: the network, the handle controlling pre-activation
/// fault injection, the quantization configuration, and bookkeeping labels.
pub struct BuiltModel {
    /// The trainable network.
    pub network: Box<dyn Layer + Send>,
    /// Shared handle for pre-activation fault injection (active only for
    /// models with binary activations; harmless otherwise).
    pub noise: NoiseHandle,
    /// Weight/activation precision of the deployed model.
    pub quant: QuantConfig,
    /// Topology name (e.g. "MicroResNet").
    pub topology: &'static str,
    /// The normalization variant the model was built with.
    pub variant: NormVariant,
}

impl std::fmt::Debug for BuiltModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltModel")
            .field("topology", &self.topology)
            .field("variant", &self.variant.label())
            .field("quant", &self.quant.describe())
            .finish()
    }
}

impl Layer for BuiltModel {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        self.network.forward(input, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        self.network.backward(grad_output)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.network.visit_params(visitor);
    }

    fn visit_codes(&mut self, visitor: &mut dyn FnMut(CodeView<'_>)) {
        self.network.visit_codes(visitor);
    }

    fn begin_batched(&mut self, batch: usize) -> Result<()> {
        self.network.begin_batched(batch)
    }

    fn end_batched(&mut self) {
        self.network.end_batched();
    }

    fn visit_batched(&mut self, visitor: &mut dyn FnMut(BatchedParamView<'_>)) {
        self.network.visit_batched(visitor);
    }

    fn visit_batched_codes(&mut self, visitor: &mut dyn FnMut(BatchedCodeView<'_>)) {
        self.network.visit_batched_codes(visitor);
    }

    fn forward_batched(
        &mut self,
        input: &Tensor,
        shared: bool,
        batch: usize,
        mode: Mode,
    ) -> Result<(Tensor, bool)> {
        self.network.forward_batched(input, shared, batch, mode)
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        self.network.plan_compile(input, arenas)
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        self.network.plan_forward(input, output, ctx, arenas)
    }

    fn plan_end(&mut self) {
        self.network.plan_end();
    }

    fn visit_plan_params(&mut self, visitor: &mut dyn FnMut(PlanParamView<'_>)) {
        self.network.visit_plan_params(visitor);
    }

    fn visit_plan_codes(&mut self, visitor: &mut dyn FnMut(PlanCodeView<'_>)) {
        self.network.visit_plan_codes(visitor);
    }

    fn name(&self) -> &'static str {
        self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_bayesian_flags() {
        assert_eq!(NormVariant::Conventional.label(), "NN");
        assert_eq!(NormVariant::SpinDrop { p: 0.3 }.label(), "SpinDrop");
        assert_eq!(
            NormVariant::SpatialSpinDrop { p: 0.3 }.label(),
            "SpatialSpinDrop"
        );
        assert_eq!(NormVariant::proposed().label(), "Proposed");
        assert!(!NormVariant::Conventional.is_bayesian());
        assert!(NormVariant::proposed().is_bayesian());
    }

    #[test]
    fn norm_layer_construction() {
        let mut rng = Rng::seed_from(1);
        let conventional = NormVariant::Conventional
            .norm_layer(8, 1, 0, &mut rng)
            .unwrap();
        assert_eq!(conventional.name(), "BatchNorm");
        let inverted = NormVariant::proposed()
            .norm_layer(8, 4, 0, &mut rng)
            .unwrap();
        assert_eq!(inverted.name(), "InvertedNorm");
        assert!(NormVariant::proposed()
            .norm_layer(8, 3, 0, &mut rng)
            .is_err());
    }

    #[test]
    fn dropout_layer_construction() {
        assert!(NormVariant::Conventional
            .dropout_layer(0)
            .unwrap()
            .is_none());
        assert!(NormVariant::proposed().dropout_layer(0).unwrap().is_none());
        assert_eq!(
            NormVariant::SpinDrop { p: 0.3 }
                .dropout_layer(0)
                .unwrap()
                .unwrap()
                .name(),
            "Dropout"
        );
        assert_eq!(
            NormVariant::SpatialSpinDrop { p: 0.3 }
                .dropout_layer(0)
                .unwrap()
                .unwrap()
                .name(),
            "SpatialDropout"
        );
        assert!(NormVariant::SpinDrop { p: 1.5 }.dropout_layer(0).is_err());
    }

    #[test]
    fn activation_kind_pushes_expected_layers() {
        let noise = NoiseHandle::new();
        let mut layers = Vec::new();
        ActivationKind::Relu.push_onto(&mut layers, &noise, 0);
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0].name(), "Relu");
        let mut layers = Vec::new();
        ActivationKind::BinarySign.push_onto(&mut layers, &noise, 0);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].name(), "ActivationNoise");
        assert_eq!(layers[1].name(), "SignSte");
    }
}
