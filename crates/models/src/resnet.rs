//! `MicroResNet`: a scaled-down binarized residual CNN standing in for the
//! paper's ResNet-18 on CIFAR-10 (W/A = 1/1).
//!
//! The topology keeps the structural ingredients that matter for the
//! experiment — convolution + normalization after every conv, binary sign
//! activations with a pre-activation fault-injection point, residual skip
//! connections with projection shortcuts, global average pooling and a linear
//! classifier — at a size that trains on the synthetic image dataset in
//! seconds.

use crate::variant::{ActivationKind, BuiltModel, NormVariant};
use crate::Result;
use invnorm_imc::injector::NoiseHandle;
use invnorm_nn::conv::Conv2d;
use invnorm_nn::linear::Linear;
use invnorm_nn::pool::GlobalAvgPool2d;
use invnorm_nn::reshape::Flatten;
use invnorm_nn::{Residual, Sequential};
use invnorm_quant::QuantConfig;
use invnorm_tensor::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the residual image classifier.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MicroResNetConfig {
    /// Number of input channels (3 for the synthetic RGB images).
    pub in_channels: usize,
    /// Number of output classes.
    pub classes: usize,
    /// Channel width of the first stage (doubled in the second stage).
    pub base_channels: usize,
    /// Whether activations are binarized (`sign` + straight-through), the
    /// paper's 1-bit configuration. `false` gives a full-precision ReLU
    /// network (useful for unit tests and ablations).
    pub binary_activations: bool,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl Default for MicroResNetConfig {
    fn default() -> Self {
        Self {
            in_channels: 3,
            classes: 10,
            base_channels: 16,
            binary_activations: true,
            seed: 100,
        }
    }
}

impl MicroResNetConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny(classes: usize) -> Self {
        Self {
            classes,
            base_channels: 8,
            ..Self::default()
        }
    }
}

/// Builds the model in the requested normalization variant.
///
/// # Errors
///
/// Returns an error when the variant configuration is invalid.
pub fn build(config: &MicroResNetConfig, variant: NormVariant) -> Result<BuiltModel> {
    let mut rng = Rng::seed_from(config.seed);
    let noise = NoiseHandle::new();
    let activation = if config.binary_activations {
        ActivationKind::BinarySign
    } else {
        ActivationKind::Relu
    };
    let c1 = config.base_channels;
    let c2 = config.base_channels * 2;
    let mut seed_counter = config.seed;
    let mut next_seed = || {
        seed_counter = seed_counter.wrapping_add(1);
        seed_counter
    };

    let mut net = Sequential::new();

    // Stem: conv + norm + activation.
    net.push(Box::new(Conv2d::with_bias(
        config.in_channels,
        c1,
        3,
        1,
        1,
        false,
        &mut rng,
    )));
    net.push(variant.norm_layer(c1, 1, next_seed(), &mut rng)?);
    {
        let mut act = Vec::new();
        activation.push_onto(&mut act, &noise, next_seed());
        for layer in act {
            net.push(layer);
        }
        if let Some(dropout) = variant.dropout_layer(next_seed())? {
            net.push(dropout);
        }
    }

    // Stage 1: identity residual block at width c1.
    net.push(Box::new(residual_block(
        c1,
        c1,
        1,
        variant,
        activation,
        &noise,
        &mut rng,
        &mut next_seed,
    )?));

    // Stage 2: strided residual block widening to c2 (projection shortcut).
    net.push(Box::new(residual_block(
        c1,
        c2,
        2,
        variant,
        activation,
        &noise,
        &mut rng,
        &mut next_seed,
    )?));

    // Head.
    if let Some(dropout) = variant.dropout_layer(next_seed())? {
        net.push(dropout);
    }
    net.push(Box::new(GlobalAvgPool2d::new()));
    net.push(Box::new(Flatten::new()));
    net.push(Box::new(Linear::new(c2, config.classes, &mut rng)));

    Ok(BuiltModel {
        network: Box::new(net),
        noise,
        quant: if config.binary_activations {
            QuantConfig::binary()
        } else {
            QuantConfig::float()
        },
        topology: "MicroResNet",
        variant,
    })
}

/// One residual block: two 3×3 convolutions with normalization, plus a
/// projection shortcut when the shape changes.
#[allow(clippy::too_many_arguments)]
fn residual_block(
    in_channels: usize,
    out_channels: usize,
    stride: usize,
    variant: NormVariant,
    activation: ActivationKind,
    noise: &NoiseHandle,
    rng: &mut Rng,
    next_seed: &mut impl FnMut() -> u64,
) -> Result<Residual> {
    let mut main = Sequential::new();
    main.push(Box::new(Conv2d::with_bias(
        in_channels,
        out_channels,
        3,
        stride,
        1,
        false,
        rng,
    )));
    main.push(variant.norm_layer(out_channels, 1, next_seed(), rng)?);
    {
        let mut act = Vec::new();
        activation.push_onto(&mut act, noise, next_seed());
        for layer in act {
            main.push(layer);
        }
    }
    main.push(Box::new(Conv2d::with_bias(
        out_channels,
        out_channels,
        3,
        1,
        1,
        false,
        rng,
    )));
    main.push(variant.norm_layer(out_channels, 1, next_seed(), rng)?);

    let block = if in_channels != out_channels || stride != 1 {
        let mut shortcut = Sequential::new();
        shortcut.push(Box::new(Conv2d::with_bias(
            in_channels,
            out_channels,
            1,
            stride,
            0,
            false,
            rng,
        )));
        shortcut.push(variant.norm_layer(out_channels, 1, next_seed(), rng)?);
        Residual::with_shortcut(main, shortcut)
    } else {
        Residual::new(main)
    };

    // Post-addition activation.
    let mut post = Vec::new();
    activation.push_onto(&mut post, noise, next_seed());
    let mut post_seq = Sequential::new();
    for layer in post {
        post_seq.push(layer);
    }
    if let Some(dropout) = variant.dropout_layer(next_seed())? {
        post_seq.push(dropout);
    }
    Ok(block.with_post(Box::new(post_seq)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_nn::layer::{Layer, Mode};
    use invnorm_tensor::Tensor;

    fn forward_shape(variant: NormVariant, binary: bool) {
        let mut config = MicroResNetConfig::tiny(4);
        config.binary_activations = binary;
        let mut model = build(&config, variant).unwrap();
        let mut rng = Rng::seed_from(9);
        let x = Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let y = model.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 4]);
        let g = model.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert!(!y.has_non_finite());
    }

    #[test]
    fn all_variants_build_and_run() {
        for variant in [
            NormVariant::Conventional,
            NormVariant::SpinDrop { p: 0.3 },
            NormVariant::SpatialSpinDrop { p: 0.3 },
            NormVariant::proposed(),
        ] {
            forward_shape(variant, true);
            forward_shape(variant, false);
        }
    }

    #[test]
    fn built_model_metadata() {
        let model = build(&MicroResNetConfig::default(), NormVariant::proposed()).unwrap();
        assert_eq!(model.topology, "MicroResNet");
        assert_eq!(model.quant.describe(), "1/1");
        assert_eq!(model.variant.label(), "Proposed");
        assert!(format!("{model:?}").contains("MicroResNet"));

        let fp = MicroResNetConfig {
            binary_activations: false,
            ..MicroResNetConfig::default()
        };
        let model = build(&fp, NormVariant::Conventional).unwrap();
        assert_eq!(model.quant.describe(), "32/32");
    }

    #[test]
    fn has_trainable_parameters() {
        let mut model = build(&MicroResNetConfig::tiny(4), NormVariant::proposed()).unwrap();
        assert!(model.param_count() > 1000);
    }

    #[test]
    fn proposed_variant_is_stochastic_at_eval() {
        let mut model = build(&MicroResNetConfig::tiny(4), NormVariant::proposed()).unwrap();
        let mut rng = Rng::seed_from(10);
        let x = Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let outputs: Vec<Tensor> = (0..6)
            .map(|_| model.forward(&x, Mode::Eval).unwrap())
            .collect();
        assert!(outputs.windows(2).any(|w| !w[0].approx_eq(&w[1], 1e-6)));
    }

    #[test]
    fn conventional_variant_is_deterministic_at_eval() {
        let mut model = build(&MicroResNetConfig::tiny(4), NormVariant::Conventional).unwrap();
        let mut rng = Rng::seed_from(11);
        let x = Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let y1 = model.forward(&x, Mode::Eval).unwrap();
        let y2 = model.forward(&x, Mode::Eval).unwrap();
        assert!(y1.approx_eq(&y2, 0.0));
    }

    #[test]
    fn noise_handle_perturbs_binary_preactivations() {
        let mut model = build(&MicroResNetConfig::tiny(4), NormVariant::Conventional).unwrap();
        let mut rng = Rng::seed_from(12);
        let x = Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let clean = model.forward(&x, Mode::Eval).unwrap();
        model
            .noise
            .set(invnorm_imc::FaultModel::AdditiveVariation { sigma: 2.0 });
        let noisy = model.forward(&x, Mode::Eval).unwrap();
        model.noise.clear();
        let restored = model.forward(&x, Mode::Eval).unwrap();
        assert!(!clean.approx_eq(&noisy, 1e-6));
        assert!(clean.approx_eq(&restored, 0.0));
    }
}
