//! `MicroUNet`: a compact encoder–decoder segmentation network standing in
//! for the paper's U-Net on DRIVE (W/A = 1/4).
//!
//! Structure (per-sample, for a `[1, H, W]` input):
//!
//! ```text
//! enc1: Conv(1→C) + norm + act          ── skip ──┐
//!   pool ↓2                                        │
//! enc2: Conv(C→2C) + norm + act                    │
//!   up ↑2, reduce: Conv(2C→C) + norm + act         │
//!   add  ◄─────────────────────────────────────────┘
//! fuse: Conv(C→C) + norm + act, Conv(C→1)  → per-pixel logits
//! ```
//!
//! The skip connection is additive (rather than concatenating channels),
//! which preserves the encoder–decoder + skip structure the robustness
//! experiment needs while keeping the hand-written backward pass simple.
//! Activations are 4-bit PACT-style quantized in the paper's configuration;
//! the inverted/conventional normalization layers normalize over
//! channel groups of `C/8` channels (i.e. 8 groups, clamped to the channel
//! count for very narrow models), matching Sec. IV-A1.

use crate::variant::{BuiltModel, NormVariant};
use crate::Result;
use invnorm_imc::injector::{ActivationNoise, NoiseHandle};
use invnorm_nn::activation::Relu;
use invnorm_nn::conv::Conv2d;
use invnorm_nn::layer::{Layer, Mode, Param};
use invnorm_nn::plan::{PlanArenas, PlanCodeView, PlanCtx, PlanParamView, PlanShape};
use invnorm_nn::pool::MaxPool2d;
use invnorm_nn::upsample::Upsample2d;
use invnorm_nn::NnError;
use invnorm_nn::Sequential;
use invnorm_quant::fake_quant::FakeQuantAct;
use invnorm_quant::QuantConfig;
use invnorm_tensor::{Rng, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of the segmentation network.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MicroUNetConfig {
    /// Encoder channel width (decoder mirrors it).
    pub base_channels: usize,
    /// Whether activations are quantized to 4 bits (the paper's setting).
    pub quantized_activations: bool,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl Default for MicroUNetConfig {
    fn default() -> Self {
        Self {
            base_channels: 8,
            quantized_activations: true,
            seed: 300,
        }
    }
}

impl MicroUNetConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            base_channels: 4,
            ..Self::default()
        }
    }
}

/// The U-Net-style segmentation model (implements [`Layer`]; input
/// `[N, 1, H, W]` with even `H`, `W`; output per-pixel logits of the same
/// spatial shape).
pub struct MicroUNet {
    enc1: Sequential,
    pool: MaxPool2d,
    enc2: Sequential,
    up: Upsample2d,
    reduce: Sequential,
    fuse: Sequential,
    plan: Option<UNetPlan>,
}

/// Compiled-plan state: the output edge of every stage plus the additive
/// skip-fusion edge.
struct UNetPlan {
    e1: PlanShape,
    pooled: PlanShape,
    e2: PlanShape,
    upsampled: PlanShape,
    decoded: PlanShape,
    fused: PlanShape,
    out: PlanShape,
}

impl std::fmt::Debug for MicroUNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MicroUNet").finish_non_exhaustive()
    }
}

#[allow(clippy::too_many_arguments)]
fn conv_block(
    in_ch: usize,
    out_ch: usize,
    groups: usize,
    variant: NormVariant,
    quantized: bool,
    noise: &NoiseHandle,
    rng: &mut Rng,
    seed: u64,
) -> Result<Sequential> {
    let mut block = Sequential::new();
    block.push(Box::new(Conv2d::with_bias(
        in_ch, out_ch, 3, 1, 1, false, rng,
    )));
    block.push(variant.norm_layer(out_ch, groups.min(out_ch), seed, rng)?);
    // Fault-injection point: the paper injects conductance variation into the
    // normalized pre-activation values for binary-weight networks.
    block.push(Box::new(ActivationNoise::new(noise.clone(), seed ^ 0xA5)));
    block.push(Box::new(Relu::new()));
    if quantized {
        block.push(Box::new(FakeQuantAct::new(4, 4.0, false)?));
    }
    if let Some(dropout) = variant.dropout_layer(seed ^ 0xD0)? {
        block.push(dropout);
    }
    Ok(block)
}

/// Builds the model in the requested normalization variant.
///
/// # Errors
///
/// Returns an error when the variant configuration is invalid.
pub fn build(config: &MicroUNetConfig, variant: NormVariant) -> Result<BuiltModel> {
    let mut rng = Rng::seed_from(config.seed);
    let c = config.base_channels;
    // The paper normalizes over groups of C/8 channels, i.e. 8 groups.
    let groups = 8usize;
    let q = config.quantized_activations;
    let noise = NoiseHandle::new();

    let enc1 = conv_block(1, c, groups, variant, q, &noise, &mut rng, config.seed + 1)?;
    let enc2 = conv_block(
        c,
        2 * c,
        groups,
        variant,
        q,
        &noise,
        &mut rng,
        config.seed + 2,
    )?;
    let reduce = conv_block(
        2 * c,
        c,
        groups,
        variant,
        q,
        &noise,
        &mut rng,
        config.seed + 3,
    )?;
    let mut fuse = conv_block(c, c, groups, variant, q, &noise, &mut rng, config.seed + 4)?;
    // Final 1×1 convolution producing one logit per pixel (full precision).
    fuse.push(Box::new(Conv2d::new(c, 1, 1, 1, 0, &mut rng)));

    let unet = MicroUNet {
        enc1,
        pool: MaxPool2d::new(2),
        enc2,
        up: Upsample2d::new(2),
        reduce,
        fuse,
        plan: None,
    };

    Ok(BuiltModel {
        network: Box::new(unet),
        noise,
        quant: if q {
            QuantConfig::binary_weights_4bit_acts()
        } else {
            QuantConfig::float()
        },
        topology: "MicroUNet",
        variant,
    })
}

impl Layer for MicroUNet {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let d = input.dims();
        if d.len() != 4 || d[1] != 1 {
            return Err(NnError::Config(format!(
                "MicroUNet expects [N, 1, H, W], got {d:?}"
            )));
        }
        if !d[2].is_multiple_of(2) || !d[3].is_multiple_of(2) {
            return Err(NnError::Config(
                "MicroUNet needs even spatial dimensions".into(),
            ));
        }
        let e1 = self.enc1.forward(input, mode)?;
        let pooled = self.pool.forward(&e1, mode)?;
        let e2 = self.enc2.forward(&pooled, mode)?;
        let upsampled = self.up.forward(&e2, mode)?;
        let decoded = self.reduce.forward(&upsampled, mode)?;
        let fused = decoded.add(&e1)?;
        self.fuse.forward(&fused, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let grad_fused = self.fuse.backward(grad_output)?;
        // The addition fans the gradient out to both the decoder path and the
        // skip connection.
        let grad_decoded = self.reduce.backward(&grad_fused)?;
        let grad_e2 = self.up.backward(&grad_decoded)?;
        let grad_pooled = self.enc2.backward(&grad_e2)?;
        let grad_e1_from_pool = self.pool.backward(&grad_pooled)?;
        let grad_e1 = grad_fused.add(&grad_e1_from_pool)?;
        self.enc1.backward(&grad_e1)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.enc1.visit_params(visitor);
        self.enc2.visit_params(visitor);
        self.reduce.visit_params(visitor);
        self.fuse.visit_params(visitor);
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        let d = &input.dims;
        if d.len() != 4 || d[1] != 1 {
            return Err(NnError::Config(format!(
                "MicroUNet expects [N, 1, H, W], got {d:?}"
            )));
        }
        if !d[2].is_multiple_of(2) || !d[3].is_multiple_of(2) {
            return Err(NnError::Config(
                "MicroUNet needs even spatial dimensions".into(),
            ));
        }
        let e1 = self.enc1.plan_compile(input, arenas)?;
        let pooled = self.pool.plan_compile(&e1, arenas)?;
        let e2 = self.enc2.plan_compile(&pooled, arenas)?;
        let upsampled = self.up.plan_compile(&e2, arenas)?;
        let decoded = self.reduce.plan_compile(&upsampled, arenas)?;
        if decoded.dims != e1.dims {
            return Err(NnError::Config(format!(
                "decoder output {:?} does not match skip {:?}",
                decoded.dims, e1.dims
            )));
        }
        let fused = arenas.reserve_like(&decoded);
        let out = self.fuse.plan_compile(&fused, arenas)?;
        let shape = out.clone();
        self.plan = Some(UNetPlan {
            e1,
            pooled,
            e2,
            upsampled,
            decoded,
            fused,
            out,
        });
        Ok(shape)
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        _output: &PlanShape,
        ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let state = self.plan.take().ok_or_else(|| {
            NnError::Config("MicroUNet::plan_forward called without plan_compile".into())
        })?;
        let mut run = || -> Result<()> {
            self.enc1
                .plan_forward(input, &state.e1, ctx.child(true), arenas)?;
            self.pool
                .plan_forward(&state.e1, &state.pooled, ctx.child(false), arenas)?;
            self.enc2
                .plan_forward(&state.pooled, &state.e2, ctx.child(false), arenas)?;
            self.up
                .plan_forward(&state.e2, &state.upsampled, ctx.child(false), arenas)?;
            self.reduce
                .plan_forward(&state.upsampled, &state.decoded, ctx.child(false), arenas)?;
            // Additive skip fusion in `Tensor::add` order.
            let [a, b, s] =
                arenas
                    .f
                    .many_mut([state.decoded.slot, state.e1.slot, state.fused.slot]);
            for ((d, &x), &y) in s.iter_mut().zip(a.iter()).zip(b.iter()) {
                *d = x + y;
            }
            self.fuse
                .plan_forward(&state.fused, &state.out, ctx.child(false), arenas)
        };
        let result = run();
        self.plan = Some(state);
        result
    }

    fn plan_end(&mut self) {
        self.plan = None;
        self.enc1.plan_end();
        self.pool.plan_end();
        self.enc2.plan_end();
        self.up.plan_end();
        self.reduce.plan_end();
        self.fuse.plan_end();
    }

    fn visit_plan_params(&mut self, visitor: &mut dyn FnMut(PlanParamView<'_>)) {
        // Stage order and index re-basing mirror `visit_params` (the pool
        // and upsample stages hold no parameters).
        let mut base = 0usize;
        let stage =
            |layer: &mut Sequential, base: &mut usize, v: &mut dyn FnMut(PlanParamView<'_>)| {
                layer.visit_plan_params(&mut |mut view| {
                    view.index += *base;
                    v(view);
                });
                let mut params = 0usize;
                layer.visit_params(&mut |_| params += 1);
                *base += params;
            };
        stage(&mut self.enc1, &mut base, visitor);
        stage(&mut self.enc2, &mut base, visitor);
        stage(&mut self.reduce, &mut base, visitor);
        stage(&mut self.fuse, &mut base, visitor);
    }

    fn visit_plan_codes(&mut self, visitor: &mut dyn FnMut(PlanCodeView<'_>)) {
        let mut base = 0usize;
        let stage =
            |layer: &mut Sequential, base: &mut usize, v: &mut dyn FnMut(PlanCodeView<'_>)| {
                layer.visit_plan_codes(&mut |mut view| {
                    view.index += *base;
                    v(view);
                });
                let mut codes = 0usize;
                layer.visit_codes(&mut |_| codes += 1);
                *base += codes;
            };
        stage(&mut self.enc1, &mut base, visitor);
        stage(&mut self.enc2, &mut base, visitor);
        stage(&mut self.reduce, &mut base, visitor);
        stage(&mut self.fuse, &mut base, visitor);
    }

    fn name(&self) -> &'static str {
        "MicroUNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_build_and_run() {
        for variant in [
            NormVariant::Conventional,
            NormVariant::SpinDrop { p: 0.3 },
            NormVariant::SpatialSpinDrop { p: 0.3 },
            NormVariant::proposed(),
        ] {
            let mut model = build(&MicroUNetConfig::tiny(), variant).unwrap();
            let mut rng = Rng::seed_from(5);
            let x = Tensor::randn(&[2, 1, 16, 16], 0.0, 1.0, &mut rng);
            let y = model.forward(&x, Mode::Train).unwrap();
            assert_eq!(y.dims(), &[2, 1, 16, 16]);
            let g = model.backward(&Tensor::ones(y.dims())).unwrap();
            assert_eq!(g.dims(), x.dims());
            assert!(!y.has_non_finite());
        }
    }

    #[test]
    fn metadata_matches_paper_row() {
        let model = build(&MicroUNetConfig::default(), NormVariant::proposed()).unwrap();
        assert_eq!(model.topology, "MicroUNet");
        assert_eq!(model.quant.describe(), "1/4");
        let fp = MicroUNetConfig {
            quantized_activations: false,
            ..MicroUNetConfig::default()
        };
        let model = build(&fp, NormVariant::Conventional).unwrap();
        assert_eq!(model.quant.describe(), "32/32");
    }

    #[test]
    fn rejects_bad_input_shapes() {
        let mut model = build(&MicroUNetConfig::tiny(), NormVariant::Conventional).unwrap();
        assert!(model
            .forward(&Tensor::zeros(&[1, 3, 16, 16]), Mode::Eval)
            .is_err());
        assert!(model
            .forward(&Tensor::zeros(&[1, 1, 15, 16]), Mode::Eval)
            .is_err());
    }

    #[test]
    fn skip_connection_carries_gradient() {
        // Gradient at the input must include contributions through both the
        // pooled path and the skip path; a crude check is that training-mode
        // gradients are non-zero for a non-trivial loss.
        let mut model = build(&MicroUNetConfig::tiny(), NormVariant::Conventional).unwrap();
        let mut rng = Rng::seed_from(6);
        let x = Tensor::randn(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
        let y = model.forward(&x, Mode::Train).unwrap();
        let g = model.backward(&Tensor::ones(y.dims())).unwrap();
        assert!(g.abs().sum() > 0.0);
        let mut total_param_grad = 0.0;
        model.visit_params(&mut |p| total_param_grad += p.grad.abs().sum());
        assert!(total_param_grad > 0.0);
    }

    #[test]
    fn quantized_activations_lie_on_grid() {
        // With 4-bit unsigned activations the internal feature maps snap to a
        // 7-level grid in [0, 4]; at least verify the model still runs and the
        // outputs differ from the unquantized model.
        let mut quantized = build(&MicroUNetConfig::tiny(), NormVariant::Conventional).unwrap();
        let mut full = build(
            &MicroUNetConfig {
                quantized_activations: false,
                ..MicroUNetConfig::tiny()
            },
            NormVariant::Conventional,
        )
        .unwrap();
        let mut rng = Rng::seed_from(7);
        let x = Tensor::randn(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
        let yq = quantized.forward(&x, Mode::Eval).unwrap();
        let yf = full.forward(&x, Mode::Eval).unwrap();
        assert!(!yq.approx_eq(&yf, 1e-6));
    }
}
