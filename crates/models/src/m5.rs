//! `M5Net`: the 1-D convolutional audio classifier (the paper's M5 topology
//! for Google Speech Commands, W/A = 8/8), scaled to the synthetic keyword
//! dataset.

use crate::variant::{ActivationKind, BuiltModel, NormVariant};
use crate::Result;
use invnorm_imc::injector::NoiseHandle;
use invnorm_nn::conv::Conv1d;
use invnorm_nn::linear::Linear;
use invnorm_nn::pool::{GlobalAvgPool1d, MaxPool1d};
use invnorm_nn::reshape::Flatten;
use invnorm_nn::Sequential;
use invnorm_quant::QuantConfig;
use invnorm_tensor::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the 1-D CNN audio classifier.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct M5NetConfig {
    /// Number of keyword classes.
    pub classes: usize,
    /// Channel width of the first convolution.
    pub base_channels: usize,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl Default for M5NetConfig {
    fn default() -> Self {
        Self {
            classes: 8,
            base_channels: 16,
            seed: 200,
        }
    }
}

impl M5NetConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny(classes: usize) -> Self {
        Self {
            classes,
            base_channels: 8,
            ..Self::default()
        }
    }
}

/// Builds the model in the requested normalization variant.
///
/// The input is a `[N, 1, L]` waveform with `L` divisible by 8 (the first
/// convolution strides by 4 and each of the two pooling stages halves the
/// length).
///
/// # Errors
///
/// Returns an error when the variant configuration is invalid.
pub fn build(config: &M5NetConfig, variant: NormVariant) -> Result<BuiltModel> {
    let mut rng = Rng::seed_from(config.seed);
    let noise = NoiseHandle::new();
    let activation = ActivationKind::Relu;
    let c1 = config.base_channels;
    let c2 = config.base_channels * 2;
    let mut seed_counter = config.seed;
    let mut next_seed = || {
        seed_counter = seed_counter.wrapping_add(1);
        seed_counter
    };

    let mut net = Sequential::new();

    // Block 1: wide strided convolution (the M5 "audio frontend").
    net.push(Box::new(Conv1d::with_bias(1, c1, 8, 4, 2, false, &mut rng)));
    net.push(variant.norm_layer(c1, 1, next_seed(), &mut rng)?);
    push_activation(&mut net, activation, &noise, next_seed());
    if let Some(dropout) = variant.dropout_layer(next_seed())? {
        net.push(dropout);
    }
    net.push(Box::new(MaxPool1d::new(2)));

    // Block 2.
    net.push(Box::new(Conv1d::with_bias(
        c1, c2, 3, 1, 1, false, &mut rng,
    )));
    net.push(variant.norm_layer(c2, 1, next_seed(), &mut rng)?);
    push_activation(&mut net, activation, &noise, next_seed());
    if let Some(dropout) = variant.dropout_layer(next_seed())? {
        net.push(dropout);
    }
    net.push(Box::new(MaxPool1d::new(2)));

    // Block 3.
    net.push(Box::new(Conv1d::with_bias(
        c2, c2, 3, 1, 1, false, &mut rng,
    )));
    net.push(variant.norm_layer(c2, 1, next_seed(), &mut rng)?);
    push_activation(&mut net, activation, &noise, next_seed());

    // Head.
    if let Some(dropout) = variant.dropout_layer(next_seed())? {
        net.push(dropout);
    }
    net.push(Box::new(GlobalAvgPool1d::new()));
    net.push(Box::new(Flatten::new()));
    net.push(Box::new(Linear::new(c2, config.classes, &mut rng)));

    Ok(BuiltModel {
        network: Box::new(net),
        noise,
        quant: QuantConfig::int8(),
        topology: "M5Net",
        variant,
    })
}

fn push_activation(
    net: &mut Sequential,
    activation: ActivationKind,
    noise: &NoiseHandle,
    seed: u64,
) {
    let mut layers = Vec::new();
    activation.push_onto(&mut layers, noise, seed);
    for layer in layers {
        net.push(layer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_nn::layer::{Layer, Mode};
    use invnorm_tensor::Tensor;

    #[test]
    fn all_variants_build_and_run() {
        for variant in [
            NormVariant::Conventional,
            NormVariant::SpinDrop { p: 0.3 },
            NormVariant::SpatialSpinDrop { p: 0.3 },
            NormVariant::proposed(),
        ] {
            let mut model = build(&M5NetConfig::tiny(4), variant).unwrap();
            let mut rng = Rng::seed_from(3);
            let x = Tensor::randn(&[2, 1, 128], 0.0, 1.0, &mut rng);
            let y = model.forward(&x, Mode::Train).unwrap();
            assert_eq!(y.dims(), &[2, 4]);
            let g = model.backward(&Tensor::ones(y.dims())).unwrap();
            assert_eq!(g.dims(), x.dims());
        }
    }

    #[test]
    fn metadata_matches_paper_row() {
        let model = build(&M5NetConfig::default(), NormVariant::proposed()).unwrap();
        assert_eq!(model.topology, "M5Net");
        assert_eq!(model.quant.describe(), "8/8");
    }

    #[test]
    fn handles_longer_waveforms() {
        let mut model = build(&M5NetConfig::tiny(4), NormVariant::Conventional).unwrap();
        let mut rng = Rng::seed_from(4);
        let x = Tensor::randn(&[1, 1, 256], 0.0, 1.0, &mut rng);
        let y = model.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 4]);
    }

    #[test]
    fn proposed_variant_is_stochastic() {
        let mut model = build(&M5NetConfig::tiny(4), NormVariant::proposed()).unwrap();
        let mut rng = Rng::seed_from(5);
        let x = Tensor::randn(&[2, 1, 128], 0.0, 1.0, &mut rng);
        let outputs: Vec<Tensor> = (0..6)
            .map(|_| model.forward(&x, Mode::Eval).unwrap())
            .collect();
        assert!(outputs.windows(2).any(|w| !w[0].approx_eq(&w[1], 1e-6)));
    }
}
