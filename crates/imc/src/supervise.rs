//! Sweep supervision: run budgets, cooperative cancellation, panic and
//! non-finite quarantine, and bit-identical checkpoint/resume for the
//! Monte-Carlo engines.
//!
//! The paper's robustness numbers come from long Monte-Carlo fault sweeps,
//! and a sweep that is only useful when it runs to completion cannot back a
//! service: a caller hangs up, a deadline expires at run 900 of 1000, a
//! worker panics on a pathological realization. This module gives every
//! engine in the ladder the machinery to survive all three:
//!
//! * [`RunBudget`] — a wall-clock deadline and/or a cooperative
//!   [`CancelToken`], checked by the workers **between** chip instances (a
//!   single relaxed atomic load plus an `Instant` compare, nothing per
//!   element). An interrupted sweep returns
//!   [`SweepOutcome::Interrupted`] carrying the partial summary and a
//!   resumable checkpoint instead of discarding completed work.
//! * [`QuarantinedRun`] — a panicking or non-finite run is excluded from the
//!   aggregate with a typed diagnostic (run index, engine, fault model,
//!   cause) and an explicit count, rather than silently poisoning the mean
//!   or aborting the remaining workers.
//! * [`SweepCheckpoint`] — engine kind, fault domain, master seed, run
//!   count, fault label, the per-run metrics recorded so far and the
//!   quarantine ledger. Because chip instance `i` derives its RNG stream
//!   from `(seed, i)` alone, resuming replays **only** the missing instances
//!   and the final summary is bit-identical to an uninterrupted sweep — for
//!   every engine, fault model and thread count.

use crate::montecarlo::{EngineKind, MonteCarloSummary};
use crate::Result;
use invnorm_nn::checkpoint::{frame, verify_frame};
use invnorm_nn::{CheckpointFault, NnError};
use invnorm_tensor::telemetry::{self, RunScope};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation handle shared between a sweep and its caller.
///
/// Cloning shares the underlying flag; calling [`CancelToken::cancel`] from
/// any clone (typically another thread) makes every worker stop claiming new
/// chip instances at its next between-instance check. The flag is a single
/// relaxed atomic: checking it costs one uncontended load, and cancellation
/// is sticky — once set it stays set.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; sticky and idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Bounds on a sweep: an optional wall-clock deadline and an optional
/// [`CancelToken`]. The default budget is unbounded and adds no measurable
/// overhead (two `Option` checks per chip instance).
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    deadline: Option<Instant>,
    token: Option<CancelToken>,
}

impl RunBudget {
    /// An unbounded budget: never interrupts.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Bounds the sweep to finish within `limit` from now.
    #[must_use]
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(Instant::now() + limit);
        self
    }

    /// Bounds the sweep to finish before the absolute instant `at`.
    #[must_use]
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Attaches a cancellation token (shared with the caller).
    #[must_use]
    pub fn with_token(mut self, token: &CancelToken) -> Self {
        self.token = Some(token.clone());
        self
    }

    /// Whether this budget can interrupt at all.
    pub fn is_bounded(&self) -> bool {
        self.deadline.is_some() || self.token.is_some()
    }

    /// Returns the cause if the sweep should stop claiming new instances.
    /// Cancellation wins over an expired deadline when both hold, and both
    /// conditions are sticky, so every worker (and the final aggregation)
    /// observes the same cause.
    pub fn interrupted(&self) -> Option<InterruptCause> {
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                return Some(InterruptCause::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(InterruptCause::DeadlineExpired);
            }
        }
        None
    }
}

/// Why a sweep stopped before simulating every chip instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterruptCause {
    /// The caller's [`CancelToken`] was cancelled.
    Cancelled,
    /// The [`RunBudget`] deadline expired.
    DeadlineExpired,
}

impl fmt::Display for InterruptCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterruptCause::Cancelled => f.write_str("cancelled"),
            InterruptCause::DeadlineExpired => f.write_str("deadline expired"),
        }
    }
}

/// Which weight representation a sweep perturbs — mirrors the engine split
/// between [`crate::injector::WeightFaultInjector`] (f32 parameters) and
/// [`crate::injector::CodeFaultInjector`] (i8 quantization codes). Recorded
/// in checkpoints so a code-domain sweep cannot resume onto the f32 path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepDomain {
    /// Faults land on the f32 weights.
    Weights,
    /// Faults land on the i8 quantization codes.
    Codes,
}

impl fmt::Display for SweepDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepDomain::Weights => f.write_str("f32 weights"),
            SweepDomain::Codes => f.write_str("i8 codes"),
        }
    }
}

/// Why a chip instance was excluded from the aggregate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum QuarantineCause {
    /// The run body panicked; the worker pool survived, the worker rebuilt
    /// its model from the factory, and the remaining instances finished.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The metric came back NaN or ±Inf — detected at record time, before it
    /// could poison the mean.
    NonFinite {
        /// The offending value.
        value: f32,
    },
}

impl PartialEq for QuarantineCause {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (QuarantineCause::Panic { message: a }, QuarantineCause::Panic { message: b }) => {
                a == b
            }
            // Bit compare so NaN causes are equal to themselves (checkpoint
            // round-trips must be able to assert equality).
            (QuarantineCause::NonFinite { value: a }, QuarantineCause::NonFinite { value: b }) => {
                a.to_bits() == b.to_bits()
            }
            _ => false,
        }
    }
}

impl fmt::Display for QuarantineCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineCause::Panic { message } => write!(f, "panicked: {message}"),
            QuarantineCause::NonFinite { value } => {
                write!(f, "non-finite metric ({value})")
            }
        }
    }
}

/// One quarantined chip instance: which run, on which engine, under which
/// fault model, and why.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedRun {
    /// The chip-instance index.
    pub run: usize,
    /// The engine that executed (or tried to execute) the run.
    pub engine: EngineKind,
    /// Label of the fault model being simulated.
    pub fault_label: String,
    /// Why the run was excluded.
    pub cause: QuarantineCause,
}

impl fmt::Display for QuarantinedRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run {} quarantined on {} [{}]: {}",
            self.run, self.engine, self.fault_label, self.cause
        )
    }
}

/// Resumable state of an interrupted sweep.
///
/// Identity fields (engine, domain, seed, run count, fault label) pin the
/// checkpoint to one exact sweep configuration; resuming against anything
/// else is rejected with a typed [`CheckpointFault::Mismatch`]. The payload
/// carries every metric recorded so far plus the quarantine ledger, so a
/// resumed sweep replays only the missing instances and — because instance
/// `i`'s RNG stream depends on `(seed, i)` alone — finishes with a summary
/// bit-identical to an uninterrupted sweep.
///
/// Serialized with [`SweepCheckpoint::to_bytes`] behind the same
/// magic/version/checksum frame as model checkpoints, so truncation,
/// corruption and version skew are all rejected before any field is trusted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCheckpoint {
    /// The engine the sweep ran on (resume must use the same engine).
    pub engine: EngineKind,
    /// Whether faults land on f32 weights or i8 codes.
    pub domain: SweepDomain,
    /// The engine's master seed.
    pub seed: u64,
    /// Total chip instances of the sweep.
    pub runs: usize,
    /// Label of the fault model being simulated.
    pub fault_label: String,
    /// `(run, metric)` for every finished instance, sorted by run index.
    pub completed: Vec<(usize, f32)>,
    /// Instances excluded from the aggregate (they are *not* replayed on
    /// resume: quarantine is deterministic per `(seed, run)`).
    pub quarantined: Vec<QuarantinedRun>,
}

impl SweepCheckpoint {
    /// Format magic for serialized sweep checkpoints.
    pub const MAGIC: [u8; 4] = *b"INSW";
    /// Current sweep-checkpoint format version.
    pub const VERSION: u32 = 1;

    /// Instances already accounted for (finished or quarantined).
    pub fn accounted_runs(&self) -> usize {
        self.completed.len() + self.quarantined.len()
    }

    /// Instances a resume still has to simulate.
    pub fn remaining_runs(&self) -> usize {
        self.runs.saturating_sub(self.accounted_runs())
    }

    /// Serializes to the framed byte format (magic, version, checksum, then
    /// the payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.seed.to_le_bytes());
        push_u32(&mut out, self.runs as u32);
        out.push(engine_tag(self.engine));
        out.push(match self.domain {
            SweepDomain::Weights => 0,
            SweepDomain::Codes => 1,
        });
        push_str(&mut out, &self.fault_label);
        push_u32(&mut out, self.completed.len() as u32);
        for &(run, metric) in &self.completed {
            push_u32(&mut out, run as u32);
            push_u32(&mut out, metric.to_bits());
        }
        push_u32(&mut out, self.quarantined.len() as u32);
        for q in &self.quarantined {
            push_u32(&mut out, q.run as u32);
            match &q.cause {
                QuarantineCause::Panic { message } => {
                    out.push(0);
                    push_str(&mut out, message);
                }
                QuarantineCause::NonFinite { value } => {
                    out.push(1);
                    push_u32(&mut out, value.to_bits());
                }
            }
        }
        frame(out, Self::MAGIC, Self::VERSION)
    }

    /// Parses a serialized checkpoint, verifying the frame (magic, version,
    /// content checksum) before trusting any field.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Checkpoint`] with a typed [`CheckpointFault`] on
    /// truncation, corruption, version skew or an inconsistent payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let payload = verify_frame(bytes, Self::MAGIC, Self::VERSION)?;
        let mut r = Reader::new(payload);
        let seed = r.u64()?;
        let runs = r.u32()? as usize;
        let engine = engine_from_tag(r.u8()?)?;
        let domain = match r.u8()? {
            0 => SweepDomain::Weights,
            1 => SweepDomain::Codes,
            other => {
                return Err(mismatch("fault domain tag", "0 or 1", other));
            }
        };
        let fault_label = r.str()?;
        let n_completed = r.u32()? as usize;
        let mut completed = Vec::with_capacity(n_completed.min(runs));
        for _ in 0..n_completed {
            let run = r.u32()? as usize;
            let metric = f32::from_bits(r.u32()?);
            completed.push((run, metric));
        }
        let n_quarantined = r.u32()? as usize;
        let mut quarantined = Vec::with_capacity(n_quarantined.min(runs));
        for _ in 0..n_quarantined {
            let run = r.u32()? as usize;
            let cause = match r.u8()? {
                0 => QuarantineCause::Panic { message: r.str()? },
                1 => QuarantineCause::NonFinite {
                    value: f32::from_bits(r.u32()?),
                },
                other => {
                    return Err(mismatch("quarantine cause tag", "0 or 1", other));
                }
            };
            quarantined.push(QuarantinedRun {
                run,
                engine,
                fault_label: fault_label.clone(),
                cause,
            });
        }
        r.expect_end()?;
        Ok(Self {
            engine,
            domain,
            seed,
            runs,
            fault_label,
            completed,
            quarantined,
        })
    }
}

/// Everything a supervised engine call can be given beyond the sweep itself:
/// an interrupt budget and an optional checkpoint to resume from. The
/// default control is unbounded and starts from scratch, making the
/// supervised entry points drop-in supersets of the legacy ones.
#[derive(Debug, Clone, Default)]
pub struct SweepControl {
    /// Deadline / cancellation bounds.
    pub budget: RunBudget,
    /// Resume state from a previously interrupted sweep.
    pub resume: Option<SweepCheckpoint>,
}

impl SweepControl {
    /// Unbounded, from-scratch control.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the interrupt budget.
    #[must_use]
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Resumes from `checkpoint` instead of starting from scratch.
    #[must_use]
    pub fn with_resume(mut self, checkpoint: SweepCheckpoint) -> Self {
        self.resume = Some(checkpoint);
        self
    }
}

/// Result of a supervised sweep.
#[derive(Debug, Clone)]
pub enum SweepOutcome {
    /// Every chip instance was simulated (or quarantined).
    Complete {
        /// Aggregate over the non-quarantined runs.
        summary: MonteCarloSummary,
        /// Runs excluded from the aggregate, sorted by run index.
        quarantined: Vec<QuarantinedRun>,
    },
    /// The budget interrupted the sweep; completed work is preserved.
    Interrupted {
        /// Aggregate over the runs that did finish (in run order; gaps from
        /// unfinished instances are simply absent).
        partial: MonteCarloSummary,
        /// Runs excluded from the aggregate, sorted by run index.
        quarantined: Vec<QuarantinedRun>,
        /// What interrupted the sweep.
        cause: InterruptCause,
        /// Resume state: feed to [`SweepControl::with_resume`] to finish the
        /// sweep bit-identically later.
        checkpoint: SweepCheckpoint,
    },
}

impl SweepOutcome {
    /// The (complete or partial) summary.
    pub fn summary(&self) -> &MonteCarloSummary {
        match self {
            SweepOutcome::Complete { summary, .. } => summary,
            SweepOutcome::Interrupted { partial, .. } => partial,
        }
    }

    /// Runs excluded from the aggregate.
    pub fn quarantined(&self) -> &[QuarantinedRun] {
        match self {
            SweepOutcome::Complete { quarantined, .. }
            | SweepOutcome::Interrupted { quarantined, .. } => quarantined,
        }
    }

    /// Whether every instance was simulated (or quarantined).
    pub fn is_complete(&self) -> bool {
        matches!(self, SweepOutcome::Complete { .. })
    }

    /// The resume checkpoint, when interrupted.
    pub fn checkpoint(&self) -> Option<&SweepCheckpoint> {
        match self {
            SweepOutcome::Complete { .. } => None,
            SweepOutcome::Interrupted { checkpoint, .. } => Some(checkpoint),
        }
    }
}

/// Per-run bookkeeping shared by every supervised engine body. Records land
/// on the main thread only (workers hand their results back exactly like the
/// legacy engines), so the ledger itself needs no synchronization.
#[derive(Debug, Clone)]
enum Slot {
    Pending,
    Done(f32),
    Quarantined(QuarantineCause),
}

#[derive(Debug)]
pub(crate) struct RunLedger {
    engine: EngineKind,
    domain: SweepDomain,
    seed: u64,
    fault_label: String,
    slots: Vec<Slot>,
}

impl RunLedger {
    /// Builds a ledger for `runs` instances, pre-filling it from `resume`
    /// after validating that the checkpoint matches this exact sweep.
    pub(crate) fn new(
        engine: EngineKind,
        domain: SweepDomain,
        seed: u64,
        runs: usize,
        fault_label: String,
        resume: Option<&SweepCheckpoint>,
    ) -> Result<Self> {
        let mut slots = vec![Slot::Pending; runs];
        if let Some(cp) = resume {
            check_match("engine", cp.engine.name(), engine.name())?;
            check_match("fault domain", &cp.domain.to_string(), &domain.to_string())?;
            check_match("seed", &cp.seed.to_string(), &seed.to_string())?;
            check_match("runs", &cp.runs.to_string(), &runs.to_string())?;
            check_match("fault label", &cp.fault_label, &fault_label)?;
            for &(run, metric) in &cp.completed {
                let slot = slots
                    .get_mut(run)
                    .ok_or_else(|| mismatch("run index", format!("< {runs}"), run))?;
                *slot = Slot::Done(metric);
            }
            for q in &cp.quarantined {
                let slot = slots
                    .get_mut(q.run)
                    .ok_or_else(|| mismatch("run index", format!("< {runs}"), q.run))?;
                *slot = Slot::Quarantined(q.cause.clone());
            }
            telemetry::count(telemetry::Counter::ResumeSkips, cp.accounted_runs() as u64);
        }
        Ok(Self {
            engine,
            domain,
            seed,
            fault_label,
            slots,
        })
    }

    /// Snapshot of which runs need no simulation (taken before workers
    /// spawn; recording happens after they join, so it cannot go stale).
    pub(crate) fn done_mask(&self) -> Vec<bool> {
        self.slots
            .iter()
            .map(|s| !matches!(s, Slot::Pending))
            .collect()
    }

    /// Whether `run` is already accounted for.
    pub(crate) fn is_done(&self, run: usize) -> bool {
        !matches!(self.slots[run], Slot::Pending)
    }

    /// Records a finished run; a non-finite metric is quarantined instead of
    /// recorded. Re-records of an already-accounted run (a resumed batch
    /// re-runs its whole stack) are ignored — per-run values are
    /// deterministic, so the replay produced the identical value anyway.
    pub(crate) fn record(&mut self, run: usize, metric: f32) {
        if !matches!(self.slots[run], Slot::Pending) {
            return;
        }
        if metric.is_finite() {
            self.slots[run] = Slot::Done(metric);
        } else {
            telemetry::count(telemetry::Counter::QuarantinedRuns, 1);
            self.slots[run] = Slot::Quarantined(QuarantineCause::NonFinite { value: metric });
        }
    }

    /// Quarantines a run whose body panicked.
    pub(crate) fn record_panic(&mut self, run: usize, message: String) {
        if !matches!(self.slots[run], Slot::Pending) {
            return;
        }
        telemetry::count(telemetry::Counter::QuarantinedRuns, 1);
        self.slots[run] = Slot::Quarantined(QuarantineCause::Panic { message });
    }

    /// Closes the sweep: aggregates the finished runs, finalizes telemetry,
    /// and — when instances are still pending — packages a resume checkpoint
    /// under the budget's interrupt cause.
    pub(crate) fn finish(self, scope: RunScope, budget: &RunBudget) -> SweepOutcome {
        let runs = self.slots.len();
        let mut per_run = Vec::with_capacity(runs);
        let mut completed = Vec::with_capacity(runs);
        let mut quarantined = Vec::new();
        let mut missing = 0usize;
        for (run, slot) in self.slots.iter().enumerate() {
            match slot {
                Slot::Done(metric) => {
                    per_run.push(*metric);
                    completed.push((run, *metric));
                }
                Slot::Quarantined(cause) => quarantined.push(QuarantinedRun {
                    run,
                    engine: self.engine,
                    fault_label: self.fault_label.clone(),
                    cause: cause.clone(),
                }),
                Slot::Pending => missing += 1,
            }
        }
        let mut summary = MonteCarloSummary::from_runs(self.fault_label.clone(), per_run);
        summary.telemetry = scope.finish(&summary.per_run);
        if missing == 0 {
            return SweepOutcome::Complete {
                summary,
                quarantined,
            };
        }
        telemetry::count(telemetry::Counter::CancelledRuns, missing as u64);
        // Both interrupt conditions are sticky, so the cause the workers
        // observed is still observable here; the fallback only guards a
        // worker that stopped for a reason that has since cleared (which
        // cannot happen with the current token/deadline semantics).
        let cause = budget.interrupted().unwrap_or(InterruptCause::Cancelled);
        let checkpoint = SweepCheckpoint {
            engine: self.engine,
            domain: self.domain,
            seed: self.seed,
            runs,
            fault_label: self.fault_label,
            completed,
            quarantined: quarantined.clone(),
        };
        SweepOutcome::Interrupted {
            partial: summary,
            quarantined,
            cause,
            checkpoint,
        }
    }
}

/// Renders a panic payload for quarantine diagnostics.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn engine_tag(engine: EngineKind) -> u8 {
    match engine {
        EngineKind::PlannedBatched => 0,
        EngineKind::Planned => 1,
        EngineKind::Batched => 2,
        EngineKind::Parallel => 3,
        EngineKind::Sequential => 4,
    }
}

fn engine_from_tag(tag: u8) -> Result<EngineKind> {
    Ok(match tag {
        0 => EngineKind::PlannedBatched,
        1 => EngineKind::Planned,
        2 => EngineKind::Batched,
        3 => EngineKind::Parallel,
        4 => EngineKind::Sequential,
        other => return Err(mismatch("engine tag", "0..=4", other)),
    })
}

fn mismatch(field: &'static str, expected: impl fmt::Display, got: impl fmt::Display) -> NnError {
    NnError::Checkpoint(CheckpointFault::Mismatch {
        field,
        expected: expected.to_string(),
        got: got.to_string(),
    })
}

fn check_match(field: &'static str, from_checkpoint: &str, from_sweep: &str) -> Result<()> {
    if from_checkpoint == from_sweep {
        Ok(())
    } else {
        Err(mismatch(field, from_sweep, from_checkpoint))
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Cursor over a verified payload with typed truncation errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let available = self.bytes.len() - self.pos;
        if available < n {
            return Err(NnError::Checkpoint(CheckpointFault::Truncated {
                needed: n,
                available,
            }));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| mismatch("string encoding", "utf-8", "invalid bytes"))
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(mismatch("payload length", self.pos, self.bytes.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> SweepCheckpoint {
        SweepCheckpoint {
            engine: EngineKind::Planned,
            domain: SweepDomain::Codes,
            seed: 0xDEAD_BEEF,
            runs: 12,
            fault_label: "additive σ=0.3".into(),
            completed: vec![(0, 1.25), (2, -0.5), (7, 3.0)],
            quarantined: vec![
                QuarantinedRun {
                    run: 3,
                    engine: EngineKind::Planned,
                    fault_label: "additive σ=0.3".into(),
                    cause: QuarantineCause::Panic {
                        message: "index out of bounds".into(),
                    },
                },
                QuarantinedRun {
                    run: 5,
                    engine: EngineKind::Planned,
                    fault_label: "additive σ=0.3".into(),
                    cause: QuarantineCause::NonFinite { value: f32::NAN },
                },
            ],
        }
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let cp = sample_checkpoint();
        let bytes = cp.to_bytes();
        let back = SweepCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.accounted_runs(), 5);
        assert_eq!(back.remaining_runs(), 7);
    }

    #[test]
    fn checkpoint_rejects_corruption_and_skew() {
        let bytes = sample_checkpoint().to_bytes();
        // Bit flip in the payload → checksum mismatch.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(matches!(
            SweepCheckpoint::from_bytes(&corrupt),
            Err(NnError::Checkpoint(
                CheckpointFault::ChecksumMismatch { .. }
            ))
        ));
        // Truncation.
        assert!(matches!(
            SweepCheckpoint::from_bytes(&bytes[..9]),
            Err(NnError::Checkpoint(CheckpointFault::Truncated { .. }))
        ));
        // Wrong magic: a *model* checkpoint frame is not a sweep checkpoint.
        let mut wrong = bytes.clone();
        wrong[..4].copy_from_slice(b"INCK");
        assert!(matches!(
            SweepCheckpoint::from_bytes(&wrong),
            Err(NnError::Checkpoint(CheckpointFault::BadMagic))
        ));
        // Version skew.
        let mut future = bytes.clone();
        future[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            SweepCheckpoint::from_bytes(&future),
            Err(NnError::Checkpoint(CheckpointFault::VersionSkew {
                expected: 1,
                got: 9
            }))
        ));
    }

    #[test]
    fn budget_interrupts_on_token_and_deadline() {
        let budget = RunBudget::unbounded();
        assert!(!budget.is_bounded());
        assert_eq!(budget.interrupted(), None);

        let token = CancelToken::new();
        let budget = RunBudget::unbounded().with_token(&token);
        assert!(budget.is_bounded());
        assert_eq!(budget.interrupted(), None);
        token.cancel();
        assert_eq!(budget.interrupted(), Some(InterruptCause::Cancelled));
        // Sticky.
        assert_eq!(budget.interrupted(), Some(InterruptCause::Cancelled));

        let budget = RunBudget::unbounded().with_deadline(Duration::ZERO);
        assert_eq!(budget.interrupted(), Some(InterruptCause::DeadlineExpired));
        let budget = RunBudget::unbounded().with_deadline(Duration::from_secs(3600));
        assert_eq!(budget.interrupted(), None);

        // Cancellation wins when both hold.
        let budget = RunBudget::unbounded()
            .with_token(&token)
            .with_deadline(Duration::ZERO);
        assert_eq!(budget.interrupted(), Some(InterruptCause::Cancelled));
    }

    #[test]
    fn ledger_validates_resume_identity() {
        let cp = sample_checkpoint();
        // Matching identity loads.
        let ledger = RunLedger::new(
            EngineKind::Planned,
            SweepDomain::Codes,
            0xDEAD_BEEF,
            12,
            "additive σ=0.3".into(),
            Some(&cp),
        )
        .unwrap();
        assert!(ledger.is_done(0) && ledger.is_done(3) && ledger.is_done(5));
        assert!(!ledger.is_done(1) && !ledger.is_done(11));
        let mask = ledger.done_mask();
        assert_eq!(mask.iter().filter(|d| **d).count(), 5);

        // Each identity field is pinned.
        for (engine, domain, seed, runs, label) in [
            (
                EngineKind::Batched,
                SweepDomain::Codes,
                0xDEAD_BEEFu64,
                12usize,
                "additive σ=0.3",
            ),
            (
                EngineKind::Planned,
                SweepDomain::Weights,
                0xDEAD_BEEF,
                12,
                "additive σ=0.3",
            ),
            (
                EngineKind::Planned,
                SweepDomain::Codes,
                7,
                12,
                "additive σ=0.3",
            ),
            (
                EngineKind::Planned,
                SweepDomain::Codes,
                0xDEAD_BEEF,
                13,
                "additive σ=0.3",
            ),
            (
                EngineKind::Planned,
                SweepDomain::Codes,
                0xDEAD_BEEF,
                12,
                "stuck-at 0.2",
            ),
        ] {
            let err =
                RunLedger::new(engine, domain, seed, runs, label.into(), Some(&cp)).unwrap_err();
            assert!(
                matches!(err, NnError::Checkpoint(CheckpointFault::Mismatch { .. })),
                "{err}"
            );
        }

        // An out-of-range run index is rejected, not a panic.
        let mut bad = sample_checkpoint();
        bad.completed.push((99, 1.0));
        let err = RunLedger::new(
            EngineKind::Planned,
            SweepDomain::Codes,
            0xDEAD_BEEF,
            12,
            "additive σ=0.3".into(),
            Some(&bad),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            NnError::Checkpoint(CheckpointFault::Mismatch {
                field: "run index",
                ..
            })
        ));
    }

    #[test]
    fn ledger_quarantines_non_finite_and_dedups_rerecords() {
        let mut ledger = RunLedger::new(
            EngineKind::Sequential,
            SweepDomain::Weights,
            1,
            4,
            "test".into(),
            None,
        )
        .unwrap();
        ledger.record(0, 1.0);
        ledger.record(1, f32::INFINITY);
        ledger.record_panic(2, "boom".into());
        ledger.record(3, 4.0);
        // Re-records of accounted runs are ignored.
        ledger.record(0, 999.0);
        ledger.record(1, 5.0);
        let outcome = ledger.finish(RunScope::begin(), &RunBudget::unbounded());
        match outcome {
            SweepOutcome::Complete {
                summary,
                quarantined,
            } => {
                assert_eq!(summary.per_run, vec![1.0, 4.0]);
                assert_eq!(quarantined.len(), 2);
                assert_eq!(quarantined[0].run, 1);
                assert!(matches!(
                    quarantined[0].cause,
                    QuarantineCause::NonFinite { .. }
                ));
                assert_eq!(quarantined[1].run, 2);
                assert!(matches!(
                    quarantined[1].cause,
                    QuarantineCause::Panic { .. }
                ));
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn ledger_packages_interrupts_into_checkpoints() {
        let token = CancelToken::new();
        token.cancel();
        let budget = RunBudget::unbounded().with_token(&token);
        let mut ledger = RunLedger::new(
            EngineKind::Parallel,
            SweepDomain::Weights,
            9,
            5,
            "test".into(),
            None,
        )
        .unwrap();
        ledger.record(0, 1.0);
        ledger.record(2, 3.0);
        let outcome = ledger.finish(RunScope::begin(), &budget);
        match outcome {
            SweepOutcome::Interrupted {
                partial,
                cause,
                checkpoint,
                ..
            } => {
                assert_eq!(partial.per_run, vec![1.0, 3.0]);
                assert_eq!(cause, InterruptCause::Cancelled);
                assert_eq!(checkpoint.completed, vec![(0, 1.0), (2, 3.0)]);
                assert_eq!(checkpoint.remaining_runs(), 3);
                // Round-trip through bytes and reload into a fresh ledger.
                let back = SweepCheckpoint::from_bytes(&checkpoint.to_bytes()).unwrap();
                let resumed = RunLedger::new(
                    EngineKind::Parallel,
                    SweepDomain::Weights,
                    9,
                    5,
                    "test".into(),
                    Some(&back),
                )
                .unwrap();
                assert_eq!(resumed.done_mask(), vec![true, false, true, false, false]);
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }
}
