//! Monte-Carlo fault simulation (the paper's evaluation protocol).
//!
//! Every robustness number in the paper is the mean ± standard deviation of a
//! metric over 100 Monte-Carlo fault-simulation runs, each run representing
//! one simulated chip instance with its own random fault realization.
//! [`MonteCarloEngine`] reproduces that protocol: it repeatedly injects a
//! fresh fault realization into the network, evaluates a caller-provided
//! metric, restores the clean weights, and aggregates the results.
//!
//! For sweeps over many fault strengths, [`MonteCarloEngine::run_parallel`]
//! distributes chip instances over rayon worker threads using model
//! *factories* (each worker builds its own model copy once and reuses it
//! across the chip instances it claims), since trained networks are not
//! `Clone`. Chip instances are claimed in fixed-size chunks from a shared
//! atomic counter (work stealing), and every instance derives its RNG stream
//! from the base seed and its own index alone, so the per-run metrics — and
//! therefore the aggregate statistics — are **bit-identical** to the
//! sequential [`MonteCarloEngine::run`] regardless of thread count or
//! scheduling order.

use crate::fault::{FaultLifetime, FaultModel, FaultSpec};
use crate::injector::{CodeFaultInjector, WeightFaultInjector};
use crate::supervise::{
    panic_message, QuarantineCause, QuarantinedRun, RunLedger, SweepControl, SweepDomain,
    SweepOutcome,
};
use crate::Result;
use invnorm_nn::layer::{Layer, Mode};
use invnorm_nn::plan::Plan;
use invnorm_nn::{CheckpointFault, NnError};
use invnorm_tensor::stats::RunningStats;
use invnorm_tensor::telemetry::{self, RunScope, RunTelemetry};
use invnorm_tensor::{Rng, Tensor};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which representation a batched Monte-Carlo run perturbs: f32 weights (via
/// [`WeightFaultInjector`]) or quantization codes (via [`CodeFaultInjector`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchedDomain {
    Weights,
    Codes,
}

/// Aggregated result of a Monte-Carlo fault simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonteCarloSummary {
    /// The fault model that was simulated.
    pub fault_label: String,
    /// Metric value of every run (chip instance).
    pub per_run: Vec<f32>,
    /// Mean metric over all runs.
    pub mean: f32,
    /// Standard deviation of the metric over all runs.
    pub std: f32,
    /// Smallest observed metric.
    pub min: f32,
    /// Largest observed metric.
    pub max: f32,
    /// The SIMD kernel tier the sweep executed under (see
    /// `invnorm_tensor::dispatch`) — the reproducibility boundary of the f32
    /// metrics: results are bit-identical across engines, fault models,
    /// batch sizes and thread counts *within* a tier.
    pub kernel_tier: &'static str,
    /// Per-engine-invocation telemetry (phase breakdown, counter deltas and
    /// the convergence stream). `Some` only when the run executed while
    /// [`telemetry::Telemetry::enabled`] was on; always `None` otherwise, so
    /// the statistics above stay bit-identical either way.
    pub telemetry: Option<RunTelemetry>,
}

impl MonteCarloSummary {
    pub(crate) fn from_runs(fault_label: String, per_run: Vec<f32>) -> Self {
        let mut stats = RunningStats::new();
        stats.extend_from_slice(&per_run);
        Self {
            fault_label,
            mean: stats.mean(),
            std: stats.std(),
            min: stats.min(),
            max: stats.max(),
            per_run,
            kernel_tier: invnorm_tensor::dispatch::active().name(),
            telemetry: None,
        }
    }

    /// Number of simulated chip instances.
    pub fn runs(&self) -> usize {
        self.per_run.len()
    }
}

/// One rung of the Monte-Carlo engine ladder, fastest first. Used by
/// [`MonteCarloEngine::run_auto`] to report which engine actually produced a
/// summary and which rungs were skipped on the way down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// [`MonteCarloEngine::run_planned_batched`]: compiled plans with fused
    /// realization stacks.
    PlannedBatched,
    /// [`MonteCarloEngine::run_planned`]: compiled plans, one realization per
    /// forward.
    Planned,
    /// [`MonteCarloEngine::run_batched`]: stacked batched buffers on the
    /// direct eval path.
    Batched,
    /// [`MonteCarloEngine::run_parallel`]: per-instance snapshot/restore on
    /// the direct eval path — supports every layer.
    Parallel,
    /// [`MonteCarloEngine::run`] / [`MonteCarloEngine::run_quantized`]: the
    /// single-threaded reference engine. Never chosen by the ladder (it is
    /// `run_parallel` with one worker, minus the pool); appears in
    /// supervised-sweep checkpoints taken from the sequential entry points.
    Sequential,
}

impl EngineKind {
    /// The engine entry-point name, as used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::PlannedBatched => "MonteCarloEngine::run_planned_batched",
            EngineKind::Planned => "MonteCarloEngine::run_planned",
            EngineKind::Batched => "MonteCarloEngine::run_batched",
            EngineKind::Parallel => "MonteCarloEngine::run_parallel",
            EngineKind::Sequential => "MonteCarloEngine::run",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How [`MonteCarloEngine::run_auto`] reacts when a fault configuration and
/// an engine do not fit together.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationPolicy {
    /// Fall down the engine ladder (`run_planned_batched` → `run_planned` →
    /// `run_batched` → `run_parallel`), recording a typed reason per skipped
    /// rung. Per-run metrics are bit-identical across rungs wherever two
    /// engines both support the configuration, so degrading never changes
    /// the statistics — only the throughput.
    #[default]
    Graceful,
    /// No fallback: run the fastest engine and propagate its error loudly.
    Strict,
}

/// Why [`MonteCarloEngine::run_auto`] stepped past an engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackReason {
    /// The engine has no fault-lifetime model: its realizations outlive a
    /// single forward pass (snapshot/restore brackets, staged stacked
    /// buffers), so it cannot honor a per-inference fault lifetime.
    Lifetime,
    /// A layer rejected the engine's evaluation protocol
    /// (from [`NnError::Unsupported`]).
    Unsupported {
        /// The offending layer's name.
        layer: &'static str,
        /// The operation the layer does not support.
        op: &'static str,
    },
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::Lifetime => f.write_str("no per-inference fault lifetime model"),
            FallbackReason::Unsupported { layer, op } => {
                write!(f, "layer {layer} does not support {op}")
            }
        }
    }
}

/// One skipped rung of the ladder: which engine was bypassed and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FallbackStep {
    /// The engine that was skipped.
    pub engine: EngineKind,
    /// Why it could not run this configuration.
    pub reason: FallbackReason,
}

impl std::fmt::Display for FallbackStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "skipped {}: {}", self.engine, self.reason)
    }
}

/// Result of [`MonteCarloEngine::run_auto`]: the summary plus a report of
/// which engine produced it and every rung skipped on the way down.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LadderOutcome {
    /// The aggregated Monte-Carlo summary.
    pub summary: MonteCarloSummary,
    /// The engine that produced the summary.
    pub engine: EngineKind,
    /// The rungs skipped before `engine`, in ladder order (empty when the
    /// fastest engine ran).
    pub fallbacks: Vec<FallbackStep>,
}

impl std::fmt::Display for LadderOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}]: {} runs, mean {:.6} ± {:.6} (min {:.6}, max {:.6})",
            self.summary.fault_label,
            self.engine,
            self.summary.runs(),
            self.summary.mean,
            self.summary.std,
            self.summary.min,
            self.summary.max,
        )?;
        for step in &self.fallbacks {
            write!(f, "\n  {step}")?;
        }
        Ok(())
    }
}

/// Result of [`MonteCarloEngine::run_auto_supervised`]: the supervised sweep
/// outcome plus the ladder report.
#[derive(Debug, Clone)]
pub struct SupervisedLadderOutcome {
    /// The (complete or interrupted) sweep outcome.
    pub outcome: SweepOutcome,
    /// The engine that produced it.
    pub engine: EngineKind,
    /// The rungs skipped before `engine`, in ladder order (always empty when
    /// resuming from a checkpoint — resume pins the engine).
    pub fallbacks: Vec<FallbackStep>,
}

/// What one worker attempt at a chip instance produced. `Panicked` only
/// occurs on the supervised paths (the legacy entry points let panics
/// propagate, preserving their pre-supervision behavior).
enum Attempt {
    Metric(Result<f32>),
    Panicked(String),
}

/// Per-batch counterpart of [`Attempt`]: a fused forward is a fused failure
/// domain, so a panic quarantines the whole batch.
enum BatchAttempt {
    Metrics(Result<Vec<f32>>),
    Panicked(String),
}

/// Injector dispatch shared by the sequential supervised body, so the f32
/// and code-domain loops are literally the same code.
enum AnyInjector {
    Weights(WeightFaultInjector),
    Codes(CodeFaultInjector),
}

impl AnyInjector {
    fn new(domain: SweepDomain, fault: FaultModel) -> Self {
        match domain {
            SweepDomain::Weights => AnyInjector::Weights(WeightFaultInjector::new_unchecked(fault)),
            SweepDomain::Codes => AnyInjector::Codes(CodeFaultInjector::new_unchecked(fault)),
        }
    }

    fn inject<L: Layer + ?Sized>(&mut self, network: &mut L, rng: &mut Rng) -> Result<()> {
        match self {
            AnyInjector::Weights(i) => i.inject(network, rng),
            AnyInjector::Codes(i) => i.inject(network, rng),
        }
    }

    fn restore<L: Layer + ?Sized>(&mut self, network: &mut L) -> Result<()> {
        match self {
            AnyInjector::Weights(i) => i.restore(network),
            AnyInjector::Codes(i) => i.restore(network),
        }
    }
}

/// Monte-Carlo fault-simulation engine.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloEngine {
    runs: usize,
    seed: u64,
}

impl MonteCarloEngine {
    /// Creates an engine running `runs` chip instances (at least one) from a
    /// base seed; instance `i` uses an independent RNG stream derived from
    /// `seed` and `i`.
    pub fn new(runs: usize, seed: u64) -> Self {
        Self {
            runs: runs.max(1),
            seed,
        }
    }

    /// The paper's setting: 100 chip instances.
    pub fn paper_default() -> Self {
        Self::new(100, 0xC0FFEE)
    }

    /// Number of runs.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Independent RNG stream for chip instance `run`, identical regardless of
    /// which thread (or call order) simulates it.
    fn run_rng(seed: u64, run: usize) -> Rng {
        Rng::seed_from(seed ^ (run as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Validates the model of `spec` and rejects a per-inference lifetime on
    /// behalf of an engine whose realizations outlive a single forward pass
    /// (snapshot/restore brackets, staged stacked buffers). Returns the bare
    /// model for engines that realize once per run.
    fn require_static(spec: FaultSpec, engine: &'static str) -> Result<FaultModel> {
        spec.model.validate()?;
        if spec.lifetime == FaultLifetime::PerInference {
            return Err(NnError::fault_unsupported(
                engine,
                "per-inference fault lifetime",
            ));
        }
        Ok(spec.model)
    }

    /// Runs the simulation on a single network, injecting and restoring
    /// faults around every evaluation.
    ///
    /// `evaluate` receives the faulty network and returns the metric of
    /// interest (accuracy, mIoU, RMSE, NLL, ...).
    ///
    /// Accepts a [`FaultModel`] or a [`FaultSpec`]; the snapshot/restore
    /// bracket holds each realization fixed across the whole `evaluate`
    /// call, so a per-inference fault lifetime is rejected with
    /// [`NnError::FaultUnsupported`] — use the planned engines for that.
    ///
    /// # Errors
    ///
    /// Returns an error when the fault configuration is invalid or
    /// unsupported, or when injection, evaluation or restoration fails; the
    /// network is restored to its clean weights before the error is returned
    /// whenever possible.
    pub fn run<F>(
        &self,
        network: &mut dyn Layer,
        fault: impl Into<FaultSpec>,
        evaluate: F,
    ) -> Result<MonteCarloSummary>
    where
        F: FnMut(&mut dyn Layer) -> Result<f32>,
    {
        let outcome = self.run_seq_impl(
            network,
            fault.into(),
            evaluate,
            SweepDomain::Weights,
            &SweepControl::default(),
            false,
        )?;
        Self::unwrap_legacy(outcome)
    }

    /// The supervised counterpart of [`MonteCarloEngine::run`]: honors the
    /// control's [`crate::supervise::RunBudget`] between chip instances,
    /// quarantines panicking and non-finite runs instead of failing the
    /// sweep, and resumes from the control's checkpoint when one is given.
    /// See [`crate::supervise`] for the full semantics.
    ///
    /// # Errors
    ///
    /// Returns an error when the fault configuration is invalid or
    /// unsupported, when a resume checkpoint does not match this sweep, or
    /// when injection, evaluation or restoration fails *with a genuine
    /// error* (an `Err` from `evaluate` still propagates — only panics and
    /// non-finite metrics are quarantined).
    pub fn run_supervised<F>(
        &self,
        network: &mut dyn Layer,
        fault: impl Into<FaultSpec>,
        evaluate: F,
        control: &SweepControl,
    ) -> Result<SweepOutcome>
    where
        F: FnMut(&mut dyn Layer) -> Result<f32>,
    {
        self.run_seq_impl(
            network,
            fault.into(),
            evaluate,
            SweepDomain::Weights,
            control,
            true,
        )
    }

    /// Shared body of the sequential engines (`run` / `run_quantized` and
    /// their supervised variants). `catch` is true only on the supervised
    /// paths: the legacy entry points keep their pre-supervision panic
    /// semantics (propagate) and map the lowest quarantined run back to the
    /// historical error message via [`MonteCarloEngine::unwrap_legacy`].
    fn run_seq_impl<F>(
        &self,
        network: &mut dyn Layer,
        spec: FaultSpec,
        mut evaluate: F,
        domain: SweepDomain,
        control: &SweepControl,
        catch: bool,
    ) -> Result<SweepOutcome>
    where
        F: FnMut(&mut dyn Layer) -> Result<f32>,
    {
        let entry = match domain {
            SweepDomain::Weights => "MonteCarloEngine::run",
            SweepDomain::Codes => "MonteCarloEngine::run_quantized",
        };
        let fault = Self::require_static(spec, entry)?;
        let scope = RunScope::begin();
        let mut ledger = RunLedger::new(
            EngineKind::Sequential,
            domain,
            self.seed,
            self.runs,
            fault.label(),
            control.resume.as_ref(),
        )?;
        for run in 0..self.runs {
            if ledger.is_done(run) {
                continue;
            }
            if control.budget.interrupted().is_some() {
                break;
            }
            // Kept in lockstep with `simulate_one` (the run_parallel inner
            // step); they cannot share code because the `&mut dyn Layer` in
            // `F`'s bound cannot unify with a `?Sized` type parameter
            // (diagonal higher-ranked lifetime). Any divergence is caught by
            // the `parallel_*_bit_identical*` tests below.
            let mut rng = Self::run_rng(self.seed, run);
            let mut injector = AnyInjector::new(domain, fault);
            injector.inject(network, &mut rng)?;
            // The user closure fuses forward and metric; span both together.
            let result = {
                let _span = telemetry::span(telemetry::Phase::Forward);
                if catch {
                    match catch_unwind(AssertUnwindSafe(|| evaluate(network))) {
                        Ok(r) => Attempt::Metric(r),
                        Err(payload) => Attempt::Panicked(panic_message(payload)),
                    }
                } else {
                    Attempt::Metric(evaluate(network))
                }
            };
            // Always restore, even if evaluation failed or panicked: the
            // injector's snapshot is intact either way.
            let restore_result = injector.restore(network);
            match result {
                Attempt::Metric(Ok(metric)) => {
                    restore_result?;
                    ledger.record(run, metric);
                }
                // A genuine evaluation error takes precedence over a
                // restore failure, matching the historical ordering.
                Attempt::Metric(Err(e)) => return Err(e),
                Attempt::Panicked(message) => {
                    restore_result?;
                    ledger.record_panic(run, message);
                }
            }
        }
        Ok(ledger.finish(scope, &control.budget))
    }

    /// Maps a supervised outcome back onto the legacy contract: a complete,
    /// quarantine-free sweep returns its summary, and the lowest quarantined
    /// run reproduces the historical non-finite error message. Interrupts
    /// cannot occur (legacy calls pass an unbounded default control).
    fn unwrap_legacy(outcome: SweepOutcome) -> Result<MonteCarloSummary> {
        match outcome {
            SweepOutcome::Complete {
                summary,
                quarantined,
            } => match quarantined.into_iter().min_by_key(|q| q.run) {
                None => Ok(summary),
                Some(q) => Err(Self::legacy_quarantine_error(&q)),
            },
            SweepOutcome::Interrupted { .. } => Err(NnError::Config(
                "sweep interrupted under an unbounded budget (internal error)".into(),
            )),
        }
    }

    fn legacy_quarantine_error(q: &QuarantinedRun) -> NnError {
        match &q.cause {
            QuarantineCause::NonFinite { value } => NnError::Config(format!(
                "evaluation returned a non-finite metric ({value}) on run {}",
                q.run
            )),
            QuarantineCause::Panic { message } => {
                NnError::Config(format!("evaluation panicked ({message}) on run {}", q.run))
            }
        }
    }

    /// Runs the simulation with per-worker model copies built by `factory`,
    /// spreading chip instances over `threads` rayon workers.
    ///
    /// This is the variant used for the larger sweeps in `invnorm-bench`;
    /// each worker builds its own model once (factories are expected to
    /// reproduce identical weights, e.g. by re-training with a fixed seed or
    /// loading a shared checkpoint) and then claims chip instances in chunks
    /// of [`MonteCarloEngine::CHUNK`] from a shared atomic counter, so slow
    /// instances do not leave workers idle.
    ///
    /// Because instance `i` always uses the RNG stream derived from
    /// `(seed, i)` and writes metric slot `i`, the result is bit-identical to
    /// [`MonteCarloEngine::run`] on an identically-weighted model, for every
    /// thread count and schedule.
    ///
    /// # Errors
    ///
    /// Returns an error when any instance fails; with several failures, the
    /// error of the lowest-indexed failing instance is returned (matching
    /// what the sequential engine would report first).
    pub fn run_parallel<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        evaluate: E,
        threads: usize,
    ) -> Result<MonteCarloSummary>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&mut M) -> Result<f32> + Sync,
    {
        let outcome = self.run_parallel_impl(
            factory,
            fault.into(),
            evaluate,
            threads,
            &SweepControl::default(),
            false,
        )?;
        Self::unwrap_legacy(outcome)
    }

    /// The supervised counterpart of [`MonteCarloEngine::run_parallel`]:
    /// workers honor the control's budget between chip instances, a
    /// panicking run is quarantined (the worker rebuilds its model from the
    /// factory and keeps claiming work — the pool survives), non-finite
    /// metrics are quarantined at record time, and the control's checkpoint
    /// resumes only the missing instances. See [`crate::supervise`].
    ///
    /// # Errors
    ///
    /// See [`MonteCarloEngine::run_supervised`]; with several genuine
    /// errors, the lowest-indexed failing instance is reported.
    pub fn run_parallel_supervised<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        evaluate: E,
        threads: usize,
        control: &SweepControl,
    ) -> Result<SweepOutcome>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&mut M) -> Result<f32> + Sync,
    {
        self.run_parallel_impl(factory, fault.into(), evaluate, threads, control, true)
    }

    fn run_parallel_impl<M, F, E>(
        &self,
        factory: F,
        spec: FaultSpec,
        evaluate: E,
        threads: usize,
        control: &SweepControl,
        catch: bool,
    ) -> Result<SweepOutcome>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&mut M) -> Result<f32> + Sync,
    {
        let fault = Self::require_static(spec, "MonteCarloEngine::run_parallel")?;
        let scope = RunScope::begin();
        let mut ledger = RunLedger::new(
            EngineKind::Parallel,
            SweepDomain::Weights,
            self.seed,
            self.runs,
            fault.label(),
            control.resume.as_ref(),
        )?;
        let done = ledger.done_mask();
        let budget = &control.budget;
        let threads = threads.clamp(1, self.runs);
        let n_chunks = self.runs.div_ceil(Self::CHUNK);
        let seed = self.seed;
        let runs = self.runs;
        let next_chunk = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, Attempt)>> = Mutex::new(Vec::with_capacity(runs));
        rayon::scope(|s| {
            for _ in 0..threads {
                let next_chunk = &next_chunk;
                let collected = &collected;
                let factory = &factory;
                let evaluate = &evaluate;
                let done = &done;
                s.spawn(move || {
                    let mut model = factory();
                    let mut local: Vec<(usize, Attempt)> = Vec::new();
                    'steal: loop {
                        let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
                        if chunk >= n_chunks {
                            break;
                        }
                        let start = chunk * Self::CHUNK;
                        let end = (start + Self::CHUNK).min(runs);
                        for run in start..end {
                            if done[run] {
                                continue;
                            }
                            if budget.interrupted().is_some() {
                                break 'steal;
                            }
                            if catch {
                                match catch_unwind(AssertUnwindSafe(|| {
                                    Self::simulate_one(&mut model, fault, seed, run, evaluate)
                                })) {
                                    Ok(r) => local.push((run, Attempt::Metric(r))),
                                    Err(payload) => {
                                        local
                                            .push((run, Attempt::Panicked(panic_message(payload))));
                                        // The panic left the model in an
                                        // unknown state; rebuild it.
                                        model = factory();
                                    }
                                }
                            } else {
                                local.push((
                                    run,
                                    Attempt::Metric(Self::simulate_one(
                                        &mut model, fault, seed, run, evaluate,
                                    )),
                                ));
                            }
                        }
                    }
                    collected
                        .lock()
                        .expect("monte-carlo result lock poisoned")
                        .append(&mut local);
                });
            }
        });
        let mut collected = collected
            .into_inner()
            .expect("monte-carlo result lock poisoned");
        collected.sort_by_key(|(run, _)| *run);
        for (run, attempt) in collected {
            match attempt {
                Attempt::Metric(Ok(metric)) => ledger.record(run, metric),
                // Lowest-indexed genuine error wins (the drain is sorted).
                Attempt::Metric(Err(e)) => return Err(e),
                Attempt::Panicked(message) => ledger.record_panic(run, message),
            }
        }
        Ok(ledger.finish(scope, budget))
    }

    /// Number of chip instances a worker claims per steal. Small enough to
    /// balance heterogeneous evaluation times, large enough to amortize the
    /// atomic increment.
    pub const CHUNK: usize = 4;

    /// Runs the simulation on a **quantized** network, injecting each fault
    /// realization **directly into the i8 weight codes**
    /// (via [`CodeFaultInjector`]) instead of the f32 parameters. This is
    /// the protocol for integer-inference models built from
    /// `invnorm_nn::quantized` layers: faults are applied on the
    /// representation the hardware programs, and every forward pass inside
    /// `evaluate` runs through the integer GEMM on the faulty codes.
    ///
    /// Chip instance `i` uses the same `(seed, i)`-derived RNG stream as
    /// [`MonteCarloEngine::run`], so a quantized simulation is directly
    /// comparable to its f32 counterpart run with the same engine.
    ///
    /// # Errors
    ///
    /// Returns an error when injection, evaluation or restoration fails, or
    /// when a metric is non-finite; the clean codes are restored before the
    /// error is returned whenever possible.
    pub fn run_quantized<F>(
        &self,
        network: &mut dyn Layer,
        fault: impl Into<FaultSpec>,
        evaluate: F,
    ) -> Result<MonteCarloSummary>
    where
        F: FnMut(&mut dyn Layer) -> Result<f32>,
    {
        let outcome = self.run_seq_impl(
            network,
            fault.into(),
            evaluate,
            SweepDomain::Codes,
            &SweepControl::default(),
            false,
        )?;
        Self::unwrap_legacy(outcome)
    }

    /// The supervised counterpart of [`MonteCarloEngine::run_quantized`]:
    /// same code-domain protocol, plus budgets, quarantine and resume — see
    /// [`MonteCarloEngine::run_supervised`] and [`crate::supervise`].
    ///
    /// # Errors
    ///
    /// See [`MonteCarloEngine::run_supervised`].
    pub fn run_quantized_supervised<F>(
        &self,
        network: &mut dyn Layer,
        fault: impl Into<FaultSpec>,
        evaluate: F,
        control: &SweepControl,
    ) -> Result<SweepOutcome>
    where
        F: FnMut(&mut dyn Layer) -> Result<f32>,
    {
        self.run_seq_impl(
            network,
            fault.into(),
            evaluate,
            SweepDomain::Codes,
            control,
            true,
        )
    }

    /// Runs the simulation with **B fault realizations fused into each
    /// forward pass**: `runs` chip instances are chunked into batches of
    /// `batch`, each batch stages B perturbed weight realizations into the
    /// network's stacked batched buffers (the clean weights are never
    /// touched, so there is no snapshot/restore), evaluates all of them in
    /// one batched forward over the shared `input`, and applies `metric` to
    /// each realization's output slice. Batches are distributed over
    /// `threads` rayon workers exactly like [`MonteCarloEngine::run_parallel`]
    /// distributes instances.
    ///
    /// Chip instance `i` perturbs its weights with the same `(seed, i)`
    /// derived streams as [`MonteCarloEngine::run`], and each realization's
    /// forward pass is arithmetically identical to a sequential forward on
    /// its perturbed weights, so the per-run metrics are **bit-identical** to
    /// the sequential engine evaluating `metric(network.forward(input))` —
    /// for every batch size and thread count. What batching buys is
    /// throughput: the shared input panel is quantized/unfolded/packed once
    /// per batch instead of once per instance, per-instance snapshot/restore
    /// clones disappear, and small models stop being bound by per-run
    /// dispatch overhead.
    ///
    /// The network must be built from batched-eval-capable layers
    /// (`Linear`, `Conv2d`, the quantized layers, containers and stateless
    /// layers); a layer with fault-targetable weights but no batched support
    /// is rejected loudly. Networks that are stochastic at evaluation time
    /// are not reproducible against the sequential engine.
    ///
    /// # Errors
    ///
    /// Returns an error when staging, injection, evaluation or the metric
    /// fails, or when a metric is non-finite; with several failures, the
    /// error of the lowest-indexed failing batch is returned.
    #[allow(clippy::too_many_arguments)]
    pub fn run_batched<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        input: &Tensor,
        metric: E,
        batch: usize,
        threads: usize,
    ) -> Result<MonteCarloSummary>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        let fault = Self::require_static(fault.into(), "MonteCarloEngine::run_batched")?;
        let outcome = self.run_batched_in(
            BatchedDomain::Weights,
            factory,
            fault,
            input,
            metric,
            batch,
            threads,
            &SweepControl::default(),
            false,
        )?;
        Self::unwrap_legacy(outcome)
    }

    /// The supervised counterpart of [`MonteCarloEngine::run_batched`]:
    /// workers honor the budget between batches, a panicking batch is
    /// quarantined whole (a fused forward is a fused failure domain; the
    /// worker rebuilds its model and stacked buffers), and resume re-runs
    /// any batch with missing instances — deterministic streams make the
    /// replayed values identical. See [`crate::supervise`].
    ///
    /// # Errors
    ///
    /// See [`MonteCarloEngine::run_supervised`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_batched_supervised<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        input: &Tensor,
        metric: E,
        batch: usize,
        threads: usize,
        control: &SweepControl,
    ) -> Result<SweepOutcome>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        let fault = Self::require_static(fault.into(), "MonteCarloEngine::run_batched")?;
        self.run_batched_in(
            BatchedDomain::Weights,
            factory,
            fault,
            input,
            metric,
            batch,
            threads,
            control,
            true,
        )
    }

    /// The **quantized** counterpart of [`MonteCarloEngine::run_batched`]:
    /// each batch materializes B fault realizations directly into the
    /// stacked **i8 code** buffers (via [`CodeFaultInjector`] streams), and
    /// the batched forward stays in the integer domain. Per-run metrics are
    /// bit-identical to [`MonteCarloEngine::run_quantized`] evaluating
    /// `metric(network.forward(input))`.
    ///
    /// # Errors
    ///
    /// See [`MonteCarloEngine::run_batched`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_batched_quantized<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        input: &Tensor,
        metric: E,
        batch: usize,
        threads: usize,
    ) -> Result<MonteCarloSummary>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        let fault = Self::require_static(fault.into(), "MonteCarloEngine::run_batched_quantized")?;
        let outcome = self.run_batched_in(
            BatchedDomain::Codes,
            factory,
            fault,
            input,
            metric,
            batch,
            threads,
            &SweepControl::default(),
            false,
        )?;
        Self::unwrap_legacy(outcome)
    }

    /// The supervised counterpart of
    /// [`MonteCarloEngine::run_batched_quantized`] — see
    /// [`MonteCarloEngine::run_batched_supervised`].
    ///
    /// # Errors
    ///
    /// See [`MonteCarloEngine::run_supervised`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_batched_quantized_supervised<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        input: &Tensor,
        metric: E,
        batch: usize,
        threads: usize,
        control: &SweepControl,
    ) -> Result<SweepOutcome>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        let fault = Self::require_static(fault.into(), "MonteCarloEngine::run_batched_quantized")?;
        self.run_batched_in(
            BatchedDomain::Codes,
            factory,
            fault,
            input,
            metric,
            batch,
            threads,
            control,
            true,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_batched_in<M, F, E>(
        &self,
        domain: BatchedDomain,
        factory: F,
        fault: FaultModel,
        input: &Tensor,
        metric: E,
        batch: usize,
        threads: usize,
        control: &SweepControl,
        catch: bool,
    ) -> Result<SweepOutcome>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        fault.validate()?;
        let scope = RunScope::begin();
        let runs = self.runs;
        let seed = self.seed;
        let mut ledger = RunLedger::new(
            EngineKind::Batched,
            match domain {
                BatchedDomain::Weights => SweepDomain::Weights,
                BatchedDomain::Codes => SweepDomain::Codes,
            },
            seed,
            runs,
            fault.label(),
            control.resume.as_ref(),
        )?;
        let done = ledger.done_mask();
        let budget = &control.budget;
        let batch = batch.clamp(1, runs);
        let n_batches = runs.div_ceil(batch);
        let threads = threads.clamp(1, n_batches);
        let next_batch = AtomicUsize::new(0);
        type BatchEntry = (usize, usize, BatchAttempt);
        let collected: Mutex<Vec<BatchEntry>> = Mutex::new(Vec::with_capacity(n_batches));
        rayon::scope(|s| {
            for _ in 0..threads {
                let next_batch = &next_batch;
                let collected = &collected;
                let factory = &factory;
                let metric = &metric;
                let done = &done;
                s.spawn(move || {
                    let mut model = factory();
                    let mut local: Vec<BatchEntry> = Vec::new();
                    // Clean weights are staged into the stacked buffers once
                    // per worker (targeted slots are fully overwritten by
                    // every realization pass, untargeted slots stay clean),
                    // so batch N+1 pays no re-staging memcpy.
                    let mut staged = 0usize;
                    loop {
                        let bi = next_batch.fetch_add(1, Ordering::Relaxed);
                        if bi >= n_batches {
                            break;
                        }
                        let start = bi * batch;
                        let bsize = batch.min(runs - start);
                        // A batch whose every instance is already accounted
                        // for (resume) costs nothing; a partially-done batch
                        // re-runs whole — the replayed values are identical
                        // and the ledger ignores re-records.
                        if done[start..start + bsize].iter().all(|d| *d) {
                            continue;
                        }
                        if budget.interrupted().is_some() {
                            break;
                        }
                        if staged != bsize {
                            if let Err(e) = model.begin_batched(bsize) {
                                local.push((start, bsize, BatchAttempt::Metrics(Err(e))));
                                break;
                            }
                            staged = bsize;
                        }
                        if catch {
                            match catch_unwind(AssertUnwindSafe(|| {
                                Self::simulate_batch(
                                    &mut model, domain, fault, seed, start, bsize, input, metric,
                                )
                            })) {
                                Ok(r) => local.push((start, bsize, BatchAttempt::Metrics(r))),
                                Err(payload) => {
                                    local.push((
                                        start,
                                        bsize,
                                        BatchAttempt::Panicked(panic_message(payload)),
                                    ));
                                    // The panic left the model and its
                                    // stacked buffers in an unknown state;
                                    // rebuild both.
                                    model = factory();
                                    staged = 0;
                                }
                            }
                        } else {
                            local.push((
                                start,
                                bsize,
                                BatchAttempt::Metrics(Self::simulate_batch(
                                    &mut model, domain, fault, seed, start, bsize, input, metric,
                                )),
                            ));
                        }
                    }
                    model.end_batched();
                    collected
                        .lock()
                        .expect("monte-carlo result lock poisoned")
                        .append(&mut local);
                });
            }
        });
        let mut collected = collected
            .into_inner()
            .expect("monte-carlo result lock poisoned");
        collected.sort_by_key(|(start, _, _)| *start);
        for (start, bsize, attempt) in collected {
            match attempt {
                BatchAttempt::Metrics(Ok(metrics)) => {
                    for (offset, metric) in metrics.into_iter().enumerate() {
                        ledger.record(start + offset, metric);
                    }
                }
                // Lowest-indexed genuine error wins (the drain is sorted).
                BatchAttempt::Metrics(Err(e)) => return Err(e),
                BatchAttempt::Panicked(message) => {
                    for run in start..start + bsize {
                        ledger.record_panic(run, message.clone());
                    }
                }
            }
        }
        Ok(ledger.finish(scope, budget))
    }

    /// Runs the simulation on **compiled inference plans**: each worker
    /// builds its model once, compiles it into an `invnorm_nn::plan::Plan`
    /// for the shape of `input` (one-shot shape inference, arena-backed
    /// buffers, cached packed-weight panels), and then claims chip instances
    /// exactly like [`MonteCarloEngine::run_parallel`]. Per instance, the
    /// fault realization lands in the plan's faulty weight buffers (clean
    /// weights are never touched — no snapshot/restore), **only the packed
    /// panels covering dirty weight rows are re-packed**, and the forward
    /// pass runs zero-alloc and pack-free over the arena.
    ///
    /// Chip instance `i` perturbs its weights with the same `(seed, i)`
    /// derived streams as [`MonteCarloEngine::run`] and the planned forward
    /// is bit-identical to the direct eval path, so per-run metrics are
    /// **bit-identical** to `run`/`run_parallel` for every thread count and
    /// all fault models (tested). What planning buys is throughput: the
    /// direct path re-packs every weight operand and re-derives every shape
    /// on every run; the plan amortizes all of that across the whole
    /// simulation — for the paper's linear probe the weight-pack bound
    /// disappears entirely.
    ///
    /// The network must be built from plan-capable layers (the dense, conv,
    /// quantized, container, activation, pooling, reshape and norm layers);
    /// a layer with fault-targetable weights but no plan support is rejected
    /// loudly with `NnError::Unsupported`. Networks that are stochastic at
    /// evaluation time are not reproducible against the sequential engine.
    ///
    /// Both fault lifetimes are supported: pass a
    /// [`FaultSpec`] with [`FaultLifetime::PerInference`] (e.g. transient
    /// read noise) and the plan re-realizes before every forward and
    /// disables its frozen-input caching, so each forward sees a fresh
    /// realization. Since this engine runs exactly one forward per chip
    /// instance, per-run metrics remain bit-identical to the static
    /// lifetime — the lifetime only changes behavior for callers driving
    /// several forwards per realization.
    ///
    /// # Errors
    ///
    /// Returns an error when compilation, injection, evaluation or the
    /// metric fails, or when a metric is non-finite; with several failures,
    /// the error of the lowest-indexed failing instance is returned.
    pub fn run_planned<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        input: &Tensor,
        metric: E,
        threads: usize,
    ) -> Result<MonteCarloSummary>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        let outcome = self.run_planned_in(
            BatchedDomain::Weights,
            factory,
            fault.into(),
            input,
            metric,
            threads,
            &SweepControl::default(),
            false,
        )?;
        Self::unwrap_legacy(outcome)
    }

    /// The supervised counterpart of [`MonteCarloEngine::run_planned`]:
    /// workers honor the budget between chip instances, a panicking run is
    /// quarantined (the worker drops its plan, rebuilds its model and
    /// recompiles — the pool survives), and the control's checkpoint resumes
    /// only the missing instances. See [`crate::supervise`].
    ///
    /// # Errors
    ///
    /// See [`MonteCarloEngine::run_supervised`].
    pub fn run_planned_supervised<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        input: &Tensor,
        metric: E,
        threads: usize,
        control: &SweepControl,
    ) -> Result<SweepOutcome>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        self.run_planned_in(
            BatchedDomain::Weights,
            factory,
            fault.into(),
            input,
            metric,
            threads,
            control,
            true,
        )
    }

    /// The **quantized** counterpart of [`MonteCarloEngine::run_planned`]:
    /// fault realizations land directly in each layer's plan-owned i8 code
    /// buffers (via [`CodeFaultInjector`] streams), dirty code rows drive
    /// the panel re-packing, and the planned forward stays in the integer
    /// domain. Per-run metrics are bit-identical to
    /// [`MonteCarloEngine::run_quantized`] evaluating
    /// `metric(network.forward(input))`.
    ///
    /// # Errors
    ///
    /// See [`MonteCarloEngine::run_planned`].
    pub fn run_planned_quantized<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        input: &Tensor,
        metric: E,
        threads: usize,
    ) -> Result<MonteCarloSummary>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        let outcome = self.run_planned_in(
            BatchedDomain::Codes,
            factory,
            fault.into(),
            input,
            metric,
            threads,
            &SweepControl::default(),
            false,
        )?;
        Self::unwrap_legacy(outcome)
    }

    /// The supervised counterpart of
    /// [`MonteCarloEngine::run_planned_quantized`] — see
    /// [`MonteCarloEngine::run_planned_supervised`].
    ///
    /// # Errors
    ///
    /// See [`MonteCarloEngine::run_supervised`].
    pub fn run_planned_quantized_supervised<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        input: &Tensor,
        metric: E,
        threads: usize,
        control: &SweepControl,
    ) -> Result<SweepOutcome>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        self.run_planned_in(
            BatchedDomain::Codes,
            factory,
            fault.into(),
            input,
            metric,
            threads,
            control,
            true,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_planned_in<M, F, E>(
        &self,
        domain: BatchedDomain,
        factory: F,
        spec: FaultSpec,
        input: &Tensor,
        metric: E,
        threads: usize,
        control: &SweepControl,
        catch: bool,
    ) -> Result<SweepOutcome>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        spec.model.validate()?;
        let scope = RunScope::begin();
        let fault = spec.model;
        let lifetime = spec.lifetime;
        let runs = self.runs;
        let seed = self.seed;
        let mut ledger = RunLedger::new(
            EngineKind::Planned,
            match domain {
                BatchedDomain::Weights => SweepDomain::Weights,
                BatchedDomain::Codes => SweepDomain::Codes,
            },
            seed,
            runs,
            fault.label(),
            control.resume.as_ref(),
        )?;
        let done = ledger.done_mask();
        let budget = &control.budget;
        let threads = threads.clamp(1, runs);
        let n_chunks = runs.div_ceil(Self::CHUNK);
        let next_chunk = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, Attempt)>> = Mutex::new(Vec::with_capacity(runs));
        rayon::scope(|s| {
            for _ in 0..threads {
                let next_chunk = &next_chunk;
                let collected = &collected;
                let factory = &factory;
                let metric = &metric;
                let done = &done;
                s.spawn(move || {
                    let mut model = factory();
                    // Compile lazily on the first claimed chunk so a
                    // compilation failure is attributed to a concrete run.
                    let mut plan: Option<Plan> = None;
                    let mut local: Vec<(usize, Attempt)> = Vec::new();
                    'steal: loop {
                        let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
                        if chunk >= n_chunks {
                            break;
                        }
                        let start = chunk * Self::CHUNK;
                        let end = (start + Self::CHUNK).min(runs);
                        // Resumed chunks with no pending instance must not
                        // force a compile.
                        if (start..end).all(|run| done[run]) {
                            continue;
                        }
                        if plan.is_none() {
                            match Plan::compile(&mut model, input) {
                                Ok(mut p) => {
                                    p.set_fault_lifetime(lifetime);
                                    plan = Some(p);
                                }
                                Err(e) => {
                                    local.push((start, Attempt::Metric(Err(e))));
                                    break 'steal;
                                }
                            }
                        }
                        for run in start..end {
                            if done[run] {
                                continue;
                            }
                            if budget.interrupted().is_some() {
                                break 'steal;
                            }
                            let plan_ref = plan.as_mut().expect("plan compiled above");
                            if catch {
                                match catch_unwind(AssertUnwindSafe(|| {
                                    Self::simulate_planned(
                                        &mut model, plan_ref, domain, fault, seed, run, metric,
                                    )
                                })) {
                                    Ok(r) => local.push((run, Attempt::Metric(r))),
                                    Err(payload) => {
                                        local
                                            .push((run, Attempt::Panicked(panic_message(payload))));
                                        // The panic left the model and its
                                        // plan buffers in an unknown state;
                                        // rebuild both.
                                        model = factory();
                                        match Plan::compile(&mut model, input) {
                                            Ok(mut p) => {
                                                p.set_fault_lifetime(lifetime);
                                                plan = Some(p);
                                            }
                                            Err(e) => {
                                                local.push((run, Attempt::Metric(Err(e))));
                                                break 'steal;
                                            }
                                        }
                                    }
                                }
                            } else {
                                local.push((
                                    run,
                                    Attempt::Metric(Self::simulate_planned(
                                        &mut model, plan_ref, domain, fault, seed, run, metric,
                                    )),
                                ));
                            }
                        }
                    }
                    model.plan_end();
                    collected
                        .lock()
                        .expect("monte-carlo result lock poisoned")
                        .append(&mut local);
                });
            }
        });
        let mut collected = collected
            .into_inner()
            .expect("monte-carlo result lock poisoned");
        collected.sort_by_key(|(run, _)| *run);
        for (run, attempt) in collected {
            match attempt {
                Attempt::Metric(Ok(metric)) => ledger.record(run, metric),
                // Lowest-indexed genuine error wins (the drain is sorted).
                Attempt::Metric(Err(e)) => return Err(e),
                Attempt::Panicked(message) => ledger.record_panic(run, message),
            }
        }
        Ok(ledger.finish(scope, budget))
    }

    /// Runs the simulation with **compiled plans and B fused fault
    /// realizations per forward pass** — the composition of
    /// [`MonteCarloEngine::run_planned`] (one-shot shape inference,
    /// arena-backed buffers, cached packed panels, dirty-row re-packing)
    /// and [`MonteCarloEngine::run_batched`] (stacked realizations sharing
    /// each forward's input-derived work).
    ///
    /// Each worker builds its model once and compiles it into a **batched
    /// plan** (`Plan::compile_batched`): every weighted layer owns `batch`
    /// stacked faulty buffers and per-realization cached packed panels, all
    /// reserved at compile time. Per batch of chip instances, the injector
    /// materializes the realizations from the sequential per-instance RNG
    /// streams straight into the stacked buffers
    /// ([`WeightFaultInjector::realize_plan_batch`]) — sparse stuck-at
    /// realizations land in the packed panels cell by cell, drift scales
    /// the whole panel stack in place, dense models re-pack only dirty rows
    /// — and ONE planned forward evaluates the whole stack, with the cached
    /// activation panels (packed/unfolded/quantized once per simulation,
    /// not once per batch) streamed against every realization's weight
    /// panel.
    ///
    /// Chip instance `i` perturbs its weights with the same `(seed, i)`
    /// derived streams as [`MonteCarloEngine::run`], and realization `b`'s
    /// rows of the stacked output are arithmetically identical to a
    /// single-realization planned forward on its faulty weights, so the
    /// per-run metrics are **bit-identical** to the sequential engine — for
    /// every batch size and thread count (tested for all eight fault
    /// models).
    ///
    /// # Errors
    ///
    /// Returns an error when compilation, injection, evaluation or the
    /// metric fails, or when a metric is non-finite; with several failures,
    /// the error of the lowest-indexed failing batch is returned.
    pub fn run_planned_batched<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        input: &Tensor,
        metric: E,
        batch: usize,
        threads: usize,
    ) -> Result<MonteCarloSummary>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        let outcome = self.run_planned_batched_in(
            BatchedDomain::Weights,
            factory,
            fault.into(),
            input,
            metric,
            batch,
            threads,
            &SweepControl::default(),
            false,
        )?;
        Self::unwrap_legacy(outcome)
    }

    /// The supervised counterpart of
    /// [`MonteCarloEngine::run_planned_batched`] — honors the
    /// [`SweepControl`] budget/resume and quarantines panicking or
    /// non-finite batches. Because a panicking batch shares one fused
    /// forward, the whole batch is its failure domain: every instance in
    /// it is quarantined.
    ///
    /// # Errors
    ///
    /// See [`MonteCarloEngine::run_supervised`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_planned_batched_supervised<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        input: &Tensor,
        metric: E,
        batch: usize,
        threads: usize,
        control: &SweepControl,
    ) -> Result<SweepOutcome>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        self.run_planned_batched_in(
            BatchedDomain::Weights,
            factory,
            fault.into(),
            input,
            metric,
            batch,
            threads,
            control,
            true,
        )
    }

    /// The **quantized** counterpart of
    /// [`MonteCarloEngine::run_planned_batched`]: realizations land directly
    /// in the batched plan's stacked i8 code buffers (via
    /// [`CodeFaultInjector::realize_plan_batch`] streams), per-realization
    /// dirty code rows drive the panel re-packing, and the fused planned
    /// forward stays in the integer domain. Per-run metrics are
    /// bit-identical to [`MonteCarloEngine::run_quantized`].
    ///
    /// # Errors
    ///
    /// See [`MonteCarloEngine::run_planned_batched`].
    pub fn run_planned_batched_quantized<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        input: &Tensor,
        metric: E,
        batch: usize,
        threads: usize,
    ) -> Result<MonteCarloSummary>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        let outcome = self.run_planned_batched_in(
            BatchedDomain::Codes,
            factory,
            fault.into(),
            input,
            metric,
            batch,
            threads,
            &SweepControl::default(),
            false,
        )?;
        Self::unwrap_legacy(outcome)
    }

    /// The supervised counterpart of
    /// [`MonteCarloEngine::run_planned_batched_quantized`] — see
    /// [`MonteCarloEngine::run_planned_batched_supervised`].
    ///
    /// # Errors
    ///
    /// See [`MonteCarloEngine::run_supervised`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_planned_batched_quantized_supervised<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        input: &Tensor,
        metric: E,
        batch: usize,
        threads: usize,
        control: &SweepControl,
    ) -> Result<SweepOutcome>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        self.run_planned_batched_in(
            BatchedDomain::Codes,
            factory,
            fault.into(),
            input,
            metric,
            batch,
            threads,
            control,
            true,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_planned_batched_in<M, F, E>(
        &self,
        domain: BatchedDomain,
        factory: F,
        spec: FaultSpec,
        input: &Tensor,
        metric: E,
        batch: usize,
        threads: usize,
        control: &SweepControl,
        catch: bool,
    ) -> Result<SweepOutcome>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        spec.model.validate()?;
        let scope = RunScope::begin();
        let fault = spec.model;
        let lifetime = spec.lifetime;
        let runs = self.runs;
        let seed = self.seed;
        let mut ledger = RunLedger::new(
            EngineKind::PlannedBatched,
            match domain {
                BatchedDomain::Weights => SweepDomain::Weights,
                BatchedDomain::Codes => SweepDomain::Codes,
            },
            seed,
            runs,
            fault.label(),
            control.resume.as_ref(),
        )?;
        let done = ledger.done_mask();
        let budget = &control.budget;
        // Cap the stack size so every worker gets at least one batch:
        // per-run metrics depend only on `(seed, run)`, so regrouping runs
        // into smaller stacks is bit-identical — but leaving workers idle
        // is pure wall-clock loss.
        let batch = batch
            .clamp(1, runs)
            .min(runs.div_ceil(threads.max(1)))
            .max(1);
        let n_batches = runs.div_ceil(batch);
        let threads = threads.clamp(1, n_batches);
        let next_batch = AtomicUsize::new(0);
        type BatchEntry = (usize, usize, BatchAttempt);
        let collected: Mutex<Vec<BatchEntry>> = Mutex::new(Vec::with_capacity(n_batches));
        rayon::scope(|s| {
            for _ in 0..threads {
                let next_batch = &next_batch;
                let collected = &collected;
                let factory = &factory;
                let metric = &metric;
                let done = &done;
                s.spawn(move || {
                    let mut model = factory();
                    // Compiled lazily on the first claimed batch so a
                    // compilation failure is attributed to a concrete run;
                    // recompiled (at most once per worker in practice) when
                    // a tail batch arrives with a smaller size.
                    let mut plan: Option<Plan> = None;
                    let mut rngs: Vec<Rng> = Vec::with_capacity(batch);
                    // Reusable per-worker staging for one realization's
                    // slice of the stacked output, so scoring metrics does
                    // not allocate per run.
                    let mut realization: Option<Tensor> = None;
                    let mut local: Vec<BatchEntry> = Vec::new();
                    loop {
                        let bi = next_batch.fetch_add(1, Ordering::Relaxed);
                        if bi >= n_batches {
                            break;
                        }
                        let start = bi * batch;
                        let bsize = batch.min(runs - start);
                        // Skip fully-accounted batches (resume) before any
                        // compile work; a partially-done batch re-runs whole
                        // — the replayed values are identical and the ledger
                        // ignores re-records.
                        if done[start..start + bsize].iter().all(|d| *d) {
                            continue;
                        }
                        if budget.interrupted().is_some() {
                            break;
                        }
                        if plan.as_ref().is_none_or(|p| p.batch() != bsize) {
                            // The first compile is unavoidable; only a
                            // size-mismatched tail batch counts as a recompile.
                            if plan.is_some() {
                                telemetry::count(telemetry::Counter::TailRecompiles, 1);
                            }
                            model.plan_end();
                            match Plan::compile_batched(&mut model, input, bsize) {
                                Ok(mut p) => {
                                    p.set_fault_lifetime(lifetime);
                                    plan = Some(p);
                                }
                                Err(e) => {
                                    local.push((start, bsize, BatchAttempt::Metrics(Err(e))));
                                    break;
                                }
                            }
                        }
                        let plan_ref = plan.as_mut().expect("plan compiled above");
                        rngs.clear();
                        rngs.extend((0..bsize).map(|i| Self::run_rng(seed, start + i)));
                        if catch {
                            match catch_unwind(AssertUnwindSafe(|| {
                                Self::simulate_planned_batch(
                                    &mut model,
                                    plan_ref,
                                    domain,
                                    fault,
                                    &mut rngs,
                                    &mut realization,
                                    metric,
                                )
                            })) {
                                Ok(r) => local.push((start, bsize, BatchAttempt::Metrics(r))),
                                Err(payload) => {
                                    local.push((
                                        start,
                                        bsize,
                                        BatchAttempt::Panicked(panic_message(payload)),
                                    ));
                                    // The panic left the model, its plan and
                                    // the staging tensor in an unknown state;
                                    // rebuild everything (the next claimed
                                    // batch recompiles lazily).
                                    plan = None;
                                    model = factory();
                                    realization = None;
                                }
                            }
                        } else {
                            local.push((
                                start,
                                bsize,
                                BatchAttempt::Metrics(Self::simulate_planned_batch(
                                    &mut model,
                                    plan_ref,
                                    domain,
                                    fault,
                                    &mut rngs,
                                    &mut realization,
                                    metric,
                                )),
                            ));
                        }
                    }
                    model.plan_end();
                    collected
                        .lock()
                        .expect("monte-carlo result lock poisoned")
                        .append(&mut local);
                });
            }
        });
        let mut collected = collected
            .into_inner()
            .expect("monte-carlo result lock poisoned");
        collected.sort_by_key(|(start, _, _)| *start);
        for (start, bsize, attempt) in collected {
            match attempt {
                BatchAttempt::Metrics(Ok(metrics)) => {
                    for (offset, metric) in metrics.into_iter().enumerate() {
                        ledger.record(start + offset, metric);
                    }
                }
                // Lowest-indexed genuine error wins (the drain is sorted).
                BatchAttempt::Metrics(Err(e)) => return Err(e),
                BatchAttempt::Panicked(message) => {
                    for run in start..start + bsize {
                        ledger.record_panic(run, message.clone());
                    }
                }
            }
        }
        Ok(ledger.finish(scope, budget))
    }

    /// Injects one batch of realizations into the batched plan's stacked
    /// faulty buffers, runs ONE fused planned forward, and scores each
    /// realization's rows of the stacked output — the inner step of the
    /// planned-batched engine. Depends only on the streams in `rngs`, not
    /// on which thread executes it.
    #[allow(clippy::too_many_arguments)]
    fn simulate_planned_batch<M: Layer + ?Sized>(
        model: &mut M,
        plan: &mut Plan,
        domain: BatchedDomain,
        fault: FaultModel,
        rngs: &mut [Rng],
        realization: &mut Option<Tensor>,
        metric: &impl Fn(&Tensor) -> Result<f32>,
    ) -> Result<Vec<f32>> {
        let bsize = rngs.len();
        match domain {
            BatchedDomain::Weights => {
                WeightFaultInjector::new_unchecked(fault).realize_plan_batch(model, rngs)?;
            }
            BatchedDomain::Codes => {
                CodeFaultInjector::new_unchecked(fault).realize_plan_batch(model, rngs)?;
            }
        }
        let out = {
            let _span = telemetry::span(telemetry::Phase::Forward);
            plan.forward(model)?
        };
        let d0 = out.dims()[0];
        if !d0.is_multiple_of(bsize) {
            return Err(NnError::Config(format!(
                "stacked output rows {d0} not divisible by batch {bsize}"
            )));
        }
        let per = out.numel() / bsize;
        let mut dims = out.dims().to_vec();
        dims[0] = d0 / bsize;
        // (Re)shape the worker's staging tensor only when the
        // per-realization shape changes (first batch, or a tail batch).
        if realization.as_ref().map(Tensor::dims) != Some(dims.as_slice()) {
            *realization = Some(Tensor::zeros(&dims));
        }
        let stage = realization.as_mut().expect("staging tensor initialized");
        let _span = telemetry::span(telemetry::Phase::Metric);
        let mut metrics = Vec::with_capacity(bsize);
        for b in 0..bsize {
            stage
                .data_mut()
                .copy_from_slice(&out.data()[b * per..(b + 1) * per]);
            metrics.push(metric(stage)?);
        }
        Ok(metrics)
    }

    /// Injects one realization into the plan's faulty buffers, runs the
    /// planned forward and scores it — the inner step of the planned engine.
    /// Depends only on `(seed, run)`, not on which thread executes it.
    fn simulate_planned<M: Layer + ?Sized>(
        model: &mut M,
        plan: &mut Plan,
        domain: BatchedDomain,
        fault: FaultModel,
        seed: u64,
        run: usize,
        metric: &impl Fn(&Tensor) -> Result<f32>,
    ) -> Result<f32> {
        let mut rng = Self::run_rng(seed, run);
        match domain {
            BatchedDomain::Weights => {
                WeightFaultInjector::new_unchecked(fault).realize_plan(model, &mut rng)?;
            }
            BatchedDomain::Codes => {
                CodeFaultInjector::new_unchecked(fault).realize_plan(model, &mut rng)?;
            }
        }
        let out = {
            let _span = telemetry::span(telemetry::Phase::Forward);
            plan.forward(model)?
        };
        let _span = telemetry::span(telemetry::Phase::Metric);
        metric(out)
    }

    /// Injects, evaluates and scores one batch of chip instances (whose
    /// stacked buffers were staged by a prior `begin_batched`) — the inner
    /// step of the batched engine. Depends only on
    /// `(seed, start..start+bsize)`, not on which thread executes it.
    #[allow(clippy::too_many_arguments)]
    fn simulate_batch<M: Layer + ?Sized>(
        model: &mut M,
        domain: BatchedDomain,
        fault: FaultModel,
        seed: u64,
        start: usize,
        bsize: usize,
        input: &Tensor,
        metric: &impl Fn(&Tensor) -> Result<f32>,
    ) -> Result<Vec<f32>> {
        let mut rngs: Vec<Rng> = (0..bsize).map(|i| Self::run_rng(seed, start + i)).collect();
        match domain {
            BatchedDomain::Weights => {
                WeightFaultInjector::new_unchecked(fault).realize_batch(model, &mut rngs)?;
            }
            BatchedDomain::Codes => {
                CodeFaultInjector::new_unchecked(fault).realize_batch(model, &mut rngs)?;
            }
        }
        let (out, shared) = {
            let _span = telemetry::span(telemetry::Phase::Forward);
            model.forward_batched(input, true, bsize, Mode::Eval)?
        };
        let _span = telemetry::span(telemetry::Phase::Metric);
        let mut metrics = Vec::with_capacity(bsize);
        if shared {
            // Degenerate case: no weighted layer diverged the realizations,
            // so every chip instance scores the same output.
            let m = metric(&out)?;
            metrics.resize(bsize, m);
        } else {
            let d0 = out.dims()[0];
            if d0 % bsize != 0 {
                return Err(NnError::Config(format!(
                    "batched output rows {d0} not divisible by batch {bsize}"
                )));
            }
            let per = out.numel() / bsize;
            let mut dims = out.dims().to_vec();
            dims[0] = d0 / bsize;
            for b in 0..bsize {
                let slice = out.data()[b * per..(b + 1) * per].to_vec();
                let realization = Tensor::from_vec(slice, &dims)?;
                metrics.push(metric(&realization)?);
            }
        }
        Ok(metrics)
    }

    /// Injects, evaluates and restores a single chip instance — the inner
    /// step of [`MonteCarloEngine::run_parallel`], kept in lockstep with the
    /// loop body of [`MonteCarloEngine::run`] (see the comment there for why
    /// they cannot literally share code). Depends only on `(seed, run)`, not
    /// on which thread executes it.
    // lint: no_alloc
    fn simulate_one<M: Layer + ?Sized>(
        model: &mut M,
        fault: FaultModel,
        seed: u64,
        run: usize,
        evaluate: impl FnOnce(&mut M) -> Result<f32>,
    ) -> Result<f32> {
        let mut rng = Self::run_rng(seed, run);
        let mut injector = WeightFaultInjector::new_unchecked(fault);
        injector.inject(model, &mut rng)?;
        // The user closure fuses forward and metric; span both together.
        let result = {
            let _span = telemetry::span(telemetry::Phase::Forward);
            evaluate(model)
        };
        // Always restore, even if evaluation failed.
        let restore_result = injector.restore(model);
        let metric = result?;
        restore_result?;
        Ok(metric)
    }

    /// Convenience sweep: runs the engine once per fault model and collects
    /// the summaries in order.
    ///
    /// # Errors
    ///
    /// Returns an error when any individual simulation fails.
    pub fn sweep<F>(
        &self,
        network: &mut dyn Layer,
        faults: &[FaultModel],
        mut evaluate: F,
    ) -> Result<Vec<MonteCarloSummary>>
    where
        F: FnMut(&mut dyn Layer) -> Result<f32>,
    {
        faults
            .iter()
            .map(|&fault| self.run(network, fault, &mut evaluate))
            .collect()
    }

    /// Runs the simulation on the fastest engine that supports the fault
    /// configuration and the network, degrading gracefully down the ladder
    /// `run_planned_batched` → `run_planned` → `run_batched` →
    /// `run_parallel` and reporting every skipped rung with a typed reason.
    ///
    /// Two kinds of capability gaps trigger a fallback:
    ///
    /// - **Lifetime**: a per-inference fault lifetime is only honored by the
    ///   planned engines (the plan re-realizes before every forward and
    ///   disables frozen-input caching); the direct batched and parallel
    ///   engines are skipped pre-flight with [`FallbackReason::Lifetime`].
    /// - **Layer support**: a layer that rejects compiled plans or batched
    ///   evaluation surfaces as [`NnError::Unsupported`], recorded as
    ///   [`FallbackReason::Unsupported`]; the ladder continues downward.
    ///   `run_parallel` at the bottom supports every layer.
    ///
    /// Per-run metrics are **bit-identical** across all rungs for every
    /// configuration two engines both support, so degrading never changes
    /// the reported statistics — only throughput. Under
    /// [`DegradationPolicy::Strict`] no fallback happens: the fastest engine
    /// runs and any error propagates loudly, preserving the pre-ladder
    /// behavior.
    ///
    /// # Errors
    ///
    /// Returns the fastest engine's error under `Strict`; under `Graceful`,
    /// propagates the first non-capability error immediately, and returns
    /// [`NnError::FaultUnsupported`] listing every rung's reason when the
    /// whole ladder is exhausted (e.g. an unplannable layer combined with a
    /// per-inference lifetime). Also fails when the fault model itself is
    /// invalid, or when any metric is non-finite.
    #[allow(clippy::too_many_arguments)]
    pub fn run_auto<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        input: &Tensor,
        metric: E,
        batch: usize,
        threads: usize,
        policy: DegradationPolicy,
    ) -> Result<LadderOutcome>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        let spec = fault.into();
        spec.model.validate()?;
        if policy == DegradationPolicy::Strict {
            let summary = self.run_planned_batched(factory, spec, input, metric, batch, threads)?;
            return Ok(LadderOutcome {
                summary,
                engine: EngineKind::PlannedBatched,
                fallbacks: Vec::new(),
            });
        }
        let mut fallbacks: Vec<FallbackStep> = Vec::new();
        for engine in [
            EngineKind::PlannedBatched,
            EngineKind::Planned,
            EngineKind::Batched,
            EngineKind::Parallel,
        ] {
            // Pre-flight: the direct engines have no fault-lifetime model
            // (their realizations outlive a forward pass), so a
            // per-inference lifetime cannot reach them.
            if spec.lifetime == FaultLifetime::PerInference
                && matches!(engine, EngineKind::Batched | EngineKind::Parallel)
            {
                telemetry::count(telemetry::Counter::LadderFallbacks, 1);
                fallbacks.push(FallbackStep {
                    engine,
                    reason: FallbackReason::Lifetime,
                });
                continue;
            }
            let result = match engine {
                EngineKind::PlannedBatched => {
                    self.run_planned_batched(&factory, spec, input, &metric, batch, threads)
                }
                EngineKind::Planned => self.run_planned(&factory, spec, input, &metric, threads),
                EngineKind::Batched => {
                    self.run_batched(&factory, spec, input, &metric, batch, threads)
                }
                EngineKind::Parallel => self.run_parallel(
                    &factory,
                    spec,
                    |m: &mut M| {
                        let out = m.forward(input, Mode::Eval)?;
                        metric(&out)
                    },
                    threads,
                ),
                EngineKind::Sequential => unreachable!("the ladder never visits run"),
            };
            match result {
                Ok(summary) => {
                    return Ok(LadderOutcome {
                        summary,
                        engine,
                        fallbacks,
                    })
                }
                // A capability gap, not a failure: record it and degrade.
                Err(NnError::Unsupported { layer, op }) => {
                    telemetry::count(telemetry::Counter::LadderFallbacks, 1);
                    fallbacks.push(FallbackStep {
                        engine,
                        reason: FallbackReason::Unsupported { layer, op },
                    });
                }
                Err(e) => return Err(e),
            }
        }
        let reasons = fallbacks
            .iter()
            .map(|step| format!("{} ({})", step.engine.name(), step.reason))
            .collect::<Vec<_>>()
            .join(", ");
        Err(NnError::fault_unsupported(
            "MonteCarloEngine::run_auto",
            format!("the fault configuration on any engine: {reasons}"),
        ))
    }

    /// The supervised counterpart of [`MonteCarloEngine::run_auto`]: the same
    /// graceful-degradation ladder, but every rung honors the
    /// [`SweepControl`] budget (deadline / cancellation), quarantines
    /// panicking or non-finite runs instead of aborting the sweep, and an
    /// interrupted sweep returns a [`SweepCheckpoint`] in
    /// [`SweepOutcome::Interrupted`].
    ///
    /// When `control.resume` carries a checkpoint, the ladder is **not**
    /// consulted: the checkpoint pins the engine that produced it (resuming
    /// on a different rung would be answering a different question about
    /// which engine's failure domains quarantined which runs), so the sweep
    /// resumes directly on `checkpoint.engine` with an empty fallback
    /// report. A checkpoint taken from one of the sequential entry points is
    /// rejected with [`CheckpointFault::Mismatch`] — `run_auto_supervised`
    /// never produces one, so being handed one is a caller bug.
    ///
    /// # Errors
    ///
    /// See [`MonteCarloEngine::run_auto`]; additionally fails with a typed
    /// [`NnError::Checkpoint`] when the resume checkpoint does not match the
    /// sweep configuration.
    #[allow(clippy::too_many_arguments)]
    pub fn run_auto_supervised<M, F, E>(
        &self,
        factory: F,
        fault: impl Into<FaultSpec>,
        input: &Tensor,
        metric: E,
        batch: usize,
        threads: usize,
        policy: DegradationPolicy,
        control: &SweepControl,
    ) -> Result<SupervisedLadderOutcome>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&Tensor) -> Result<f32> + Sync,
    {
        let spec = fault.into();
        spec.model.validate()?;
        if let Some(checkpoint) = control.resume.as_ref() {
            let engine = checkpoint.engine;
            let outcome = match engine {
                EngineKind::PlannedBatched => match checkpoint.domain {
                    SweepDomain::Weights => self.run_planned_batched_supervised(
                        factory, spec, input, metric, batch, threads, control,
                    )?,
                    SweepDomain::Codes => self.run_planned_batched_quantized_supervised(
                        factory, spec, input, metric, batch, threads, control,
                    )?,
                },
                EngineKind::Planned => match checkpoint.domain {
                    SweepDomain::Weights => {
                        self.run_planned_supervised(factory, spec, input, metric, threads, control)?
                    }
                    SweepDomain::Codes => self.run_planned_quantized_supervised(
                        factory, spec, input, metric, threads, control,
                    )?,
                },
                EngineKind::Batched => match checkpoint.domain {
                    SweepDomain::Weights => self.run_batched_supervised(
                        factory, spec, input, metric, batch, threads, control,
                    )?,
                    SweepDomain::Codes => self.run_batched_quantized_supervised(
                        factory, spec, input, metric, batch, threads, control,
                    )?,
                },
                EngineKind::Parallel => self.run_parallel_supervised(
                    factory,
                    spec,
                    |m: &mut M| {
                        let out = m.forward(input, Mode::Eval)?;
                        metric(&out)
                    },
                    threads,
                    control,
                )?,
                EngineKind::Sequential => {
                    return Err(NnError::Checkpoint(CheckpointFault::Mismatch {
                        field: "engine",
                        expected: "a ladder engine (run_auto_supervised never runs \
                                   the sequential engine)"
                            .into(),
                        got: engine.name().into(),
                    }))
                }
            };
            return Ok(SupervisedLadderOutcome {
                outcome,
                engine,
                fallbacks: Vec::new(),
            });
        }
        if policy == DegradationPolicy::Strict {
            let outcome = self.run_planned_batched_supervised(
                factory, spec, input, metric, batch, threads, control,
            )?;
            return Ok(SupervisedLadderOutcome {
                outcome,
                engine: EngineKind::PlannedBatched,
                fallbacks: Vec::new(),
            });
        }
        let mut fallbacks: Vec<FallbackStep> = Vec::new();
        for engine in [
            EngineKind::PlannedBatched,
            EngineKind::Planned,
            EngineKind::Batched,
            EngineKind::Parallel,
        ] {
            // Pre-flight: same lifetime capability gaps as the legacy ladder.
            if spec.lifetime == FaultLifetime::PerInference
                && matches!(engine, EngineKind::Batched | EngineKind::Parallel)
            {
                telemetry::count(telemetry::Counter::LadderFallbacks, 1);
                fallbacks.push(FallbackStep {
                    engine,
                    reason: FallbackReason::Lifetime,
                });
                continue;
            }
            let result = match engine {
                EngineKind::PlannedBatched => self.run_planned_batched_supervised(
                    &factory, spec, input, &metric, batch, threads, control,
                ),
                EngineKind::Planned => {
                    self.run_planned_supervised(&factory, spec, input, &metric, threads, control)
                }
                EngineKind::Batched => self.run_batched_supervised(
                    &factory, spec, input, &metric, batch, threads, control,
                ),
                EngineKind::Parallel => self.run_parallel_supervised(
                    &factory,
                    spec,
                    |m: &mut M| {
                        let out = m.forward(input, Mode::Eval)?;
                        metric(&out)
                    },
                    threads,
                    control,
                ),
                EngineKind::Sequential => unreachable!("the ladder never visits run"),
            };
            match result {
                Ok(outcome) => {
                    return Ok(SupervisedLadderOutcome {
                        outcome,
                        engine,
                        fallbacks,
                    })
                }
                // A capability gap, not a failure: record it and degrade.
                Err(NnError::Unsupported { layer, op }) => {
                    telemetry::count(telemetry::Counter::LadderFallbacks, 1);
                    fallbacks.push(FallbackStep {
                        engine,
                        reason: FallbackReason::Unsupported { layer, op },
                    });
                }
                Err(e) => return Err(e),
            }
        }
        let reasons = fallbacks
            .iter()
            .map(|step| format!("{} ({})", step.engine.name(), step.reason))
            .collect::<Vec<_>>()
            .join(", ");
        Err(NnError::fault_unsupported(
            "MonteCarloEngine::run_auto",
            format!("the fault configuration on any engine: {reasons}"),
        ))
    }
}

impl Default for MonteCarloEngine {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_nn::layer::Mode;
    use invnorm_nn::linear::Linear;
    use invnorm_nn::Sequential;
    use invnorm_tensor::Tensor;

    fn simple_net(seed: u64) -> Sequential {
        let mut rng = Rng::seed_from(seed);
        let mut net = Sequential::new();
        net.push(Box::new(Linear::new(4, 4, &mut rng)));
        net.push(Box::new(Linear::new(4, 2, &mut rng)));
        net
    }

    #[test]
    fn fault_free_simulation_has_zero_variance() {
        let mut net = simple_net(1);
        let x = Tensor::randn(&[8, 4], 0.0, 1.0, &mut Rng::seed_from(2));
        let engine = MonteCarloEngine::new(10, 42);
        let summary = engine
            .run(&mut net, FaultModel::None, |n| {
                Ok(n.forward(&x, Mode::Eval)?.sum())
            })
            .unwrap();
        assert_eq!(summary.runs(), 10);
        assert!(summary.std < 1e-6);
        assert_eq!(summary.min, summary.max);
        assert!(summary.fault_label.contains("fault-free"));
    }

    #[test]
    fn faulty_simulation_varies_and_restores_weights() {
        let mut net = simple_net(3);
        let x = Tensor::randn(&[8, 4], 0.0, 1.0, &mut Rng::seed_from(4));
        let clean_out = net.forward(&x, Mode::Eval).unwrap();
        let engine = MonteCarloEngine::new(20, 7);
        let summary = engine
            .run(
                &mut net,
                FaultModel::AdditiveVariation { sigma: 0.3 },
                |n| Ok(n.forward(&x, Mode::Eval)?.sum()),
            )
            .unwrap();
        assert!(summary.std > 0.0, "fault runs should differ");
        // Clean weights restored.
        let after = net.forward(&x, Mode::Eval).unwrap();
        assert!(clean_out.approx_eq(&after, 1e-6));
    }

    #[test]
    fn stronger_faults_cause_larger_deviation() {
        let mut net = simple_net(5);
        let x = Tensor::randn(&[16, 4], 0.0, 1.0, &mut Rng::seed_from(6));
        let clean = net.forward(&x, Mode::Eval).unwrap().mean();
        let engine = MonteCarloEngine::new(30, 9);
        let deviation = |sigma: f32, net: &mut Sequential| {
            engine
                .run(net, FaultModel::AdditiveVariation { sigma }, |n| {
                    Ok((n.forward(&x, Mode::Eval)?.mean() - clean).abs())
                })
                .unwrap()
                .mean
        };
        let weak = deviation(0.05, &mut net);
        let strong = deviation(0.8, &mut net);
        assert!(strong > weak, "strong {strong} vs weak {weak}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let x = Tensor::randn(&[8, 4], 0.0, 1.0, &mut Rng::seed_from(10));
        let run = |seed: u64| {
            let mut net = simple_net(11);
            MonteCarloEngine::new(5, seed)
                .run(
                    &mut net,
                    FaultModel::BitFlip {
                        rate: 0.05,
                        bits: 8,
                    },
                    |n| Ok(n.forward(&x, Mode::Eval)?.sum()),
                )
                .unwrap()
                .per_run
        };
        assert_eq!(run(123), run(123));
        assert_ne!(run(123), run(456));
    }

    #[test]
    fn sweep_runs_every_fault_model() {
        let mut net = simple_net(12);
        let x = Tensor::randn(&[4, 4], 0.0, 1.0, &mut Rng::seed_from(13));
        let faults = [
            FaultModel::None,
            FaultModel::AdditiveVariation { sigma: 0.2 },
            FaultModel::BitFlip { rate: 0.1, bits: 8 },
        ];
        let summaries = MonteCarloEngine::new(4, 1)
            .sweep(&mut net, &faults, |n| Ok(n.forward(&x, Mode::Eval)?.sum()))
            .unwrap();
        assert_eq!(summaries.len(), 3);
        assert_eq!(summaries[0].runs(), 4);
    }

    #[test]
    fn parallel_matches_sequential_statistics() {
        let x = Tensor::randn(&[16, 4], 0.0, 1.0, &mut Rng::seed_from(14));
        let engine = MonteCarloEngine::new(16, 77);
        let fault = FaultModel::AdditiveVariation { sigma: 0.3 };
        let mut net = simple_net(15);
        let sequential = engine
            .run(&mut net, fault, |n| Ok(n.forward(&x, Mode::Eval)?.sum()))
            .unwrap();
        let x_par = x.clone();
        let parallel = engine
            .run_parallel(
                || simple_net(15),
                fault,
                move |n| Ok(n.forward(&x_par, Mode::Eval)?.sum()),
                4,
            )
            .unwrap();
        assert_eq!(parallel.runs(), sequential.runs());
        // Same seeds and same model weights → per-run metrics bit-identical
        // to the sequential engine, in run order, regardless of which thread
        // executed each chip instance.
        assert_eq!(parallel.per_run, sequential.per_run);
        assert_eq!(parallel.mean.to_bits(), sequential.mean.to_bits());
        assert_eq!(parallel.std.to_bits(), sequential.std.to_bits());
    }

    #[test]
    fn parallel_is_bit_identical_for_every_thread_count() {
        let x = Tensor::randn(&[8, 4], 0.0, 1.0, &mut Rng::seed_from(21));
        let engine = MonteCarloEngine::new(13, 99);
        let fault = FaultModel::BitFlip {
            rate: 0.08,
            bits: 8,
        };
        let run_with = |threads: usize| {
            let x = x.clone();
            engine
                .run_parallel(
                    || simple_net(22),
                    fault,
                    move |n: &mut Sequential| Ok(n.forward(&x, Mode::Eval)?.sum()),
                    threads,
                )
                .unwrap()
                .per_run
        };
        let reference = run_with(1);
        for threads in [2, 3, 7, 13] {
            let got = run_with(threads);
            let same = reference
                .iter()
                .zip(got.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same && got.len() == reference.len(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_error_reports_lowest_failing_run() {
        let engine = MonteCarloEngine::new(8, 5);
        let result = engine.run_parallel(
            || simple_net(23),
            FaultModel::None,
            |_n: &mut Sequential| Err(NnError::Config("boom".into())),
            4,
        );
        assert!(result.is_err());
        // Every instance yields a non-finite metric; the reported error must
        // name the lowest-indexed instance (run 0) no matter which worker
        // finished first — the documented error-ordering contract.
        let result = engine.run_parallel(
            || simple_net(23),
            FaultModel::AdditiveVariation { sigma: 0.1 },
            |_n: &mut Sequential| Ok(f32::NAN),
            4,
        );
        let err = result.unwrap_err().to_string();
        assert!(err.contains("on run 0"), "unexpected error: {err}");
    }

    #[test]
    fn evaluation_error_still_restores_weights() {
        let mut net = simple_net(16);
        let x = Tensor::randn(&[4, 4], 0.0, 1.0, &mut Rng::seed_from(17));
        let clean = net.forward(&x, Mode::Eval).unwrap();
        let engine = MonteCarloEngine::new(3, 5);
        let mut calls = 0;
        let result = engine.run(
            &mut net,
            FaultModel::AdditiveVariation { sigma: 0.5 },
            |_n| {
                calls += 1;
                Err(NnError::Config("simulated evaluation failure".into()))
            },
        );
        assert!(result.is_err());
        assert_eq!(calls, 1);
        let after = net.forward(&x, Mode::Eval).unwrap();
        assert!(clean.approx_eq(&after, 1e-6));
    }

    #[test]
    fn non_finite_metric_is_rejected() {
        let mut net = simple_net(18);
        let engine = MonteCarloEngine::new(2, 5);
        let result = engine.run(&mut net, FaultModel::None, |_n| Ok(f32::NAN));
        assert!(result.is_err());
    }

    fn paired_float_and_quantized_nets(seed: u64) -> (Sequential, Sequential) {
        use invnorm_nn::quantized::QuantizedLinear;
        let mut rng = Rng::seed_from(seed);
        let l1 = Linear::new(16, 12, &mut rng);
        let l2 = Linear::new(12, 4, &mut rng);
        let q1 = QuantizedLinear::from_linear(&l1, 8).unwrap();
        let q2 = QuantizedLinear::from_linear(&l2, 8).unwrap();
        let mut fnet = Sequential::new();
        fnet.push(Box::new(l1));
        fnet.push(Box::new(l2));
        let mut qnet = Sequential::new();
        qnet.push(Box::new(q1));
        qnet.push(Box::new(q2));
        (fnet, qnet)
    }

    #[test]
    fn quantized_run_reproduces_float_path_within_quantization_tolerance() {
        let (mut fnet, mut qnet) = paired_float_and_quantized_nets(40);
        let x = Tensor::randn(&[16, 16], 0.0, 1.0, &mut Rng::seed_from(41));
        // Fault-free: the integer path must track the float path closely.
        let clean_f = fnet.forward(&x, Mode::Eval).unwrap();
        let clean_q = qnet.forward(&x, Mode::Eval).unwrap();
        let quant_err = clean_f.sub(&clean_q).unwrap().abs().max();
        let out_scale = clean_f.abs().max();
        assert!(
            quant_err <= 0.05 * out_scale,
            "quantization error {quant_err} vs output scale {out_scale}"
        );
        // Under bit-flip faults, the quantized engine (faults on codes,
        // integer forward) must reproduce the f32 engine's accuracy metric —
        // mean absolute deviation from each path's own clean output — to
        // within quantization tolerance.
        let engine = MonteCarloEngine::new(24, 7);
        let fault = FaultModel::BitFlip {
            rate: 0.03,
            bits: 8,
        };
        let cf = clean_f.clone();
        let float_summary = engine
            .run(&mut fnet, fault, |n| {
                Ok(n.forward(&x, Mode::Eval)?.sub(&cf)?.abs().mean())
            })
            .unwrap();
        let cq = clean_q.clone();
        let quant_summary = engine
            .run_quantized(&mut qnet, fault, |n| {
                Ok(n.forward(&x, Mode::Eval)?.sub(&cq)?.abs().mean())
            })
            .unwrap();
        assert!(float_summary.mean > 0.0 && quant_summary.mean > 0.0);
        let diff = (float_summary.mean - quant_summary.mean).abs();
        let scale = float_summary.mean.max(quant_summary.mean);
        assert!(
            diff <= 0.5 * scale,
            "float-path mean {} vs quantized-path mean {} (diff {diff})",
            float_summary.mean,
            quant_summary.mean
        );
        // The quantized engine restored the clean codes.
        let after = qnet.forward(&x, Mode::Eval).unwrap();
        assert!(clean_q.approx_eq(&after, 0.0));
    }

    #[test]
    fn quantized_run_is_deterministic_and_rejects_non_finite() {
        let run_means = |seed: u64| {
            let (_, mut qnet) = paired_float_and_quantized_nets(42);
            let x = Tensor::randn(&[4, 16], 0.0, 1.0, &mut Rng::seed_from(43));
            MonteCarloEngine::new(6, seed)
                .run_quantized(&mut qnet, FaultModel::StuckAt { rate: 0.2 }, |n| {
                    Ok(n.forward(&x, Mode::Eval)?.sum())
                })
                .unwrap()
                .per_run
        };
        assert_eq!(run_means(9), run_means(9));
        assert_ne!(run_means(9), run_means(10));
        let (_, mut qnet) = paired_float_and_quantized_nets(42);
        let result = MonteCarloEngine::new(2, 1)
            .run_quantized(&mut qnet, FaultModel::None, |_n| Ok(f32::NAN));
        assert!(result.is_err());
    }

    /// All eight fault models of the catalogue, at strengths that actually
    /// perturb something.
    fn all_fault_models() -> [FaultModel; 8] {
        [
            FaultModel::None,
            FaultModel::AdditiveVariation { sigma: 0.3 },
            FaultModel::MultiplicativeVariation { sigma: 0.2 },
            FaultModel::UniformNoise { strength: 0.25 },
            FaultModel::BitFlip {
                rate: 0.05,
                bits: 8,
            },
            FaultModel::BinaryBitFlip { rate: 0.1 },
            FaultModel::StuckAt { rate: 0.15 },
            FaultModel::Drift {
                nu: 0.05,
                time_ratio: 100.0,
            },
        ]
    }

    /// An MLP with a normalization layer in the middle: the norm's rank-1
    /// affine parameters shift the global parameter indices, exercising the
    /// index re-basing that keeps batched RNG streams aligned with the
    /// sequential injector.
    fn mlp_with_norm(seed: u64) -> Sequential {
        use invnorm_nn::activation::Relu;
        use invnorm_nn::norm::GroupNorm;
        let mut rng = Rng::seed_from(seed);
        Sequential::new()
            .with(Box::new(Linear::new(8, 16, &mut rng)))
            .with(Box::new(GroupNorm::layer_norm(16)))
            .with(Box::new(Relu::new()))
            .with(Box::new(Linear::new(16, 4, &mut rng)))
    }

    #[test]
    fn batched_is_bit_identical_to_sequential_for_all_fault_models() {
        let x = Tensor::randn(&[6, 8], 0.0, 1.0, &mut Rng::seed_from(50));
        let engine = MonteCarloEngine::new(10, 1234);
        for fault in all_fault_models() {
            let mut net = mlp_with_norm(51);
            let xc = x.clone();
            let sequential = engine
                .run(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
                .unwrap();
            for batch in [1usize, 3, 10] {
                for threads in [1usize, 4] {
                    let batched = engine
                        .run_batched(
                            || mlp_with_norm(51),
                            fault,
                            &x,
                            |out| Ok(out.sum()),
                            batch,
                            threads,
                        )
                        .unwrap();
                    assert_eq!(batched.runs(), sequential.runs());
                    let identical = sequential
                        .per_run
                        .iter()
                        .zip(batched.per_run.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(
                        identical,
                        "{fault:?} batch={batch} threads={threads}: {:?} vs {:?}",
                        sequential.per_run, batched.per_run
                    );
                    assert_eq!(batched.mean.to_bits(), sequential.mean.to_bits());
                    assert_eq!(batched.std.to_bits(), sequential.std.to_bits());
                }
            }
        }
    }

    fn small_cnn(seed: u64) -> Sequential {
        use invnorm_nn::activation::Relu;
        use invnorm_nn::conv::Conv2d;
        use invnorm_nn::pool::MaxPool2d;
        use invnorm_nn::reshape::Flatten;
        let mut rng = Rng::seed_from(seed);
        Sequential::new()
            .with(Box::new(Conv2d::new(2, 4, 3, 1, 1, &mut rng)))
            .with(Box::new(Relu::new()))
            .with(Box::new(MaxPool2d::new(2)))
            .with(Box::new(Conv2d::new(4, 6, 3, 1, 1, &mut rng)))
            .with(Box::new(Relu::new()))
            .with(Box::new(Flatten::new()))
            .with(Box::new(Linear::new(6 * 4 * 4, 3, &mut rng)))
    }

    #[test]
    fn batched_cnn_is_bit_identical_to_sequential() {
        let x = Tensor::randn(&[3, 2, 8, 8], 0.0, 1.0, &mut Rng::seed_from(60));
        let engine = MonteCarloEngine::new(9, 77);
        for fault in [
            FaultModel::AdditiveVariation { sigma: 0.2 },
            FaultModel::StuckAt { rate: 0.1 },
        ] {
            let mut net = small_cnn(61);
            let xc = x.clone();
            let sequential = engine
                .run(&mut net, fault, |n| {
                    Ok(n.forward(&xc, Mode::Eval)?.abs().mean())
                })
                .unwrap();
            for (batch, threads) in [(4usize, 1usize), (3, 4), (9, 2)] {
                let batched = engine
                    .run_batched(
                        || small_cnn(61),
                        fault,
                        &x,
                        |out| Ok(out.abs().mean()),
                        batch,
                        threads,
                    )
                    .unwrap();
                let identical = sequential
                    .per_run
                    .iter()
                    .zip(batched.per_run.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(identical, "{fault:?} batch={batch} threads={threads}");
            }
        }
    }

    #[test]
    fn batched_residual_block_is_bit_identical_to_sequential() {
        use invnorm_nn::activation::Relu;
        use invnorm_nn::Residual;
        let build = |seed: u64| -> Sequential {
            let mut rng = Rng::seed_from(seed);
            let main = Sequential::new()
                .with(Box::new(Linear::new(6, 6, &mut rng)))
                .with(Box::new(Relu::new()));
            Sequential::new()
                .with(Box::new(
                    Residual::new(main).with_post(Box::new(Relu::new())),
                ))
                .with(Box::new(Linear::new(6, 2, &mut rng)))
        };
        let x = Tensor::randn(&[4, 6], 0.0, 1.0, &mut Rng::seed_from(70));
        let engine = MonteCarloEngine::new(8, 99);
        let fault = FaultModel::AdditiveVariation { sigma: 0.25 };
        let mut net = build(71);
        let xc = x.clone();
        let sequential = engine
            .run(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
            .unwrap();
        let batched = engine
            .run_batched(|| build(71), fault, &x, |out| Ok(out.sum()), 3, 2)
            .unwrap();
        let identical = sequential
            .per_run
            .iter()
            .zip(batched.per_run.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(
            identical,
            "{:?} vs {:?}",
            sequential.per_run, batched.per_run
        );
    }

    fn quantized_net(seed: u64) -> Sequential {
        use invnorm_nn::activation::Relu;
        use invnorm_nn::quantized::QuantizedLinear;
        let mut rng = Rng::seed_from(seed);
        let l1 = Linear::new(12, 10, &mut rng);
        let l2 = Linear::new(10, 4, &mut rng);
        Sequential::new()
            .with(Box::new(QuantizedLinear::from_linear(&l1, 8).unwrap()))
            .with(Box::new(Relu::new()))
            .with(Box::new(QuantizedLinear::from_linear(&l2, 6).unwrap()))
    }

    #[test]
    fn batched_quantized_is_bit_identical_to_sequential_for_all_fault_models() {
        let x = Tensor::randn(&[5, 12], 0.0, 1.0, &mut Rng::seed_from(80));
        let engine = MonteCarloEngine::new(10, 4321);
        for fault in all_fault_models() {
            let mut net = quantized_net(81);
            let xc = x.clone();
            let sequential = engine
                .run_quantized(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
                .unwrap();
            for (batch, threads) in [(1usize, 1usize), (3, 4), (10, 2)] {
                let batched = engine
                    .run_batched_quantized(
                        || quantized_net(81),
                        fault,
                        &x,
                        |out| Ok(out.sum()),
                        batch,
                        threads,
                    )
                    .unwrap();
                // Same streams, same integer GEMM, same dequantization
                // expression: the quantized batched path is not merely
                // within quantization tolerance — it is bit-identical.
                let identical = sequential
                    .per_run
                    .iter()
                    .zip(batched.per_run.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(identical, "{fault:?} batch={batch} threads={threads}");
            }
        }
    }

    #[test]
    fn planned_is_bit_identical_to_sequential_for_all_fault_models() {
        let x = Tensor::randn(&[6, 8], 0.0, 1.0, &mut Rng::seed_from(150));
        let engine = MonteCarloEngine::new(10, 1234);
        for fault in all_fault_models() {
            let mut net = mlp_with_norm(151);
            let xc = x.clone();
            let sequential = engine
                .run(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
                .unwrap();
            for threads in [1usize, 4] {
                let planned = engine
                    .run_planned(
                        || mlp_with_norm(151),
                        fault,
                        &x,
                        |out| Ok(out.sum()),
                        threads,
                    )
                    .unwrap();
                assert_eq!(planned.runs(), sequential.runs());
                let identical = sequential
                    .per_run
                    .iter()
                    .zip(planned.per_run.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(
                    identical,
                    "{fault:?} threads={threads}: {:?} vs {:?}",
                    sequential.per_run, planned.per_run
                );
                assert_eq!(planned.mean.to_bits(), sequential.mean.to_bits());
                assert_eq!(planned.std.to_bits(), sequential.std.to_bits());
            }
        }
    }

    #[test]
    fn planned_cnn_and_residual_are_bit_identical_to_sequential() {
        let x = Tensor::randn(&[3, 2, 8, 8], 0.0, 1.0, &mut Rng::seed_from(160));
        let engine = MonteCarloEngine::new(9, 77);
        for fault in [
            FaultModel::AdditiveVariation { sigma: 0.2 },
            FaultModel::StuckAt { rate: 0.1 },
        ] {
            let mut net = small_cnn(161);
            let xc = x.clone();
            let sequential = engine
                .run(&mut net, fault, |n| {
                    Ok(n.forward(&xc, Mode::Eval)?.abs().mean())
                })
                .unwrap();
            for threads in [1usize, 4] {
                let planned = engine
                    .run_planned(
                        || small_cnn(161),
                        fault,
                        &x,
                        |out| Ok(out.abs().mean()),
                        threads,
                    )
                    .unwrap();
                let identical = sequential
                    .per_run
                    .iter()
                    .zip(planned.per_run.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(identical, "{fault:?} threads={threads}");
            }
        }

        // Residual block with projection-free skip + post activation.
        use invnorm_nn::activation::Relu;
        use invnorm_nn::Residual;
        let build = |seed: u64| -> Sequential {
            let mut rng = Rng::seed_from(seed);
            let main = Sequential::new()
                .with(Box::new(Linear::new(6, 6, &mut rng)))
                .with(Box::new(Relu::new()));
            Sequential::new()
                .with(Box::new(
                    Residual::new(main).with_post(Box::new(Relu::new())),
                ))
                .with(Box::new(Linear::new(6, 2, &mut rng)))
        };
        let x = Tensor::randn(&[4, 6], 0.0, 1.0, &mut Rng::seed_from(162));
        let fault = FaultModel::AdditiveVariation { sigma: 0.25 };
        let engine = MonteCarloEngine::new(8, 99);
        let mut net = build(163);
        let xc = x.clone();
        let sequential = engine
            .run(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
            .unwrap();
        let planned = engine
            .run_planned(|| build(163), fault, &x, |out| Ok(out.sum()), 2)
            .unwrap();
        let identical = sequential
            .per_run
            .iter()
            .zip(planned.per_run.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "residual planned diverged");
    }

    #[test]
    fn planned_quantized_is_bit_identical_to_sequential_for_all_fault_models() {
        let x = Tensor::randn(&[5, 12], 0.0, 1.0, &mut Rng::seed_from(170));
        let engine = MonteCarloEngine::new(10, 4321);
        for fault in all_fault_models() {
            let mut net = quantized_net(171);
            let xc = x.clone();
            let sequential = engine
                .run_quantized(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
                .unwrap();
            for threads in [1usize, 4] {
                let planned = engine
                    .run_planned_quantized(
                        || quantized_net(171),
                        fault,
                        &x,
                        |out| Ok(out.sum()),
                        threads,
                    )
                    .unwrap();
                let identical = sequential
                    .per_run
                    .iter()
                    .zip(planned.per_run.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(identical, "{fault:?} threads={threads}");
            }
        }
    }

    #[test]
    fn planned_batched_is_bit_identical_to_sequential_for_all_fault_models() {
        let x = Tensor::randn(&[6, 8], 0.0, 1.0, &mut Rng::seed_from(250));
        let engine = MonteCarloEngine::new(10, 1234);
        for fault in all_fault_models() {
            let mut net = mlp_with_norm(251);
            let xc = x.clone();
            let sequential = engine
                .run(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
                .unwrap();
            // batch = runs exercises the single-batch case; 3 leaves a tail
            // batch of 1 (per-worker plan recompilation); 1 degenerates to
            // the planned engine.
            for batch in [1usize, 3, 10] {
                for threads in [1usize, 4] {
                    let fused = engine
                        .run_planned_batched(
                            || mlp_with_norm(251),
                            fault,
                            &x,
                            |out| Ok(out.sum()),
                            batch,
                            threads,
                        )
                        .unwrap();
                    assert_eq!(fused.runs(), sequential.runs());
                    let identical = sequential
                        .per_run
                        .iter()
                        .zip(fused.per_run.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(
                        identical,
                        "{fault:?} batch={batch} threads={threads}: {:?} vs {:?}",
                        sequential.per_run, fused.per_run
                    );
                    assert_eq!(fused.mean.to_bits(), sequential.mean.to_bits());
                    assert_eq!(fused.std.to_bits(), sequential.std.to_bits());
                }
            }
        }
    }

    #[test]
    fn planned_batched_cnn_and_residual_are_bit_identical_to_sequential() {
        let x = Tensor::randn(&[3, 2, 8, 8], 0.0, 1.0, &mut Rng::seed_from(260));
        let engine = MonteCarloEngine::new(9, 77);
        for fault in [
            FaultModel::AdditiveVariation { sigma: 0.2 },
            FaultModel::StuckAt { rate: 0.1 },
            FaultModel::Drift {
                nu: 0.05,
                time_ratio: 100.0,
            },
        ] {
            let mut net = small_cnn(261);
            let xc = x.clone();
            let sequential = engine
                .run(&mut net, fault, |n| {
                    Ok(n.forward(&xc, Mode::Eval)?.abs().mean())
                })
                .unwrap();
            for (batch, threads) in [(4usize, 1usize), (3, 4), (9, 2)] {
                let fused = engine
                    .run_planned_batched(
                        || small_cnn(261),
                        fault,
                        &x,
                        |out| Ok(out.abs().mean()),
                        batch,
                        threads,
                    )
                    .unwrap();
                let identical = sequential
                    .per_run
                    .iter()
                    .zip(fused.per_run.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(identical, "{fault:?} batch={batch} threads={threads}");
            }
        }

        // Residual block (identity skip + post activation) on the stacked
        // edges.
        use invnorm_nn::activation::Relu;
        use invnorm_nn::Residual;
        let build = |seed: u64| -> Sequential {
            let mut rng = Rng::seed_from(seed);
            let main = Sequential::new()
                .with(Box::new(Linear::new(6, 6, &mut rng)))
                .with(Box::new(Relu::new()));
            Sequential::new()
                .with(Box::new(
                    Residual::new(main).with_post(Box::new(Relu::new())),
                ))
                .with(Box::new(Linear::new(6, 2, &mut rng)))
        };
        let x = Tensor::randn(&[4, 6], 0.0, 1.0, &mut Rng::seed_from(262));
        let fault = FaultModel::AdditiveVariation { sigma: 0.25 };
        let engine = MonteCarloEngine::new(8, 99);
        let mut net = build(263);
        let xc = x.clone();
        let sequential = engine
            .run(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
            .unwrap();
        let fused = engine
            .run_planned_batched(|| build(263), fault, &x, |out| Ok(out.sum()), 3, 2)
            .unwrap();
        let identical = sequential
            .per_run
            .iter()
            .zip(fused.per_run.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "residual planned-batched diverged");
    }

    #[test]
    fn planned_batched_quantized_is_bit_identical_to_sequential_for_all_fault_models() {
        let x = Tensor::randn(&[5, 12], 0.0, 1.0, &mut Rng::seed_from(270));
        let engine = MonteCarloEngine::new(10, 4321);
        for fault in all_fault_models() {
            let mut net = quantized_net(271);
            let xc = x.clone();
            let sequential = engine
                .run_quantized(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
                .unwrap();
            for (batch, threads) in [(1usize, 1usize), (3, 4), (10, 2)] {
                let fused = engine
                    .run_planned_batched_quantized(
                        || quantized_net(271),
                        fault,
                        &x,
                        |out| Ok(out.sum()),
                        batch,
                        threads,
                    )
                    .unwrap();
                let identical = sequential
                    .per_run
                    .iter()
                    .zip(fused.per_run.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(identical, "{fault:?} batch={batch} threads={threads}");
            }
        }
    }

    #[test]
    fn planned_batched_errors_are_reported_like_the_other_engines() {
        use invnorm_nn::lstm::Lstm;
        let engine = MonteCarloEngine::new(6, 5);
        let x = Tensor::randn(&[4, 8], 0.0, 1.0, &mut Rng::seed_from(280));
        // Metric failure.
        let result = engine.run_planned_batched(
            || mlp_with_norm(281),
            FaultModel::None,
            &x,
            |_out| Err(NnError::Config("boom".into())),
            2,
            2,
        );
        assert!(result.is_err());
        // Non-finite metric names the lowest failing run.
        let err = engine
            .run_planned_batched(
                || mlp_with_norm(281),
                FaultModel::AdditiveVariation { sigma: 0.1 },
                &x,
                |_out| Ok(f32::NAN),
                2,
                2,
            )
            .unwrap_err()
            .to_string();
        assert!(err.contains("on run 0"), "unexpected error: {err}");
        // Unsupported layers are rejected loudly at compile.
        let build = || -> Sequential {
            let mut rng = Rng::seed_from(282);
            Sequential::new().with(Box::new(Lstm::new(4, 6, false, &mut rng)))
        };
        let xl = Tensor::randn(&[2, 5, 4], 0.0, 1.0, &mut Rng::seed_from(283));
        let err = engine
            .run_planned_batched(
                build,
                FaultModel::AdditiveVariation { sigma: 0.1 },
                &xl,
                |out| Ok(out.sum()),
                2,
                1,
            )
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("compiled plans") && err.contains("Lstm"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn planned_rejects_unsupported_layers_loudly() {
        use invnorm_nn::lstm::Lstm;
        let build = || -> Sequential {
            let mut rng = Rng::seed_from(180);
            Sequential::new().with(Box::new(Lstm::new(4, 6, false, &mut rng)))
        };
        let x = Tensor::randn(&[2, 5, 4], 0.0, 1.0, &mut Rng::seed_from(181));
        let engine = MonteCarloEngine::new(4, 7);
        let err = engine
            .run_planned(
                build,
                FaultModel::AdditiveVariation { sigma: 0.1 },
                &x,
                |out| Ok(out.sum()),
                1,
            )
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("compiled plans") && err.contains("Lstm"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn planned_metric_errors_and_non_finite_metrics_are_reported() {
        let engine = MonteCarloEngine::new(6, 5);
        let x = Tensor::randn(&[4, 8], 0.0, 1.0, &mut Rng::seed_from(190));
        let result = engine.run_planned(
            || mlp_with_norm(191),
            FaultModel::None,
            &x,
            |_out| Err(NnError::Config("boom".into())),
            2,
        );
        assert!(result.is_err());
        let err = engine
            .run_planned(
                || mlp_with_norm(191),
                FaultModel::AdditiveVariation { sigma: 0.1 },
                &x,
                |_out| Ok(f32::NAN),
                2,
            )
            .unwrap_err()
            .to_string();
        assert!(err.contains("on run 0"), "unexpected error: {err}");
    }

    #[test]
    fn batched_rejects_unsupported_layers_loudly() {
        use invnorm_nn::lstm::Lstm;
        let build = || -> Sequential {
            let mut rng = Rng::seed_from(90);
            Sequential::new().with(Box::new(Lstm::new(4, 6, false, &mut rng)))
        };
        let x = Tensor::randn(&[2, 5, 4], 0.0, 1.0, &mut Rng::seed_from(91));
        let engine = MonteCarloEngine::new(4, 7);
        let err = engine
            .run_batched(
                build,
                FaultModel::AdditiveVariation { sigma: 0.1 },
                &x,
                |out| Ok(out.sum()),
                2,
                1,
            )
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("batched evaluation"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn batched_metric_errors_and_non_finite_metrics_are_reported() {
        let engine = MonteCarloEngine::new(6, 5);
        let x = Tensor::randn(&[4, 8], 0.0, 1.0, &mut Rng::seed_from(95));
        let result = engine.run_batched(
            || mlp_with_norm(96),
            FaultModel::None,
            &x,
            |_out| Err(NnError::Config("boom".into())),
            2,
            2,
        );
        assert!(result.is_err());
        let err = engine
            .run_batched(
                || mlp_with_norm(96),
                FaultModel::AdditiveVariation { sigma: 0.1 },
                &x,
                |_out| Ok(f32::NAN),
                2,
                2,
            )
            .unwrap_err()
            .to_string();
        assert!(err.contains("on run 0"), "unexpected error: {err}");
    }

    #[test]
    fn run_count_is_at_least_one() {
        assert_eq!(MonteCarloEngine::new(0, 1).runs(), 1);
        assert_eq!(MonteCarloEngine::paper_default().runs(), 100);
        assert_eq!(MonteCarloEngine::default().runs(), 100);
    }

    fn structured_fault_models() -> [FaultModel; 3] {
        use crate::crossbar::TileShape;
        use crate::fault::LineOrientation;
        [
            FaultModel::LineDefect {
                orientation: LineOrientation::Row,
                rate: 0.25,
                tile: TileShape { rows: 4, cols: 4 },
            },
            FaultModel::LineDefect {
                orientation: LineOrientation::Col,
                rate: 0.25,
                tile: TileShape { rows: 3, cols: 5 },
            },
            FaultModel::CorrelatedDrift {
                nu: 0.08,
                time_ratio: 100.0,
                sigma_nu: 0.4,
                tile: TileShape { rows: 4, cols: 4 },
            },
        ]
    }

    /// The tentpole guarantee: structured topologies (whole stuck lines,
    /// per-tile correlated drift) run on every engine of the ladder with
    /// per-run metrics bit-identical to the sequential reference, for every
    /// thread count — on a norm-bearing MLP and a CNN.
    #[test]
    fn structured_faults_are_bit_identical_across_all_engines() {
        type NetCase = (fn(u64) -> Sequential, u64, &'static [usize]);
        let engine = MonteCarloEngine::new(8, 2024);
        let nets: [NetCase; 2] = [
            (mlp_with_norm, 211, &[5, 8]),
            (small_cnn, 212, &[2, 2, 8, 8]),
        ];
        for (build, seed, dims) in nets {
            let x = Tensor::randn(dims, 0.0, 1.0, &mut Rng::seed_from(seed ^ 0xF00D));
            for fault in structured_fault_models() {
                let mut net = build(seed);
                let xc = x.clone();
                let sequential = engine
                    .run(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
                    .unwrap();
                for threads in [1usize, 4] {
                    let xc = x.clone();
                    let parallel = engine
                        .run_parallel(
                            || build(seed),
                            fault,
                            |m: &mut Sequential| Ok(m.forward(&xc, Mode::Eval)?.sum()),
                            threads,
                        )
                        .unwrap();
                    let batched = engine
                        .run_batched(|| build(seed), fault, &x, |out| Ok(out.sum()), 3, threads)
                        .unwrap();
                    let planned = engine
                        .run_planned(|| build(seed), fault, &x, |out| Ok(out.sum()), threads)
                        .unwrap();
                    let planned_batched = engine
                        .run_planned_batched(
                            || build(seed),
                            fault,
                            &x,
                            |out| Ok(out.sum()),
                            3,
                            threads,
                        )
                        .unwrap();
                    for (name, summary) in [
                        ("run_parallel", &parallel),
                        ("run_batched", &batched),
                        ("run_planned", &planned),
                        ("run_planned_batched", &planned_batched),
                    ] {
                        let identical = sequential
                            .per_run
                            .iter()
                            .zip(summary.per_run.iter())
                            .all(|(a, b)| a.to_bits() == b.to_bits());
                        assert!(
                            identical,
                            "{fault:?} {name} threads={threads}: {:?} vs {:?}",
                            sequential.per_run, summary.per_run
                        );
                    }
                }
            }
        }
    }

    /// Code-domain counterpart: structured faults land on the i8 codes and
    /// the quantized engines stay bit-identical to `run_quantized`.
    #[test]
    fn structured_code_faults_are_bit_identical_across_quantized_engines() {
        let x = Tensor::randn(&[5, 12], 0.0, 1.0, &mut Rng::seed_from(221));
        let engine = MonteCarloEngine::new(8, 4025);
        for fault in structured_fault_models() {
            let mut net = quantized_net(222);
            let xc = x.clone();
            let sequential = engine
                .run_quantized(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
                .unwrap();
            for threads in [1usize, 4] {
                let batched = engine
                    .run_batched_quantized(
                        || quantized_net(222),
                        fault,
                        &x,
                        |out| Ok(out.sum()),
                        3,
                        threads,
                    )
                    .unwrap();
                let planned = engine
                    .run_planned_quantized(
                        || quantized_net(222),
                        fault,
                        &x,
                        |out| Ok(out.sum()),
                        threads,
                    )
                    .unwrap();
                let planned_batched = engine
                    .run_planned_batched_quantized(
                        || quantized_net(222),
                        fault,
                        &x,
                        |out| Ok(out.sum()),
                        3,
                        threads,
                    )
                    .unwrap();
                for (name, summary) in [
                    ("run_batched_quantized", &batched),
                    ("run_planned_quantized", &planned),
                    ("run_planned_batched_quantized", &planned_batched),
                ] {
                    let identical = sequential
                        .per_run
                        .iter()
                        .zip(summary.per_run.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(identical, "{fault:?} {name} threads={threads}");
                }
            }
        }
    }

    /// The lifetime protocol at the plan level: under `PerInference` the
    /// harness re-realizes before every forward from one continuing stream,
    /// so consecutive forwards of the same chip instance differ; under
    /// `Static` one realization is evaluated repeatedly and every forward is
    /// bit-identical.
    #[test]
    fn per_inference_lifetime_redraws_noise_between_forwards() {
        let fault = FaultModel::AdditiveVariation { sigma: 0.2 };
        let x = Tensor::randn(&[4, 8], 0.0, 1.0, &mut Rng::seed_from(231));

        let mut net = mlp_with_norm(232);
        let mut plan = Plan::compile(&mut net, &x).unwrap();
        plan.set_fault_lifetime(FaultLifetime::PerInference);
        assert_eq!(plan.fault_lifetime(), FaultLifetime::PerInference);
        let mut rng = Rng::seed_from(7);
        WeightFaultInjector::new_unchecked(fault)
            .realize_plan(&mut net, &mut rng)
            .unwrap();
        let out1 = plan.forward(&mut net).unwrap().clone();
        WeightFaultInjector::new_unchecked(fault)
            .realize_plan(&mut net, &mut rng)
            .unwrap();
        let out2 = plan.forward(&mut net).unwrap().clone();
        net.plan_end();
        assert!(
            !out1.approx_eq(&out2, 1e-6),
            "per-inference realizations must differ between forwards"
        );

        let mut net = mlp_with_norm(232);
        let mut plan = Plan::compile(&mut net, &x).unwrap();
        assert_eq!(plan.fault_lifetime(), FaultLifetime::Static);
        let mut rng = Rng::seed_from(7);
        WeightFaultInjector::new_unchecked(fault)
            .realize_plan(&mut net, &mut rng)
            .unwrap();
        let a = plan.forward(&mut net).unwrap().clone();
        let b = plan.forward(&mut net).unwrap().clone();
        net.plan_end();
        let identical = a
            .data()
            .iter()
            .zip(b.data().iter())
            .all(|(p, q)| p.to_bits() == q.to_bits());
        assert!(identical, "static realizations must repeat bit-identically");
    }

    /// The documented reproducibility boundary: the Monte-Carlo engines run
    /// exactly one forward per chip instance, so a per-inference lifetime
    /// yields per-run metrics bit-identical to the static lifetime on the
    /// planned engines — and the non-frozen execution path it switches on is
    /// bit-identical to the frozen one.
    #[test]
    fn per_inference_matches_static_for_single_forward_metrics() {
        let x = Tensor::randn(&[6, 8], 0.0, 1.0, &mut Rng::seed_from(241));
        let engine = MonteCarloEngine::new(8, 3003);
        for fault in [
            FaultModel::AdditiveVariation { sigma: 0.3 },
            structured_fault_models()[0],
            structured_fault_models()[2],
        ] {
            let per_inference = FaultSpec::per_inference(fault);
            for threads in [1usize, 4] {
                let st = engine
                    .run_planned(|| mlp_with_norm(242), fault, &x, |o| Ok(o.sum()), threads)
                    .unwrap();
                let pi = engine
                    .run_planned(
                        || mlp_with_norm(242),
                        per_inference,
                        &x,
                        |o| Ok(o.sum()),
                        threads,
                    )
                    .unwrap();
                let st_b = engine
                    .run_planned_batched(
                        || mlp_with_norm(242),
                        fault,
                        &x,
                        |o| Ok(o.sum()),
                        3,
                        threads,
                    )
                    .unwrap();
                let pi_b = engine
                    .run_planned_batched(
                        || mlp_with_norm(242),
                        per_inference,
                        &x,
                        |o| Ok(o.sum()),
                        3,
                        threads,
                    )
                    .unwrap();
                for (name, a, b) in [
                    ("run_planned", &st, &pi),
                    ("run_planned_batched", &st_b, &pi_b),
                    ("static planned vs planned_batched", &st, &st_b),
                ] {
                    let identical = a
                        .per_run
                        .iter()
                        .zip(b.per_run.iter())
                        .all(|(p, q)| p.to_bits() == q.to_bits());
                    assert!(identical, "{fault:?} {name} threads={threads}");
                }
            }
        }
    }

    /// The direct engines have no fault-lifetime model: a per-inference
    /// spec is rejected loudly with a typed `FaultUnsupported`, naming the
    /// engine entry point.
    #[test]
    fn direct_engines_reject_per_inference_lifetime() {
        let engine = MonteCarloEngine::new(4, 9);
        let spec = FaultSpec::per_inference(FaultModel::AdditiveVariation { sigma: 0.1 });
        let x = Tensor::randn(&[3, 8], 0.0, 1.0, &mut Rng::seed_from(251));

        let mut net = mlp_with_norm(252);
        let xc = x.clone();
        let err = engine
            .run(&mut net, spec, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
            .unwrap_err();
        assert!(
            matches!(err, NnError::FaultUnsupported { .. }),
            "unexpected error: {err}"
        );
        assert_eq!(
            err.to_string(),
            "MonteCarloEngine::run does not support per-inference fault lifetime"
        );

        let xc = x.clone();
        let err = engine
            .run_parallel(
                || mlp_with_norm(252),
                spec,
                |m: &mut Sequential| Ok(m.forward(&xc, Mode::Eval)?.sum()),
                2,
            )
            .unwrap_err()
            .to_string();
        assert!(err.contains("MonteCarloEngine::run_parallel"), "{err}");

        let err = engine
            .run_batched(|| mlp_with_norm(252), spec, &x, |o| Ok(o.sum()), 2, 2)
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "MonteCarloEngine::run_batched does not support per-inference fault lifetime"
        );

        let xq = Tensor::randn(&[3, 12], 0.0, 1.0, &mut Rng::seed_from(253));
        let mut qnet = quantized_net(254);
        let xc = xq.clone();
        let err = engine
            .run_quantized(&mut qnet, spec, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
            .unwrap_err()
            .to_string();
        assert!(err.contains("MonteCarloEngine::run_quantized"), "{err}");
        let err = engine
            .run_batched_quantized(|| quantized_net(254), spec, &xq, |o| Ok(o.sum()), 2, 2)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("MonteCarloEngine::run_batched_quantized"),
            "{err}"
        );
    }

    /// The ladder on a fully-capable network: the fastest engine wins, no
    /// fallbacks are recorded, and the outcome matches the sequential
    /// reference bit for bit.
    #[test]
    fn run_auto_uses_fastest_engine_when_supported() {
        let x = Tensor::randn(&[5, 8], 0.0, 1.0, &mut Rng::seed_from(261));
        let engine = MonteCarloEngine::new(8, 777);
        let fault = structured_fault_models()[0];
        let mut net = mlp_with_norm(262);
        let xc = x.clone();
        let sequential = engine
            .run(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
            .unwrap();
        for policy in [DegradationPolicy::Graceful, DegradationPolicy::Strict] {
            let outcome = engine
                .run_auto(
                    || mlp_with_norm(262),
                    fault,
                    &x,
                    |o| Ok(o.sum()),
                    3,
                    2,
                    policy,
                )
                .unwrap();
            assert_eq!(outcome.engine, EngineKind::PlannedBatched);
            assert!(outcome.fallbacks.is_empty());
            let identical = sequential
                .per_run
                .iter()
                .zip(outcome.summary.per_run.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "{policy:?}");
        }
    }

    /// An unplannable, unbatchable layer (Lstm) degrades all the way to
    /// `run_parallel` under the graceful policy, with one typed reason per
    /// skipped rung — and still reproduces the sequential reference.
    #[test]
    fn run_auto_degrades_to_parallel_for_unsupported_layers() {
        use invnorm_nn::lstm::Lstm;
        let build = || -> Sequential {
            let mut rng = Rng::seed_from(271);
            Sequential::new().with(Box::new(Lstm::new(4, 6, false, &mut rng)))
        };
        let x = Tensor::randn(&[2, 5, 4], 0.0, 1.0, &mut Rng::seed_from(272));
        let engine = MonteCarloEngine::new(5, 31);
        let fault = FaultModel::AdditiveVariation { sigma: 0.1 };
        let mut net = build();
        let xc = x.clone();
        let sequential = engine
            .run(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
            .unwrap();
        let outcome = engine
            .run_auto(
                build,
                fault,
                &x,
                |o| Ok(o.sum()),
                2,
                1,
                DegradationPolicy::Graceful,
            )
            .unwrap();
        assert_eq!(outcome.engine, EngineKind::Parallel);
        assert_eq!(outcome.fallbacks.len(), 3);
        for (step, expected_engine) in outcome.fallbacks.iter().zip([
            EngineKind::PlannedBatched,
            EngineKind::Planned,
            EngineKind::Batched,
        ]) {
            assert_eq!(step.engine, expected_engine);
            match &step.reason {
                FallbackReason::Unsupported { layer, .. } => assert_eq!(*layer, "Lstm"),
                other => panic!("expected a layer-support reason, got {other:?}"),
            }
        }
        let identical = sequential
            .per_run
            .iter()
            .zip(outcome.summary.per_run.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical);

        // Strict mode keeps today's loud failure instead of degrading.
        let err = engine
            .run_auto(
                build,
                fault,
                &x,
                |o| Ok(o.sum()),
                2,
                1,
                DegradationPolicy::Strict,
            )
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("compiled plans") && err.contains("Lstm"),
            "unexpected error: {err}"
        );
    }

    /// A per-inference lifetime rules out the direct engines pre-flight; an
    /// unplannable layer rules out the planned ones. Together they exhaust
    /// the ladder, and the error lists every rung's reason.
    #[test]
    fn run_auto_reports_exhausted_ladder() {
        use invnorm_nn::lstm::Lstm;
        let build = || -> Sequential {
            let mut rng = Rng::seed_from(281);
            Sequential::new().with(Box::new(Lstm::new(4, 6, false, &mut rng)))
        };
        let x = Tensor::randn(&[2, 5, 4], 0.0, 1.0, &mut Rng::seed_from(282));
        let engine = MonteCarloEngine::new(4, 13);
        let spec = FaultSpec::per_inference(FaultModel::AdditiveVariation { sigma: 0.1 });
        let err = engine
            .run_auto(
                build,
                spec,
                &x,
                |o| Ok(o.sum()),
                2,
                1,
                DegradationPolicy::Graceful,
            )
            .unwrap_err();
        assert!(matches!(err, NnError::FaultUnsupported { .. }));
        let msg = err.to_string();
        for part in [
            "MonteCarloEngine::run_auto",
            "run_planned_batched",
            "run_planned",
            "run_batched",
            "run_parallel",
            "Lstm",
            "no per-inference fault lifetime model",
        ] {
            assert!(msg.contains(part), "missing {part:?} in: {msg}");
        }

        // A per-inference lifetime alone (plannable network) still runs —
        // on the fastest rung, with no fallbacks.
        let x = Tensor::randn(&[4, 8], 0.0, 1.0, &mut Rng::seed_from(283));
        let outcome = engine
            .run_auto(
                || mlp_with_norm(284),
                spec,
                &x,
                |o| Ok(o.sum()),
                2,
                1,
                DegradationPolicy::Graceful,
            )
            .unwrap();
        assert_eq!(outcome.engine, EngineKind::PlannedBatched);
        assert!(outcome.fallbacks.is_empty());
    }
}
