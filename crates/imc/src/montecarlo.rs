//! Monte-Carlo fault simulation (the paper's evaluation protocol).
//!
//! Every robustness number in the paper is the mean ± standard deviation of a
//! metric over 100 Monte-Carlo fault-simulation runs, each run representing
//! one simulated chip instance with its own random fault realization.
//! [`MonteCarloEngine`] reproduces that protocol: it repeatedly injects a
//! fresh fault realization into the network, evaluates a caller-provided
//! metric, restores the clean weights, and aggregates the results.
//!
//! For sweeps over many fault strengths, [`MonteCarloEngine::run_parallel`]
//! distributes chip instances over worker threads using model *factories*
//! (each thread builds its own model copy), since trained networks are not
//! `Clone`.

use crate::fault::FaultModel;
use crate::injector::WeightFaultInjector;
use crate::Result;
use invnorm_nn::layer::Layer;
use invnorm_nn::NnError;
use invnorm_tensor::stats::RunningStats;
use invnorm_tensor::Rng;
use serde::{Deserialize, Serialize};

/// Aggregated result of a Monte-Carlo fault simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonteCarloSummary {
    /// The fault model that was simulated.
    pub fault_label: String,
    /// Metric value of every run (chip instance).
    pub per_run: Vec<f32>,
    /// Mean metric over all runs.
    pub mean: f32,
    /// Standard deviation of the metric over all runs.
    pub std: f32,
    /// Smallest observed metric.
    pub min: f32,
    /// Largest observed metric.
    pub max: f32,
}

impl MonteCarloSummary {
    fn from_runs(fault_label: String, per_run: Vec<f32>) -> Self {
        let mut stats = RunningStats::new();
        stats.extend_from_slice(&per_run);
        Self {
            fault_label,
            mean: stats.mean(),
            std: stats.std(),
            min: stats.min(),
            max: stats.max(),
            per_run,
        }
    }

    /// Number of simulated chip instances.
    pub fn runs(&self) -> usize {
        self.per_run.len()
    }
}

/// Monte-Carlo fault-simulation engine.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloEngine {
    runs: usize,
    seed: u64,
}

impl MonteCarloEngine {
    /// Creates an engine running `runs` chip instances (at least one) from a
    /// base seed; instance `i` uses an independent RNG stream derived from
    /// `seed` and `i`.
    pub fn new(runs: usize, seed: u64) -> Self {
        Self {
            runs: runs.max(1),
            seed,
        }
    }

    /// The paper's setting: 100 chip instances.
    pub fn paper_default() -> Self {
        Self::new(100, 0xC0FFEE)
    }

    /// Number of runs.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Independent RNG stream for chip instance `run`, identical regardless of
    /// which thread (or call order) simulates it.
    fn run_rng(seed: u64, run: usize) -> Rng {
        Rng::seed_from(
            seed ^ (run as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }

    /// Runs the simulation on a single network, injecting and restoring
    /// faults around every evaluation.
    ///
    /// `evaluate` receives the faulty network and returns the metric of
    /// interest (accuracy, mIoU, RMSE, NLL, ...).
    ///
    /// # Errors
    ///
    /// Returns an error when injection, evaluation or restoration fails; the
    /// network is restored to its clean weights before the error is returned
    /// whenever possible.
    pub fn run<F>(
        &self,
        network: &mut dyn Layer,
        fault: FaultModel,
        mut evaluate: F,
    ) -> Result<MonteCarloSummary>
    where
        F: FnMut(&mut dyn Layer) -> Result<f32>,
    {
        fault.validate()?;
        let mut per_run = Vec::with_capacity(self.runs);
        for run in 0..self.runs {
            let mut rng = Self::run_rng(self.seed, run);
            let mut injector = WeightFaultInjector::new(fault);
            injector.inject(network, &mut rng)?;
            let result = evaluate(network);
            // Always restore, even if evaluation failed.
            let restore_result = injector.restore(network);
            let metric = result?;
            restore_result?;
            if !metric.is_finite() {
                return Err(NnError::Config(format!(
                    "evaluation returned a non-finite metric ({metric}) on run {run}"
                )));
            }
            per_run.push(metric);
        }
        Ok(MonteCarloSummary::from_runs(fault.label(), per_run))
    }

    /// Runs the simulation with per-thread model copies built by `factory`,
    /// spreading chip instances over `threads` workers.
    ///
    /// This is the variant used for the larger sweeps in `invnorm-bench`;
    /// each worker builds its own model (factories are expected to reproduce
    /// identical weights, e.g. by re-training with a fixed seed or loading a
    /// shared checkpoint) and simulates a disjoint subset of chip instances.
    ///
    /// # Errors
    ///
    /// Returns an error when any worker fails.
    pub fn run_parallel<M, F, E>(
        &self,
        factory: F,
        fault: FaultModel,
        evaluate: E,
        threads: usize,
    ) -> Result<MonteCarloSummary>
    where
        M: Layer + Send,
        F: Fn() -> M + Sync,
        E: Fn(&mut M) -> Result<f32> + Sync,
    {
        fault.validate()?;
        let threads = threads.clamp(1, self.runs);
        let runs_per_thread = self.runs.div_ceil(threads);
        let seed = self.seed;
        let results: std::result::Result<Vec<Vec<f32>>, NnError> =
            crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let factory = &factory;
                    let evaluate = &evaluate;
                    handles.push(scope.spawn(move |_| -> Result<Vec<f32>> {
                        let start = t * runs_per_thread;
                        let end = (start + runs_per_thread).min(self.runs);
                        let mut model = factory();
                        let mut out = Vec::with_capacity(end.saturating_sub(start));
                        for run in start..end {
                            let mut rng = Self::run_rng(seed, run);
                            let mut injector = WeightFaultInjector::new(fault);
                            injector.inject(&mut model, &mut rng)?;
                            let metric = evaluate(&mut model);
                            injector.restore(&mut model)?;
                            out.push(metric?);
                        }
                        Ok(out)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker thread panicked"))
                    .collect()
            })
            .expect("crossbeam scope panicked");
        let per_run: Vec<f32> = results?.into_iter().flatten().collect();
        Ok(MonteCarloSummary::from_runs(fault.label(), per_run))
    }

    /// Convenience sweep: runs the engine once per fault model and collects
    /// the summaries in order.
    ///
    /// # Errors
    ///
    /// Returns an error when any individual simulation fails.
    pub fn sweep<F>(
        &self,
        network: &mut dyn Layer,
        faults: &[FaultModel],
        mut evaluate: F,
    ) -> Result<Vec<MonteCarloSummary>>
    where
        F: FnMut(&mut dyn Layer) -> Result<f32>,
    {
        faults
            .iter()
            .map(|&fault| self.run(network, fault, &mut evaluate))
            .collect()
    }
}

impl Default for MonteCarloEngine {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_nn::layer::Mode;
    use invnorm_nn::linear::Linear;
    use invnorm_nn::Sequential;
    use invnorm_tensor::Tensor;

    fn simple_net(seed: u64) -> Sequential {
        let mut rng = Rng::seed_from(seed);
        let mut net = Sequential::new();
        net.push(Box::new(Linear::new(4, 4, &mut rng)));
        net.push(Box::new(Linear::new(4, 2, &mut rng)));
        net
    }

    #[test]
    fn fault_free_simulation_has_zero_variance() {
        let mut net = simple_net(1);
        let x = Tensor::randn(&[8, 4], 0.0, 1.0, &mut Rng::seed_from(2));
        let engine = MonteCarloEngine::new(10, 42);
        let summary = engine
            .run(&mut net, FaultModel::None, |n| {
                Ok(n.forward(&x, Mode::Eval)?.sum())
            })
            .unwrap();
        assert_eq!(summary.runs(), 10);
        assert!(summary.std < 1e-6);
        assert_eq!(summary.min, summary.max);
        assert!(summary.fault_label.contains("fault-free"));
    }

    #[test]
    fn faulty_simulation_varies_and_restores_weights() {
        let mut net = simple_net(3);
        let x = Tensor::randn(&[8, 4], 0.0, 1.0, &mut Rng::seed_from(4));
        let clean_out = net.forward(&x, Mode::Eval).unwrap();
        let engine = MonteCarloEngine::new(20, 7);
        let summary = engine
            .run(
                &mut net,
                FaultModel::AdditiveVariation { sigma: 0.3 },
                |n| Ok(n.forward(&x, Mode::Eval)?.sum()),
            )
            .unwrap();
        assert!(summary.std > 0.0, "fault runs should differ");
        // Clean weights restored.
        let after = net.forward(&x, Mode::Eval).unwrap();
        assert!(clean_out.approx_eq(&after, 1e-6));
    }

    #[test]
    fn stronger_faults_cause_larger_deviation() {
        let mut net = simple_net(5);
        let x = Tensor::randn(&[16, 4], 0.0, 1.0, &mut Rng::seed_from(6));
        let clean = net.forward(&x, Mode::Eval).unwrap().mean();
        let engine = MonteCarloEngine::new(30, 9);
        let deviation = |sigma: f32, net: &mut Sequential| {
            engine
                .run(net, FaultModel::AdditiveVariation { sigma }, |n| {
                    Ok((n.forward(&x, Mode::Eval)?.mean() - clean).abs())
                })
                .unwrap()
                .mean
        };
        let weak = deviation(0.05, &mut net);
        let strong = deviation(0.8, &mut net);
        assert!(strong > weak, "strong {strong} vs weak {weak}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let x = Tensor::randn(&[8, 4], 0.0, 1.0, &mut Rng::seed_from(10));
        let run = |seed: u64| {
            let mut net = simple_net(11);
            MonteCarloEngine::new(5, seed)
                .run(&mut net, FaultModel::BitFlip { rate: 0.05, bits: 8 }, |n| {
                    Ok(n.forward(&x, Mode::Eval)?.sum())
                })
                .unwrap()
                .per_run
        };
        assert_eq!(run(123), run(123));
        assert_ne!(run(123), run(456));
    }

    #[test]
    fn sweep_runs_every_fault_model() {
        let mut net = simple_net(12);
        let x = Tensor::randn(&[4, 4], 0.0, 1.0, &mut Rng::seed_from(13));
        let faults = [
            FaultModel::None,
            FaultModel::AdditiveVariation { sigma: 0.2 },
            FaultModel::BitFlip { rate: 0.1, bits: 8 },
        ];
        let summaries = MonteCarloEngine::new(4, 1)
            .sweep(&mut net, &faults, |n| Ok(n.forward(&x, Mode::Eval)?.sum()))
            .unwrap();
        assert_eq!(summaries.len(), 3);
        assert_eq!(summaries[0].runs(), 4);
    }

    #[test]
    fn parallel_matches_sequential_statistics() {
        let x = Tensor::randn(&[16, 4], 0.0, 1.0, &mut Rng::seed_from(14));
        let engine = MonteCarloEngine::new(16, 77);
        let fault = FaultModel::AdditiveVariation { sigma: 0.3 };
        let mut net = simple_net(15);
        let sequential = engine
            .run(&mut net, fault, |n| Ok(n.forward(&x, Mode::Eval)?.sum()))
            .unwrap();
        let x_par = x.clone();
        let parallel = engine
            .run_parallel(
                || simple_net(15),
                fault,
                move |n| Ok(n.forward(&x_par, Mode::Eval)?.sum()),
                4,
            )
            .unwrap();
        assert_eq!(parallel.runs(), sequential.runs());
        // Same seeds and same model weights → identical per-run metrics
        // regardless of which thread executed them.
        let mut a = sequential.per_run.clone();
        let mut b = parallel.per_run.clone();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn evaluation_error_still_restores_weights() {
        let mut net = simple_net(16);
        let x = Tensor::randn(&[4, 4], 0.0, 1.0, &mut Rng::seed_from(17));
        let clean = net.forward(&x, Mode::Eval).unwrap();
        let engine = MonteCarloEngine::new(3, 5);
        let mut calls = 0;
        let result = engine.run(
            &mut net,
            FaultModel::AdditiveVariation { sigma: 0.5 },
            |_n| {
                calls += 1;
                Err(NnError::Config("simulated evaluation failure".into()))
            },
        );
        assert!(result.is_err());
        assert_eq!(calls, 1);
        let after = net.forward(&x, Mode::Eval).unwrap();
        assert!(clean.approx_eq(&after, 1e-6));
    }

    #[test]
    fn non_finite_metric_is_rejected() {
        let mut net = simple_net(18);
        let engine = MonteCarloEngine::new(2, 5);
        let result = engine.run(&mut net, FaultModel::None, |_n| Ok(f32::NAN));
        assert!(result.is_err());
    }

    #[test]
    fn run_count_is_at_least_one() {
        assert_eq!(MonteCarloEngine::new(0, 1).runs(), 1);
        assert_eq!(MonteCarloEngine::paper_default().runs(), 100);
        assert_eq!(MonteCarloEngine::default().runs(), 100);
    }
}
